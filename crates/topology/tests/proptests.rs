//! Property-based tests of routing invariants on random topologies.

use netanom_linalg::vector;
use netanom_topology::{builtin, PopId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every route on every random connected topology is a valid walk:
    /// starts at the origin, ends at the destination, consecutive links
    /// share endpoints, and no PoP repeats (shortest paths are simple).
    #[test]
    fn routes_are_simple_valid_walks(n in 2usize..12, extra in 0usize..10, seed in 0u64..500) {
        let net = builtin::random(n, extra, seed);
        let topo = &net.topology;
        for o in 0..n {
            for d in 0..n {
                let path = net.routes.path((PopId(o), PopId(d)));
                prop_assert!(!path.is_empty());
                if o == d {
                    prop_assert_eq!(path.len(), 1);
                    prop_assert!(topo.link(path[0]).is_intra_pop());
                    continue;
                }
                prop_assert_eq!(topo.link(path[0]).src.0, o);
                prop_assert_eq!(topo.link(path[path.len() - 1]).dst.0, d);
                let mut visited = vec![o];
                for w in path.windows(2) {
                    prop_assert_eq!(topo.link(w[0]).dst, topo.link(w[1]).src);
                }
                for &l in path {
                    let next = topo.link(l).dst.0;
                    prop_assert!(!visited.contains(&next), "loop through PoP {next}");
                    visited.push(next);
                }
            }
        }
    }

    /// Shortest paths satisfy the triangle property: going o→d is never
    /// longer than o→k plus k→d (unit weights).
    #[test]
    fn path_lengths_satisfy_triangle_inequality(
        n in 3usize..10, extra in 0usize..8, seed in 0u64..300
    ) {
        let net = builtin::random(n, extra, seed);
        let hops = |o: usize, d: usize| {
            if o == d { 0 } else { net.routes.path((PopId(o), PopId(d))).len() }
        };
        for o in 0..n {
            for d in 0..n {
                for k in 0..n {
                    prop_assert!(
                        hops(o, d) <= hops(o, k) + hops(k, d),
                        "triangle violated: {o}->{d} vs via {k}"
                    );
                }
            }
        }
    }

    /// Routing-matrix identities hold on every generated network:
    /// ‖θᵢ‖ = 1, ΣĀᵢ = 1, ‖Aᵢ‖² = ΣAᵢ = path length.
    #[test]
    fn routing_matrix_identities(n in 2usize..10, extra in 0usize..8, seed in 0u64..300) {
        let net = builtin::random(n, extra, seed);
        let rm = &net.routing_matrix;
        for f in 0..rm.num_flows() {
            let col = rm.column(f);
            prop_assert!((vector::norm(&rm.theta(f)) - 1.0).abs() < 1e-12);
            prop_assert!((vector::sum(&rm.abar(f)) - 1.0).abs() < 1e-12);
            prop_assert!((vector::norm_sq(&col) - vector::sum(&col)).abs() < 1e-12);
            prop_assert_eq!(vector::sum(&col) as usize, rm.path_len(f));
        }
    }

    /// Link loads are additive in OD traffic: y(x1 + x2) = y(x1) + y(x2).
    #[test]
    fn link_loads_are_linear(
        n in 2usize..8, seed in 0u64..200,
        scale1 in 0.0..1e6f64, scale2 in 0.0..1e6f64,
    ) {
        let net = builtin::random(n, 4, seed);
        let rm = &net.routing_matrix;
        let nf = rm.num_flows();
        let x1: Vec<f64> = (0..nf).map(|f| scale1 * ((f % 7) as f64 + 1.0)).collect();
        let x2: Vec<f64> = (0..nf).map(|f| scale2 * ((f % 5) as f64 + 1.0)).collect();
        let sum = vector::add(&x1, &x2);
        let lhs = rm.link_loads(&sum);
        let rhs = vector::add(&rm.link_loads(&x1), &rm.link_loads(&x2));
        prop_assert!(vector::approx_eq(&lhs, &rhs, 1e-6));
    }
}
