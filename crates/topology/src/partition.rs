//! Link partitioning for sharded, network-wide diagnosis.
//!
//! A PoP-level measurement infrastructure rarely delivers every link's
//! byte counts to one process: each PoP's collector reports its own
//! links. [`LinkPartition`] captures that deployment shape — a split of
//! the link index set `0..m` into disjoint shards — in a validated form
//! the sharded diagnosis engine (`netanom-core`'s `shard` module) can
//! consume. Three constructions cover the practical cases:
//!
//! * [`LinkPartition::per_pop`] — one shard per PoP, owning the PoP's
//!   outgoing inter-PoP links plus its intra-PoP link: the
//!   collector-per-PoP deployment.
//! * [`LinkPartition::round_robin`] — link `l` goes to shard
//!   `l mod K`. Because the sharded sufficient-statistic upkeep for
//!   link `l` costs `O(m − l)` (its row of the upper-triangle
//!   cross-product), interleaving balances the per-shard work almost
//!   perfectly; this is the default when no topology is at hand.
//! * [`LinkPartition::explicit`] — bring your own assignment (e.g. one
//!   shard per collection site), validated to be a true partition.
//!
//! Within each shard the link list is kept strictly ascending so shard
//! windows, statistics rows and model slices all index consistently.
//!
//! # Example
//!
//! ```
//! use netanom_topology::{builtin, LinkPartition};
//!
//! let net = builtin::abilene();
//! let per_pop = LinkPartition::per_pop(&net.topology);
//! assert_eq!(per_pop.num_shards(), 11);             // one per PoP
//! assert_eq!(per_pop.num_links(), 41);              // Table 1
//!
//! let rr = LinkPartition::round_robin(41, 4).unwrap();
//! assert_eq!(rr.num_shards(), 4);
//! assert_eq!(rr.group(1)[0], 1);                    // link 1 → shard 1
//! ```

use crate::graph::Topology;
use crate::{Result, TopologyError};

/// A validated split of the link index set `0..num_links` into disjoint,
/// jointly exhaustive shards, each listed in strictly ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkPartition {
    num_links: usize,
    groups: Vec<Vec<usize>>,
}

impl LinkPartition {
    /// Build a partition from an explicit per-shard assignment.
    ///
    /// Every link in `0..num_links` must appear in exactly one group,
    /// every group must be non-empty, and each group must list its links
    /// in strictly ascending order.
    pub fn explicit(num_links: usize, groups: Vec<Vec<usize>>) -> Result<Self> {
        if groups.is_empty() {
            return Err(TopologyError::InvalidPartition {
                reason: "a partition needs at least one shard".to_string(),
            });
        }
        let mut seen = vec![false; num_links];
        for (s, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(TopologyError::InvalidPartition {
                    reason: format!("shard {s} owns no links"),
                });
            }
            let mut prev: Option<usize> = None;
            for &l in group {
                if l >= num_links {
                    return Err(TopologyError::InvalidPartition {
                        reason: format!("shard {s} references link {l} >= {num_links}"),
                    });
                }
                if prev.is_some_and(|p| p >= l) {
                    return Err(TopologyError::InvalidPartition {
                        reason: format!("shard {s} is not strictly ascending at link {l}"),
                    });
                }
                if seen[l] {
                    return Err(TopologyError::InvalidPartition {
                        reason: format!("link {l} assigned to more than one shard"),
                    });
                }
                seen[l] = true;
                prev = Some(l);
            }
        }
        if let Some(l) = seen.iter().position(|covered| !covered) {
            return Err(TopologyError::InvalidPartition {
                reason: format!("link {l} is assigned to no shard"),
            });
        }
        Ok(LinkPartition { num_links, groups })
    }

    /// Interleaved assignment: link `l` belongs to shard `l mod shards`.
    ///
    /// Requires `1 <= shards <= num_links` so every shard owns at least
    /// one link. This layout balances the triangular
    /// sufficient-statistic workload across shards (see the module
    /// docs).
    pub fn round_robin(num_links: usize, shards: usize) -> Result<Self> {
        if shards == 0 || shards > num_links {
            return Err(TopologyError::InvalidPartition {
                reason: format!("{shards} shards cannot partition {num_links} links"),
            });
        }
        let groups = (0..shards)
            .map(|s| (s..num_links).step_by(shards).collect())
            .collect();
        Ok(LinkPartition { num_links, groups })
    }

    /// One shard per PoP: each PoP owns its outgoing inter-PoP links and
    /// its intra-PoP link — the measurement-collector-per-PoP deployment
    /// the paper's SNMP framing implies.
    ///
    /// Every PoP owns at least its intra-PoP link, so the result is
    /// always a valid partition.
    pub fn per_pop(topo: &Topology) -> Self {
        let groups = (0..topo.num_pops())
            .map(|p| {
                let pop = crate::graph::PopId(p);
                let mut links: Vec<usize> = topo.out_links(pop).iter().map(|l| l.0).collect();
                links.push(topo.intra_link(pop).0);
                links.sort_unstable();
                links
            })
            .collect();
        LinkPartition {
            num_links: topo.num_links(),
            groups,
        }
    }

    /// Total number of links being partitioned (`m`).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// The ascending link indices owned by shard `s`.
    ///
    /// # Panics
    /// Panics if `s >= num_shards()`.
    pub fn group(&self, s: usize) -> &[usize] {
        &self.groups[s]
    }

    /// All shards' link lists, in shard order.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn is_partition(p: &LinkPartition) {
        let mut seen = vec![false; p.num_links()];
        for s in 0..p.num_shards() {
            let g = p.group(s);
            assert!(!g.is_empty());
            assert!(g.windows(2).all(|w| w[0] < w[1]), "shard {s} not ascending");
            for &l in g {
                assert!(!seen[l], "link {l} duplicated");
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&c| c), "some link unassigned");
    }

    #[test]
    fn round_robin_partitions_and_balances() {
        for (m, k) in [(7usize, 1usize), (7, 3), (41, 4), (41, 8), (5, 5)] {
            let p = LinkPartition::round_robin(m, k).unwrap();
            assert_eq!(p.num_shards(), k);
            assert_eq!(p.num_links(), m);
            is_partition(&p);
            // Sizes differ by at most one.
            let sizes: Vec<usize> = p.groups().iter().map(Vec::len).collect();
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn round_robin_rejects_degenerate_shard_counts() {
        assert!(LinkPartition::round_robin(5, 0).is_err());
        assert!(LinkPartition::round_robin(5, 6).is_err());
    }

    #[test]
    fn per_pop_covers_every_link_once() {
        for net in [builtin::abilene(), builtin::sprint_europe()] {
            let p = LinkPartition::per_pop(&net.topology);
            assert_eq!(p.num_shards(), net.topology.num_pops());
            assert_eq!(p.num_links(), net.topology.num_links());
            is_partition(&p);
            // Each shard owns its PoP's intra link.
            for s in 0..p.num_shards() {
                let intra = net.topology.intra_link(crate::graph::PopId(s)).0;
                assert!(p.group(s).contains(&intra), "shard {s} missing intra link");
            }
        }
    }

    #[test]
    fn explicit_validates_partitions() {
        assert!(LinkPartition::explicit(3, vec![vec![0, 2], vec![1]]).is_ok());
        // Non-partition inputs are rejected with a reason.
        for (m, groups) in [
            (3usize, vec![]),
            (3, vec![vec![0, 1, 2], vec![]]),
            (3, vec![vec![0, 1], vec![1, 2]]),
            (3, vec![vec![0], vec![1]]),
            (3, vec![vec![0, 3], vec![1, 2]]),
            (3, vec![vec![1, 0], vec![2]]),
            (3, vec![vec![0, 0], vec![1, 2]]),
        ] {
            let err = LinkPartition::explicit(m, groups).unwrap_err();
            assert!(
                matches!(err, TopologyError::InvalidPartition { .. }),
                "{err}"
            );
        }
    }
}
