//! Parameterized synthetic backbone topologies — the workload generator
//! for thousand-link scale tests.
//!
//! The paper's two networks stop at 41 and 49 links; nothing about the
//! subspace method does. This module manufactures PoP graphs of any
//! size with backbone-shaped structure, deterministically from a seed:
//!
//! * **Connectivity by construction** — a random spanning tree first,
//!   so every generated graph routes (no rejection loops);
//! * **Degree distribution** — extra edges attach to endpoints sampled
//!   `∝ (degree + 1)^bias`: `bias = 0` gives an Erdős–Rényi-flavoured
//!   flat degree profile, larger values a preferential-attachment
//!   hub-and-spoke profile like real PoP maps;
//! * **Jittered IGP weights** — per-edge weights `1 + jitter·u` break
//!   equal-cost ties so shortest paths spread over the mesh instead of
//!   collapsing onto lexicographic tie-breaks;
//! * **Exact link-count targeting** — [`SynthConfig::with_target_links`]
//!   picks a PoP count and edge count so the directed-links-plus-intra
//!   total `m = 2E + P` lands exactly on the requested `m`, making
//!   "give me an `m = 1024` network" one call.
//!
//! The output is an ordinary [`Topology`]/[`Network`]: shortest-path
//! routing (Dijkstra with deterministic tie-breaking) and the routing
//! matrix `A` come from the same machinery the built-in networks use.
//!
//! # Example
//!
//! ```
//! use netanom_topology::synth;
//!
//! let cfg = synth::SynthConfig::with_target_links(121, 7).unwrap();
//! let net = synth::network(&cfg).unwrap();
//! assert_eq!(net.topology.num_links(), 121);
//! assert_eq!(
//!     net.routing_matrix.num_flows(),
//!     net.topology.num_pops() * net.topology.num_pops()
//! );
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builtin::Network;
use crate::graph::{PopId, Topology};
use crate::{Result, TopologyError};

/// Parameters of a synthetic backbone.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of PoPs (`≥ 2`).
    pub pops: usize,
    /// Number of bidirectional inter-PoP edges; clamped into
    /// `[pops − 1, pops·(pops − 1)/2]` (spanning tree … complete graph).
    pub edges: usize,
    /// Preferential-attachment strength: endpoint sampling weight is
    /// `(degree + 1)^bias`. `0.0` = uniform; `0.5–1.0` matches the
    /// hub-heavy degree profiles of measured PoP maps.
    pub degree_bias: f64,
    /// IGP weight jitter: each edge's weight is `1 + jitter·u` with
    /// `u ~ U[0, 1)`. Zero produces unit weights (and therefore many
    /// equal-cost ties resolved by the deterministic tie-break).
    pub weight_jitter: f64,
    /// Master seed; the same configuration always builds the same graph.
    pub seed: u64,
}

impl SynthConfig {
    /// A backbone-shaped default: mean inter-PoP degree ≈ 4, mild
    /// preferential attachment, 20% weight jitter.
    pub fn new(pops: usize, seed: u64) -> Self {
        SynthConfig {
            pops,
            edges: pops * 2,
            degree_bias: 0.6,
            weight_jitter: 0.2,
            seed,
        }
    }

    /// Pick `pops` and `edges` so the total link count — `2·edges`
    /// directed links plus one intra-PoP link per PoP — is **exactly**
    /// `target_links`, at mean degree ≈ 4 (the regime of the paper's
    /// networks: Abilene's 41 links are 30 + 11 at degree 2.7).
    ///
    /// Errors for targets below 7 links (a 2-PoP backbone needs
    /// `2·1 + 2 = 4`, but degree targeting needs a little room; 7 is the
    /// 3-PoP triangle's count minus nothing — the smallest target with a
    /// tree and one spare edge).
    pub fn with_target_links(target_links: usize, seed: u64) -> Result<Self> {
        if target_links < 7 {
            return Err(TopologyError::EmptyTopology);
        }
        // m = 2E + P with E ≈ 2P (degree 4) ⇒ P ≈ m/5. Walk outward from
        // that estimate to the nearest P of matching parity whose edge
        // count fits between a tree and the complete graph.
        let estimate = (target_links / 5).max(2);
        for delta in 0..=target_links {
            for p in [estimate.saturating_sub(delta), estimate + delta] {
                if p < 2 || p >= target_links {
                    continue;
                }
                if !(target_links - p).is_multiple_of(2) {
                    continue;
                }
                let e = (target_links - p) / 2;
                if e >= p - 1 && e <= p * (p - 1) / 2 {
                    return Ok(SynthConfig {
                        edges: e,
                        ..SynthConfig::new(p, seed)
                    });
                }
            }
        }
        Err(TopologyError::EmptyTopology)
    }
}

/// Sample an index from `weights` proportionally (weights must be
/// positive); deterministic given the rng state.
fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut pick = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// Build the synthetic PoP graph (no routing derived yet).
pub fn topology(cfg: &SynthConfig) -> Result<Topology> {
    if cfg.pops < 2 {
        return Err(TopologyError::EmptyTopology);
    }
    let p = cfg.pops;
    let max_edges = p * (p - 1) / 2;
    let edges = cfg.edges.clamp(p - 1, max_edges);
    let bias = cfg.degree_bias.max(0.0);
    let jitter = cfg.weight_jitter.max(0.0);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x73796E74 /* "synt" */);
    let mut b = Topology::builder(format!("synth{p}-{}", cfg.seed));
    let ids: Vec<PopId> = (0..p)
        .map(|i| b.pop(format!("s{i}")).expect("unique"))
        .collect();

    let mut degree = vec![0usize; p];
    let mut present = vec![false; p * p];
    let weight = |rng: &mut StdRng| 1.0 + jitter * rng.random_range(0.0..1.0);

    // Random spanning tree with preferential attachment: node i joins a
    // previous node sampled ∝ (degree+1)^bias.
    for i in 1..p {
        let weights: Vec<f64> = (0..i)
            .map(|j| ((degree[j] + 1) as f64).powf(bias))
            .collect();
        let j = weighted_pick(&mut rng, &weights);
        let w = weight(&mut rng);
        b.weighted_edge(ids[i], ids[j], w).expect("tree edge");
        degree[i] += 1;
        degree[j] += 1;
        present[i * p + j] = true;
        present[j * p + i] = true;
    }

    // Extra edges: endpoints sampled by degree preference; duplicates
    // and self-loops are re-drawn, with a deterministic scan fallback so
    // dense requests terminate.
    let mut added = p - 1;
    'outer: while added < edges {
        for _attempt in 0..64 {
            let weights: Vec<f64> = degree
                .iter()
                .map(|&d| ((d + 1) as f64).powf(bias))
                .collect();
            let a = weighted_pick(&mut rng, &weights);
            let c = weighted_pick(&mut rng, &weights);
            if a == c || present[a * p + c] {
                continue;
            }
            let w = weight(&mut rng);
            b.weighted_edge(ids[a], ids[c], w).expect("fresh edge");
            degree[a] += 1;
            degree[c] += 1;
            present[a * p + c] = true;
            present[c * p + a] = true;
            added += 1;
            continue 'outer;
        }
        // Rejection stalled (graph nearly complete): take the first
        // absent pair in scan order.
        for a in 0..p {
            for c in (a + 1)..p {
                if !present[a * p + c] {
                    let w = weight(&mut rng);
                    b.weighted_edge(ids[a], ids[c], w).expect("fresh edge");
                    degree[a] += 1;
                    degree[c] += 1;
                    present[a * p + c] = true;
                    present[c * p + a] = true;
                    added += 1;
                    continue 'outer;
                }
            }
        }
        break; // complete graph reached
    }
    b.build()
}

/// Build the full [`Network`]: graph, shortest-path routes, routing
/// matrix. Connectivity is guaranteed by the spanning-tree construction.
pub fn network(cfg: &SynthConfig) -> Result<Network> {
    Ok(Network::from_topology(topology(cfg)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_link_targets_hit() {
        for target in [7, 41, 121, 240, 512, 1023, 1024] {
            let cfg = SynthConfig::with_target_links(target, 3).unwrap();
            let topo = topology(&cfg).unwrap();
            assert_eq!(
                topo.num_links(),
                target,
                "target {target}: pops {} edges {}",
                cfg.pops,
                cfg.edges
            );
        }
        assert!(SynthConfig::with_target_links(3, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let cfg = SynthConfig::new(20, 11);
        let a = network(&cfg).unwrap();
        let b = network(&cfg).unwrap();
        assert_eq!(a.topology.num_links(), b.topology.num_links());
        for f in 0..a.routing_matrix.num_flows() {
            assert_eq!(a.routing_matrix.flow(f).path, b.routing_matrix.flow(f).path);
        }
        let c = network(&SynthConfig::new(20, 12)).unwrap();
        let same = (0..a.routing_matrix.num_flows())
            .all(|f| a.routing_matrix.flow(f).path == c.routing_matrix.flow(f).path);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn routes_and_matrix_are_consistent() {
        let cfg = SynthConfig::with_target_links(121, 5).unwrap();
        let net = network(&cfg).unwrap();
        let rm = &net.routing_matrix;
        assert_eq!(rm.num_links(), 121);
        // Every link carries at least one flow (no dead columns).
        for l in 0..rm.num_links() {
            let carried = (0..rm.num_flows()).any(|f| rm.column(f)[l] != 0.0);
            assert!(carried, "link {l} carries nothing");
        }
    }

    #[test]
    fn degree_bias_concentrates_degree() {
        // Strong preferential attachment should produce a larger max
        // degree than uniform attachment on the same size.
        let max_degree = |bias: f64| {
            let cfg = SynthConfig {
                degree_bias: bias,
                ..SynthConfig::new(60, 21)
            };
            let t = topology(&cfg).unwrap();
            (0..60).map(|i| t.out_links(PopId(i)).len()).max().unwrap()
        };
        assert!(
            max_degree(2.0) > max_degree(0.0),
            "bias should concentrate degree"
        );
    }

    #[test]
    fn edge_count_clamps_to_valid_range() {
        // More edges than pairs: complete graph, no panic.
        let cfg = SynthConfig {
            edges: 10_000,
            ..SynthConfig::new(8, 2)
        };
        let t = topology(&cfg).unwrap();
        assert_eq!(t.num_links(), 8 * 7 + 8); // complete: 2·28 + 8
                                              // Fewer than a tree: clamped up to connectivity.
        let cfg = SynthConfig {
            edges: 0,
            ..SynthConfig::new(8, 2)
        };
        let t = topology(&cfg).unwrap();
        assert_eq!(t.num_links(), 2 * 7 + 8);
        assert!(topology(&SynthConfig::new(1, 0)).is_err());
    }

    #[test]
    fn zero_jitter_and_zero_bias_still_build() {
        let cfg = SynthConfig {
            degree_bias: 0.0,
            weight_jitter: 0.0,
            ..SynthConfig::new(12, 9)
        };
        let net = network(&cfg).unwrap();
        assert!(net.topology.num_links() > 12);
    }
}
