//! Shortest-path routing over a [`Topology`].
//!
//! The paper determines each OD flow's path from the network's routing
//! tables (BGP/ISIS); we model that with IGP shortest-path routing over
//! link weights, which is how intra-domain paths in both studied networks
//! were established.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{LinkId, PopId, Topology};
use crate::{Result, TopologyError};

/// Shortest-path routes between every ordered pair of PoPs.
///
/// Routes are computed once by running Dijkstra from every origin. Ties are
/// broken deterministically: by path cost, then hop count, then the
/// smallest predecessor PoP index, so two runs (or two machines) always
/// produce the same routing matrix.
///
/// The route of a self-pair `(p, p)` is the single intra-PoP link of `p`.
#[derive(Debug, Clone)]
pub struct Routes {
    num_pops: usize,
    /// `paths[o * num_pops + d]` = link ids from `o` to `d`.
    paths: Vec<Vec<LinkId>>,
}

/// Heap entry for Dijkstra: ordered so the `BinaryHeap` (a max-heap) pops
/// the smallest `(cost, hops, pop)` first.
#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    hops: usize,
    pop: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so smaller cost = greater priority.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.pop.cmp(&self.pop))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Routes {
    /// Compute shortest-path routes for all ordered PoP pairs.
    ///
    /// Returns [`TopologyError::Disconnected`] (with a witness pair) if any
    /// PoP cannot reach any other.
    pub fn shortest_paths(topo: &Topology) -> Result<Self> {
        let n = topo.num_pops();
        let mut paths = vec![Vec::new(); n * n];

        for origin in 0..n {
            let (dist, pred) = dijkstra(topo, PopId(origin));
            for dest in 0..n {
                if origin == dest {
                    paths[origin * n + dest] = vec![topo.intra_link(PopId(origin))];
                    continue;
                }
                if dist[dest].is_infinite() {
                    return Err(TopologyError::Disconnected {
                        witness: (origin, dest),
                    });
                }
                // Walk predecessors back from dest.
                let mut rev = Vec::new();
                let mut cur = dest;
                while cur != origin {
                    let link = pred[cur].expect("finite distance implies a predecessor");
                    rev.push(link);
                    cur = topo.link(link).src.0;
                }
                rev.reverse();
                paths[origin * n + dest] = rev;
            }
        }
        Ok(Routes { num_pops: n, paths })
    }

    /// The link path from `od.0` to `od.1`.
    ///
    /// # Panics
    /// Panics if either PoP id is out of range.
    pub fn path(&self, od: (PopId, PopId)) -> &[LinkId] {
        assert!(od.0 .0 < self.num_pops && od.1 .0 < self.num_pops);
        &self.paths[od.0 .0 * self.num_pops + od.1 .0]
    }

    /// Number of PoPs routed over.
    pub fn num_pops(&self) -> usize {
        self.num_pops
    }
}

/// Dijkstra from `origin`; returns per-PoP distance and the incoming link
/// on the chosen shortest path.
fn dijkstra(topo: &Topology, origin: PopId) -> (Vec<f64>, Vec<Option<LinkId>>) {
    let n = topo.num_pops();
    let mut dist = vec![f64::INFINITY; n];
    let mut hops = vec![usize::MAX; n];
    let mut pred: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();

    dist[origin.0] = 0.0;
    hops[origin.0] = 0;
    heap.push(HeapEntry {
        cost: 0.0,
        hops: 0,
        pop: origin.0,
    });

    while let Some(HeapEntry { cost, hops: h, pop }) = heap.pop() {
        if cost > dist[pop] || (cost == dist[pop] && h > hops[pop]) {
            continue; // stale entry
        }
        for &lid in topo.out_links(PopId(pop)) {
            let link = topo.link(lid);
            let next = link.dst.0;
            let ncost = cost + link.weight;
            let nhops = h + 1;
            // Strict improvement, or an equal-cost path that is
            // deterministically preferred (fewer hops, then smaller
            // predecessor index).
            let better = ncost < dist[next]
                || (ncost == dist[next]
                    && (nhops < hops[next]
                        || (nhops == hops[next]
                            && pred[next].is_some_and(|p| topo.link(p).src.0 > pop))));
            if better {
                dist[next] = ncost;
                hops[next] = nhops;
                pred[next] = Some(lid);
                heap.push(HeapEntry {
                    cost: ncost,
                    hops: nhops,
                    pop: next,
                });
            }
        }
    }
    (dist, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    fn line4() -> Topology {
        // a - b - c - d
        let mut b = Topology::builder("line4");
        let ids: Vec<PopId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| b.pop(*n).unwrap())
            .collect();
        b.edge(ids[0], ids[1]).unwrap();
        b.edge(ids[1], ids[2]).unwrap();
        b.edge(ids[2], ids[3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn line_paths_have_expected_lengths() {
        let t = line4();
        let r = Routes::shortest_paths(&t).unwrap();
        assert_eq!(r.path((PopId(0), PopId(3))).len(), 3);
        assert_eq!(r.path((PopId(0), PopId(1))).len(), 1);
        assert_eq!(r.path((PopId(3), PopId(0))).len(), 3);
    }

    #[test]
    fn self_pair_uses_intra_pop_link() {
        let t = line4();
        let r = Routes::shortest_paths(&t).unwrap();
        let p = r.path((PopId(2), PopId(2)));
        assert_eq!(p.len(), 1);
        assert!(t.link(p[0]).is_intra_pop());
        assert_eq!(t.link(p[0]).src, PopId(2));
    }

    #[test]
    fn paths_are_link_consistent() {
        let t = line4();
        let r = Routes::shortest_paths(&t).unwrap();
        // Each consecutive pair of links must share the middle PoP.
        let p = r.path((PopId(0), PopId(3)));
        for w in p.windows(2) {
            assert_eq!(t.link(w[0]).dst, t.link(w[1]).src);
        }
        assert_eq!(t.link(p[0]).src, PopId(0));
        assert_eq!(t.link(p[p.len() - 1]).dst, PopId(3));
    }

    #[test]
    fn weighted_routing_avoids_heavy_edge() {
        // Square: a-b (1), b-d (1), a-c (1), c-d (10). a->d must go via b.
        let mut b = Topology::builder("square");
        let a = b.pop("a").unwrap();
        let bb = b.pop("b").unwrap();
        let c = b.pop("c").unwrap();
        let d = b.pop("d").unwrap();
        b.edge(a, bb).unwrap();
        b.edge(bb, d).unwrap();
        b.edge(a, c).unwrap();
        b.weighted_edge(c, d, 10.0).unwrap();
        let t = b.build().unwrap();
        let r = Routes::shortest_paths(&t).unwrap();
        let p = r.path((PopId(0), PopId(3)));
        assert_eq!(p.len(), 2);
        assert_eq!(t.link(p[0]).dst, PopId(1)); // via b
    }

    #[test]
    fn disconnected_topology_reports_witness() {
        let mut b = Topology::builder("disc");
        b.pop("a").unwrap();
        b.pop("b").unwrap();
        let err = Routes::shortest_paths(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected { .. }));
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Diamond: a-b-d and a-c-d, both cost 2. Run twice; identical paths.
        let build = || {
            let mut b = Topology::builder("diamond");
            let a = b.pop("a").unwrap();
            let x = b.pop("b").unwrap();
            let y = b.pop("c").unwrap();
            let d = b.pop("d").unwrap();
            b.edge(a, x).unwrap();
            b.edge(a, y).unwrap();
            b.edge(x, d).unwrap();
            b.edge(y, d).unwrap();
            b.build().unwrap()
        };
        let t1 = build();
        let t2 = build();
        let r1 = Routes::shortest_paths(&t1).unwrap();
        let r2 = Routes::shortest_paths(&t2).unwrap();
        for o in 0..4 {
            for d in 0..4 {
                assert_eq!(
                    r1.path((PopId(o), PopId(d))),
                    r2.path((PopId(o), PopId(d))),
                    "paths differ for {o}->{d}"
                );
            }
        }
    }

    #[test]
    fn forward_and_reverse_paths_mirror_on_symmetric_weights() {
        let t = line4();
        let r = Routes::shortest_paths(&t).unwrap();
        // For the line, o->d and d->o traverse the same PoP sequence
        // reversed.
        let fwd = r.path((PopId(0), PopId(3)));
        let rev = r.path((PopId(3), PopId(0)));
        let fwd_pops: Vec<usize> = fwd.iter().map(|&l| t.link(l).dst.0).collect();
        let mut rev_pops: Vec<usize> = rev.iter().map(|&l| t.link(l).src.0).collect();
        rev_pops.reverse();
        assert_eq!(fwd_pops, rev_pops);
    }
}
