//! Built-in topologies: the two networks studied in the paper, small test
//! fixtures, and a seeded random generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{PopId, Topology};
use crate::matrix::RoutingMatrix;
use crate::routing::Routes;

/// A topology bundled with its routes and routing matrix — everything a
/// traffic generator or diagnoser needs about the network.
#[derive(Debug, Clone)]
pub struct Network {
    /// The PoP/link graph.
    pub topology: Topology,
    /// Shortest-path routes for all OD pairs.
    pub routes: Routes,
    /// The routing matrix `A` and derived per-flow vectors.
    pub routing_matrix: RoutingMatrix,
}

impl Network {
    /// Assemble a network from a topology (computes routes and `A`).
    ///
    /// # Panics
    /// Panics if the topology is not strongly connected; the built-in
    /// topologies all are, and generated ones are made so by construction.
    pub fn from_topology(topology: Topology) -> Self {
        let routes =
            Routes::shortest_paths(&topology).expect("built-in/generated topologies are connected");
        let routing_matrix = RoutingMatrix::new(&topology, &routes);
        Network {
            topology,
            routes,
            routing_matrix,
        }
    }
}

/// The Abilene (Internet2) backbone: 11 PoPs spanning the continental USA.
///
/// The link set follows the published map closely and is chosen to match
/// the paper's accounting exactly (Table 1): 15 bidirectional inter-PoP
/// edges → 30 directed links, plus 11 intra-PoP links = **41 links**, and
/// 11 × 11 = 121 OD flows.
pub fn abilene() -> Network {
    let mut b = Topology::builder("abilene");
    let names = [
        "nycm", "chin", "ipls", "atla", "wash", "hstn", "kscy", "dnvr", "losa", "snva", "sttl",
    ];
    let ids: Vec<PopId> = names.iter().map(|n| b.pop(*n).expect("unique")).collect();
    let by = |n: &str| ids[names.iter().position(|x| *x == n).unwrap()];

    let edges = [
        ("sttl", "snva"),
        ("sttl", "dnvr"),
        ("snva", "dnvr"),
        ("snva", "losa"),
        ("losa", "hstn"),
        ("dnvr", "kscy"),
        ("kscy", "hstn"),
        ("kscy", "ipls"),
        ("hstn", "atla"),
        ("ipls", "chin"),
        ("ipls", "atla"),
        ("chin", "nycm"),
        ("atla", "wash"),
        ("wash", "nycm"),
        ("nycm", "ipls"),
    ];
    for (x, y) in edges {
        b.edge(by(x), by(y)).expect("valid edge");
    }
    Network::from_topology(b.build().expect("non-empty"))
}

/// A Sprint-Europe-like backbone: 13 PoPs named `a`–`m` as in the paper's
/// Figure 2(b).
///
/// The exact Sprint-Europe link set is proprietary; this graph reproduces
/// the published structural facts: 13 PoPs, 18 bidirectional edges →
/// 36 directed links + 13 intra-PoP = **49 links** (Table 1), and the two
/// illustration paths of Figure 1 (`b-c-d-f-i` for OD flow `b→i` and its
/// reverse for `i→b`) are shortest paths of the graph.
pub fn sprint_europe() -> Network {
    let mut b = Topology::builder("sprint-europe");
    let names = [
        "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m",
    ];
    let ids: Vec<PopId> = names.iter().map(|n| b.pop(*n).expect("unique")).collect();
    let by = |n: &str| ids[names.iter().position(|x| *x == n).unwrap()];

    let edges = [
        ("a", "b"),
        ("a", "c"),
        ("b", "c"),
        ("c", "d"),
        ("c", "e"),
        ("d", "e"),
        ("d", "f"),
        ("e", "g"),
        ("f", "g"),
        ("f", "i"),
        ("g", "h"),
        ("h", "m"),
        ("i", "j"),
        ("j", "k"),
        ("k", "l"),
        ("l", "m"),
        ("i", "k"),
        ("m", "e"),
    ];
    for (x, y) in edges {
        b.edge(by(x), by(y)).expect("valid edge");
    }
    Network::from_topology(b.build().expect("non-empty"))
}

/// A line of `n ≥ 1` PoPs (`p0 - p1 - … - p(n-1)`); the smallest topology
/// with multi-hop paths. Useful in tests and examples.
pub fn line(n: usize) -> Network {
    let mut b = Topology::builder(format!("line{n}"));
    let ids: Vec<PopId> = (0..n)
        .map(|i| b.pop(format!("p{i}")).expect("unique"))
        .collect();
    for w in ids.windows(2) {
        b.edge(w[0], w[1]).expect("valid edge");
    }
    Network::from_topology(b.build().expect("n >= 1"))
}

/// A star: one hub PoP connected to `n − 1` leaves. Every leaf-to-leaf
/// flow crosses the hub, concentrating anomalies on few links.
pub fn star(n: usize) -> Network {
    assert!(n >= 2, "star needs at least a hub and one leaf");
    let mut b = Topology::builder(format!("star{n}"));
    let hub = b.pop("hub").expect("unique");
    for i in 1..n {
        let leaf = b.pop(format!("leaf{i}")).expect("unique");
        b.edge(hub, leaf).expect("valid edge");
    }
    Network::from_topology(b.build().expect("non-empty"))
}

/// A ring of `n ≥ 3` PoPs; every PoP has degree 2 and equal-cost path ties
/// exist for antipodal pairs on even `n`, exercising deterministic
/// tie-breaking.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3, "ring needs at least 3 PoPs");
    let mut b = Topology::builder(format!("ring{n}"));
    let ids: Vec<PopId> = (0..n)
        .map(|i| b.pop(format!("r{i}")).expect("unique"))
        .collect();
    for i in 0..n {
        b.edge(ids[i], ids[(i + 1) % n]).expect("valid edge");
    }
    Network::from_topology(b.build().expect("non-empty"))
}

/// A seeded random connected topology with `n ≥ 2` PoPs.
///
/// Construction: a random spanning tree (guaranteeing connectivity)
/// followed by extra random edges until the requested edge count is
/// reached. `extra_edges` is clamped to the number of available PoP pairs.
/// The same seed always yields the same topology.
pub fn random(n: usize, extra_edges: usize, seed: u64) -> Network {
    assert!(n >= 2, "random topology needs at least 2 PoPs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Topology::builder(format!("random{n}-{seed}"));
    let ids: Vec<PopId> = (0..n)
        .map(|i| b.pop(format!("n{i}")).expect("unique"))
        .collect();

    // Random spanning tree: attach each new node to a uniformly random
    // existing node.
    let mut present: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.edge(ids[i], ids[j]).expect("tree edge");
        present.push((j.min(i), j.max(i)));
    }

    // Candidate extra edges.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !present.contains(&(i, j)) {
                candidates.push((i, j));
            }
        }
    }
    // Fisher–Yates shuffle, take the first `extra_edges`.
    for i in (1..candidates.len()).rev() {
        let j = rng.random_range(0..=i);
        candidates.swap(i, j);
    }
    for &(i, j) in candidates.iter().take(extra_edges) {
        b.edge(ids[i], ids[j]).expect("extra edge");
    }
    Network::from_topology(b.build().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netanom_linalg::vector;

    #[test]
    fn abilene_matches_table_1() {
        let net = abilene();
        assert_eq!(net.topology.num_pops(), 11);
        assert_eq!(net.topology.num_links(), 41);
        assert_eq!(net.routing_matrix.num_flows(), 121);
    }

    #[test]
    fn sprint_matches_table_1() {
        let net = sprint_europe();
        assert_eq!(net.topology.num_pops(), 13);
        assert_eq!(net.topology.num_links(), 49);
        assert_eq!(net.routing_matrix.num_flows(), 169);
    }

    #[test]
    fn sprint_reproduces_figure_1_paths() {
        // Figure 1 example 1: OD flow b->i traverses links b-c, c-d, d-f, f-i.
        let net = sprint_europe();
        let t = &net.topology;
        let bid = t.pop_by_name("b").unwrap();
        let iid = t.pop_by_name("i").unwrap();
        let path = net.routes.path((bid, iid));
        let labels: Vec<String> = path.iter().map(|&l| t.link_label(l)).collect();
        assert_eq!(labels, vec!["b-c", "c-d", "d-f", "f-i"]);

        // Example 2: the reverse flow i->b uses the mirror links.
        let rev = net.routes.path((iid, bid));
        let rev_labels: Vec<String> = rev.iter().map(|&l| t.link_label(l)).collect();
        assert_eq!(rev_labels, vec!["i-f", "f-d", "d-c", "c-b"]);
    }

    #[test]
    fn abilene_path_sanity() {
        // Coast-to-coast paths exist and are multi-hop.
        let net = abilene();
        let t = &net.topology;
        let sttl = t.pop_by_name("sttl").unwrap();
        let nycm = t.pop_by_name("nycm").unwrap();
        let p = net.routes.path((sttl, nycm));
        assert!(p.len() >= 3, "sttl->nycm should be several hops");
    }

    #[test]
    fn all_flows_have_nonempty_paths() {
        for net in [abilene(), sprint_europe()] {
            for f in 0..net.routing_matrix.num_flows() {
                assert!(!net.routing_matrix.flow(f).path.is_empty());
            }
        }
    }

    #[test]
    fn every_link_carries_some_flow() {
        // If a link carried no flow, its measurement column would be
        // identically zero and tell the method nothing.
        for net in [abilene(), sprint_europe()] {
            let rm = &net.routing_matrix;
            for l in 0..rm.num_links() {
                let carried = (0..rm.num_flows()).any(|f| rm.column(f)[l] != 0.0);
                assert!(
                    carried,
                    "link {l} of {} carries nothing",
                    net.topology.name()
                );
            }
        }
    }

    #[test]
    fn line_star_ring_shapes() {
        assert_eq!(line(4).topology.num_links(), 3 * 2 + 4);
        assert_eq!(star(5).topology.num_links(), 4 * 2 + 5);
        assert_eq!(ring(6).topology.num_links(), 6 * 2 + 6);
    }

    #[test]
    fn star_routes_leaf_to_leaf_via_hub() {
        let net = star(4);
        let t = &net.topology;
        let l1 = t.pop_by_name("leaf1").unwrap();
        let l2 = t.pop_by_name("leaf2").unwrap();
        let p = net.routes.path((l1, l2));
        assert_eq!(p.len(), 2);
        assert_eq!(t.link(p[0]).dst, t.pop_by_name("hub").unwrap());
    }

    #[test]
    fn random_topology_is_deterministic_and_connected() {
        let a = random(10, 5, 42);
        let b = random(10, 5, 42);
        assert_eq!(a.topology.num_links(), b.topology.num_links());
        for f in 0..a.routing_matrix.num_flows() {
            assert_eq!(a.routing_matrix.flow(f).path, b.routing_matrix.flow(f).path);
        }
        // A different seed gives a different graph (overwhelmingly likely).
        let c = random(10, 5, 43);
        let same_paths = (0..a.routing_matrix.num_flows())
            .all(|f| a.routing_matrix.flow(f).path == c.routing_matrix.flow(f).path);
        assert!(!same_paths, "different seeds should differ");
    }

    #[test]
    fn random_extra_edges_clamped() {
        // Asking for far more edges than pairs exist must not panic.
        let net = random(4, 100, 7);
        // Complete graph on 4 nodes: 6 edges -> 12 directed + 4 intra.
        assert_eq!(net.topology.num_links(), 16);
    }

    #[test]
    fn mean_path_length_is_reasonable() {
        // Backbone sanity: average OD path a few hops long.
        for net in [abilene(), sprint_europe()] {
            let rm = &net.routing_matrix;
            let lens: Vec<f64> = (0..rm.num_flows()).map(|f| rm.path_len(f) as f64).collect();
            let mean = vector::mean(&lens);
            assert!(
                (1.0..=5.0).contains(&mean),
                "{}: mean path length {mean}",
                net.topology.name()
            );
        }
    }
}
