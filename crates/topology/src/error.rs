use std::fmt;

/// Errors produced when building or querying topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A PoP name was registered twice.
    DuplicatePop {
        /// The offending name.
        name: String,
    },
    /// An edge referenced a PoP index that does not exist.
    UnknownPop {
        /// The offending index.
        index: usize,
        /// Number of PoPs in the topology.
        num_pops: usize,
    },
    /// An edge connected a PoP to itself (intra-PoP links are created
    /// automatically and must not be added as edges).
    SelfEdge {
        /// The PoP index in question.
        pop: usize,
    },
    /// The same inter-PoP edge was added twice.
    DuplicateEdge {
        /// Endpoints of the duplicated edge.
        endpoints: (usize, usize),
    },
    /// An edge weight was non-positive or non-finite.
    InvalidWeight {
        /// The offending weight.
        weight_milli: i64,
    },
    /// The topology is not strongly connected, so some OD pair has no
    /// route. Contains one unreachable pair as a witness.
    Disconnected {
        /// An OD pair with no path between its endpoints.
        witness: (usize, usize),
    },
    /// The topology has no PoPs.
    EmptyTopology,
    /// A proposed link partition did not split the link set into
    /// disjoint, exhaustive, ascending shards.
    InvalidPartition {
        /// Which partition invariant was violated.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicatePop { name } => write!(f, "duplicate PoP name {name:?}"),
            TopologyError::UnknownPop { index, num_pops } => {
                write!(
                    f,
                    "PoP index {index} out of range (topology has {num_pops})"
                )
            }
            TopologyError::SelfEdge { pop } => write!(
                f,
                "self edge at PoP {pop}: intra-PoP links are implicit, do not add them as edges"
            ),
            TopologyError::DuplicateEdge { endpoints } => {
                write!(f, "edge {}-{} added twice", endpoints.0, endpoints.1)
            }
            TopologyError::InvalidWeight { weight_milli } => write!(
                f,
                "edge weight {} must be positive and finite",
                *weight_milli as f64 / 1000.0
            ),
            TopologyError::Disconnected { witness } => write!(
                f,
                "topology is not strongly connected: no path from PoP {} to PoP {}",
                witness.0, witness.1
            ),
            TopologyError::EmptyTopology => write!(f, "topology has no PoPs"),
            TopologyError::InvalidPartition { reason } => {
                write!(f, "invalid link partition: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TopologyError::DuplicatePop {
            name: "nycm".into()
        }
        .to_string()
        .contains("nycm"));
        assert!(TopologyError::UnknownPop {
            index: 7,
            num_pops: 3
        }
        .to_string()
        .contains('7'));
        assert!(TopologyError::SelfEdge { pop: 2 }
            .to_string()
            .contains("intra-PoP"));
        assert!(TopologyError::Disconnected { witness: (0, 5) }
            .to_string()
            .contains("no path"));
        assert!(TopologyError::InvalidWeight {
            weight_milli: -1000
        }
        .to_string()
        .contains("-1"));
    }
}
