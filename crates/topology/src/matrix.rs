//! The routing matrix `A` and per-flow derived vectors.

use netanom_linalg::{vector, Matrix};

use crate::graph::{LinkId, PopId, Topology};
use crate::routing::Routes;

/// Identifier of an OD flow (column index into the routing matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// An ordered origin–destination PoP pair.
pub type OdPair = (PopId, PopId);

/// Metadata for one OD flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Column index in the routing matrix.
    pub id: FlowId,
    /// Origin and destination PoPs.
    pub od: OdPair,
    /// The links this flow traverses.
    pub path: Vec<LinkId>,
}

/// The routing matrix `A` (`#links × #OD-flows`, entries 0/1) together with
/// the per-flow vectors the subspace method consumes.
///
/// Columns are ordered by `origin * num_pops + destination`, covering every
/// ordered PoP pair including self-pairs (which traverse only their PoP's
/// intra-PoP link). For Abilene this gives the paper's 41 × 121 matrix; for
/// the Sprint-Europe-like topology, 49 × 169.
///
/// Three views of column `i` are precomputed because the diagnosis steps
/// use them constantly:
///
/// * `column(i)` — the raw 0/1 column `Aᵢ`,
/// * [`RoutingMatrix::theta`] — `θᵢ = Aᵢ / ‖Aᵢ‖`, the unit-norm direction in
///   which a one-dimensional anomaly in flow `i` moves the link vector
///   (Section 5.2), and
/// * [`RoutingMatrix::abar`] — `Āᵢ = Aᵢ / ΣAᵢ`, the unit-sum weights used to
///   convert per-link anomalous traffic back to flow bytes (Section 5.3).
#[derive(Debug, Clone)]
pub struct RoutingMatrix {
    a: Matrix,
    flows: Vec<Flow>,
    theta: Matrix,
    abar: Matrix,
}

impl RoutingMatrix {
    /// Build a routing matrix from externally-supplied per-flow link
    /// paths — the entry point for users bringing their own network
    /// (routing tables exported from IGP/BGP state rather than computed
    /// by this crate's Dijkstra).
    ///
    /// `paths[f]` lists the link indices flow `f` traverses. Duplicate
    /// links within a path are collapsed (the matrix is 0/1). Flow
    /// metadata records a placeholder OD pair derived from the flow index
    /// when the flow count is a perfect square (`o = f / √n`,
    /// `d = f mod √n`), or `(0, 0)` otherwise.
    ///
    /// # Panics
    /// Panics if any path is empty or references a link `≥ num_links`.
    pub fn from_paths(num_links: usize, paths: &[Vec<usize>]) -> Self {
        let n_flows = paths.len();
        let side = (n_flows as f64).sqrt() as usize;
        let square = side * side == n_flows;

        let mut a = Matrix::zeros(num_links, n_flows);
        let mut flows = Vec::with_capacity(n_flows);
        for (f, path) in paths.iter().enumerate() {
            assert!(!path.is_empty(), "flow {f} has an empty path");
            let mut link_ids = Vec::with_capacity(path.len());
            for &l in path {
                assert!(l < num_links, "flow {f} references link {l} >= {num_links}");
                if a[(l, f)] == 0.0 {
                    a[(l, f)] = 1.0;
                    link_ids.push(LinkId(l));
                }
            }
            let od = if square {
                (PopId(f / side), PopId(f % side))
            } else {
                (PopId(0), PopId(0))
            };
            flows.push(Flow {
                id: FlowId(f),
                od,
                path: link_ids,
            });
        }
        Self::finish(a, flows)
    }

    /// Build the routing matrix from a topology and its routes.
    pub fn new(topo: &Topology, routes: &Routes) -> Self {
        let n_pops = topo.num_pops();
        let m = topo.num_links();
        let n_flows = n_pops * n_pops;

        let mut a = Matrix::zeros(m, n_flows);
        let mut flows = Vec::with_capacity(n_flows);
        for o in 0..n_pops {
            for d in 0..n_pops {
                let id = FlowId(o * n_pops + d);
                let od = (PopId(o), PopId(d));
                let path = routes.path(od).to_vec();
                for &lid in &path {
                    a[(lid.0, id.0)] = 1.0;
                }
                flows.push(Flow { id, od, path });
            }
        }

        Self::finish(a, flows)
    }

    /// Derive `θᵢ` and `Āᵢ` from the 0/1 matrix and freeze.
    fn finish(a: Matrix, flows: Vec<Flow>) -> Self {
        let m = a.rows();
        let n_flows = a.cols();
        let mut theta = Matrix::zeros(m, n_flows);
        let mut abar = Matrix::zeros(m, n_flows);
        for f in 0..n_flows {
            let col = a.col(f);
            let norm = vector::norm(&col);
            let sum = vector::sum(&col);
            for (l, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    theta[(l, f)] = v / norm;
                    abar[(l, f)] = v / sum;
                }
            }
        }
        RoutingMatrix {
            a,
            flows,
            theta,
            abar,
        }
    }

    /// The raw matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Number of links (rows of `A`).
    pub fn num_links(&self) -> usize {
        self.a.rows()
    }

    /// Number of OD flows (columns of `A`).
    pub fn num_flows(&self) -> usize {
        self.a.cols()
    }

    /// Metadata for flow `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn flow(&self, i: usize) -> &Flow {
        &self.flows[i]
    }

    /// All flows in column order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Raw 0/1 column `Aᵢ`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn column(&self, i: usize) -> Vec<f64> {
        self.a.col(i)
    }

    /// Unit-norm anomaly direction `θᵢ = Aᵢ / ‖Aᵢ‖`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn theta(&self, i: usize) -> Vec<f64> {
        self.theta.col(i)
    }

    /// All `θᵢ` as the columns of an `m × n` matrix.
    pub fn theta_matrix(&self) -> &Matrix {
        &self.theta
    }

    /// Unit-sum quantification weights `Āᵢ = Aᵢ / ΣAᵢ`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn abar(&self, i: usize) -> Vec<f64> {
        self.abar.col(i)
    }

    /// Number of links on flow `i`'s path (`ΣAᵢ`, also `‖Aᵢ‖²`).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn path_len(&self, i: usize) -> usize {
        self.flows[i].path.len()
    }

    /// Map an OD pair to its flow id.
    pub fn flow_id(&self, od: OdPair) -> FlowId {
        let n = (self.flows.len() as f64).sqrt() as usize;
        FlowId(od.0 .0 * n + od.1 .0)
    }

    /// Compute link loads `y = A x` for one timestep of OD traffic `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != num_flows()`.
    pub fn link_loads(&self, x: &[f64]) -> Vec<f64> {
        self.a
            .matvec(x)
            .expect("x length checked against num_flows")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use crate::routing::Routes;

    fn line3() -> (Topology, Routes, RoutingMatrix) {
        let mut b = Topology::builder("line3");
        let a = b.pop("a").unwrap();
        let bb = b.pop("b").unwrap();
        let c = b.pop("c").unwrap();
        b.edge(a, bb).unwrap();
        b.edge(bb, c).unwrap();
        let topo = b.build().unwrap();
        let routes = Routes::shortest_paths(&topo).unwrap();
        let rm = RoutingMatrix::new(&topo, &routes);
        (topo, routes, rm)
    }

    #[test]
    fn dimensions() {
        let (topo, _, rm) = line3();
        assert_eq!(rm.num_links(), topo.num_links()); // 4 directed + 3 intra = 7
        assert_eq!(rm.num_links(), 7);
        assert_eq!(rm.num_flows(), 9);
    }

    #[test]
    fn columns_are_path_indicators() {
        let (topo, routes, rm) = line3();
        for f in 0..rm.num_flows() {
            let flow = rm.flow(f);
            let col = rm.column(f);
            let expected = routes.path(flow.od);
            let ones: Vec<usize> = col
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(l, _)| l)
                .collect();
            let mut path_ids: Vec<usize> = expected.iter().map(|l| l.0).collect();
            path_ids.sort_unstable();
            assert_eq!(ones, path_ids, "column {f} mismatch");
            let _ = &topo;
        }
    }

    #[test]
    fn theta_has_unit_norm() {
        let (_, _, rm) = line3();
        for f in 0..rm.num_flows() {
            let t = rm.theta(f);
            assert!((vector::norm(&t) - 1.0).abs() < 1e-12, "theta {f} not unit");
        }
    }

    #[test]
    fn abar_has_unit_sum() {
        let (_, _, rm) = line3();
        for f in 0..rm.num_flows() {
            let t = rm.abar(f);
            assert!(
                (vector::sum(&t) - 1.0).abs() < 1e-12,
                "abar {f} not unit-sum"
            );
        }
    }

    #[test]
    fn path_len_consistency() {
        let (_, _, rm) = line3();
        for f in 0..rm.num_flows() {
            let col = rm.column(f);
            assert_eq!(vector::sum(&col) as usize, rm.path_len(f));
            // For a 0/1 column, ||A_i||^2 == sum(A_i).
            assert!((vector::norm_sq(&col) - vector::sum(&col)).abs() < 1e-12);
        }
    }

    #[test]
    fn flow_id_roundtrip() {
        let (_, _, rm) = line3();
        for f in 0..rm.num_flows() {
            let flow = rm.flow(f);
            assert_eq!(rm.flow_id(flow.od).0, f);
        }
    }

    #[test]
    fn link_loads_superpose() {
        let (_, _, rm) = line3();
        // Unit traffic on every flow: each link load equals the number of
        // flows crossing it.
        let x = vec![1.0; rm.num_flows()];
        let y = rm.link_loads(&x);
        for (l, load) in y.iter().enumerate() {
            let crossing = (0..rm.num_flows())
                .filter(|&f| rm.column(f)[l] != 0.0)
                .count();
            assert_eq!(*load as usize, crossing);
        }
    }

    #[test]
    fn from_paths_matches_topology_construction() {
        let (_, _, rm) = line3();
        let paths: Vec<Vec<usize>> = (0..rm.num_flows())
            .map(|f| rm.flow(f).path.iter().map(|l| l.0).collect())
            .collect();
        let rebuilt = RoutingMatrix::from_paths(rm.num_links(), &paths);
        assert!(rebuilt.a().approx_eq(rm.a(), 0.0));
        for f in 0..rm.num_flows() {
            assert_eq!(rebuilt.flow(f).od, rm.flow(f).od, "OD pair of flow {f}");
            assert!(vector::approx_eq(&rebuilt.theta(f), &rm.theta(f), 1e-12));
            assert!(vector::approx_eq(&rebuilt.abar(f), &rm.abar(f), 1e-12));
        }
    }

    #[test]
    fn from_paths_collapses_duplicate_links() {
        let rm = RoutingMatrix::from_paths(3, &[vec![0, 0, 2]]);
        assert_eq!(rm.path_len(0), 2);
        assert_eq!(rm.column(0), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn from_paths_rejects_empty_path() {
        RoutingMatrix::from_paths(3, &[vec![]]);
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn from_paths_rejects_out_of_range_link() {
        RoutingMatrix::from_paths(3, &[vec![7]]);
    }

    #[test]
    fn self_flows_touch_only_intra_links() {
        let (topo, _, rm) = line3();
        for p in 0..3 {
            let f = rm.flow_id((PopId(p), PopId(p)));
            let flow = rm.flow(f.0);
            assert_eq!(flow.path.len(), 1);
            assert!(topo.link(flow.path[0]).is_intra_pop());
        }
    }
}
