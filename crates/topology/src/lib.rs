//! PoP-level network topologies, routing, and routing matrices.
//!
//! A backbone network in Lakhina et al.'s model is a set of PoPs (points of
//! presence) connected by directed links, where the traffic on each link is
//! the superposition of origin-destination (OD) flows routed over it:
//! `y = A x`, with `A` the 0/1 *routing matrix* (`#links × #OD-flows`).
//!
//! This crate supplies everything on the right-hand side of that equation:
//!
//! * [`Topology`] — a builder-style graph of named PoPs, bidirectional
//!   inter-PoP edges (stored as directed link pairs) and one intra-PoP link
//!   per PoP (used by OD flows that enter and exit at the same PoP — the
//!   paper counts these: Abilene has 30 + 11 = 41 links, Sprint-Europe
//!   36 + 13 = 49).
//! * [`routing::Routes`] — shortest-path routes for every ordered PoP pair,
//!   computed by Dijkstra with deterministic tie-breaking.
//! * [`RoutingMatrix`] — the matrix `A` plus the derived per-flow vectors
//!   the subspace method consumes: `θᵢ = Aᵢ/‖Aᵢ‖` (unit-norm anomaly
//!   direction) and `Āᵢ = Aᵢ/ΣAᵢ` (quantification weights).
//! * [`builtin`] — the two topologies studied in the paper plus small
//!   fixtures and a seeded random generator.
//! * [`synth`] — parameterized synthetic backbones (PoP count, degree
//!   distribution, jittered IGP weights, exact link-count targeting) for
//!   thousand-link scale workloads.
//! * [`partition`] — [`LinkPartition`]: validated splits of the link set
//!   (per-PoP, round-robin, explicit) for the sharded diagnosis layer.
//!
//! # Example
//!
//! ```
//! use netanom_topology::builtin;
//!
//! let net = builtin::abilene();
//! assert_eq!(net.topology.num_pops(), 11);
//! assert_eq!(net.topology.num_links(), 41);            // Table 1
//! assert_eq!(net.routing_matrix.num_flows(), 11 * 11); // all OD pairs
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
mod error;
mod graph;
mod matrix;
pub mod partition;
pub mod routing;
pub mod synth;

pub use builtin::Network;
pub use error::TopologyError;
pub use graph::{Link, LinkId, Pop, PopId, Topology};
pub use matrix::{Flow, FlowId, OdPair, RoutingMatrix};
pub use partition::LinkPartition;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TopologyError>;
