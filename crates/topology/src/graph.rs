//! The PoP/link graph.

use crate::{Result, TopologyError};

/// Identifier of a PoP (index into [`Topology::pops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PopId(pub usize);

/// Identifier of a directed link (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// A point of presence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pop {
    /// Short name, e.g. `"nycm"` or `"c"`.
    pub name: String,
}

/// A directed link between two PoPs, or an intra-PoP link
/// (`src == dst`).
///
/// Intra-PoP links carry the traffic of OD flows that enter and leave the
/// backbone at the same PoP; the paper counts them among the network's
/// links (Table 1 and its footnote).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source PoP.
    pub src: PopId,
    /// Destination PoP.
    pub dst: PopId,
    /// IGP weight used by shortest-path routing. Intra-PoP links have
    /// weight `0.0` (they are never part of an inter-PoP route).
    pub weight: f64,
}

impl Link {
    /// `true` if this is an intra-PoP link.
    pub fn is_intra_pop(&self) -> bool {
        self.src == self.dst
    }
}

/// A PoP-level backbone topology.
///
/// Build one with [`Topology::builder`]; inter-PoP edges are added as
/// bidirectional pairs (two directed links with the same weight), and one
/// intra-PoP link per PoP is appended automatically when the builder is
/// finished, so that the link count matches the paper's accounting.
///
/// Link ordering is deterministic: the `2·E` directed inter-PoP links in
/// insertion order (forward then reverse for each edge), followed by the
/// `P` intra-PoP links in PoP order.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    pops: Vec<Pop>,
    links: Vec<Link>,
    /// Outgoing inter-PoP link ids per PoP, for routing.
    out_links: Vec<Vec<LinkId>>,
    /// Intra-PoP link id per PoP.
    intra_links: Vec<LinkId>,
}

impl Topology {
    /// Start building a topology with the given human-readable name.
    pub fn builder(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder {
            name: name.into(),
            pops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Topology name (e.g. `"abilene"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of PoPs.
    pub fn num_pops(&self) -> usize {
        self.pops.len()
    }

    /// Total number of links: directed inter-PoP links plus one intra-PoP
    /// link per PoP. This is the `m` of the measurement matrix.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All PoPs, indexable by [`PopId`].
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// All links, indexable by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The PoP with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.0]
    }

    /// The link with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Ids of the directed inter-PoP links leaving `pop`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn out_links(&self, pop: PopId) -> &[LinkId] {
        &self.out_links[pop.0]
    }

    /// The intra-PoP link of `pop`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn intra_link(&self, pop: PopId) -> LinkId {
        self.intra_links[pop.0]
    }

    /// Find a PoP by name.
    pub fn pop_by_name(&self, name: &str) -> Option<PopId> {
        self.pops.iter().position(|p| p.name == name).map(PopId)
    }

    /// Human-readable label for a link, e.g. `"c-d"` or `"c (intra)"`.
    pub fn link_label(&self, id: LinkId) -> String {
        let l = self.link(id);
        if l.is_intra_pop() {
            format!("{} (intra)", self.pop(l.src).name)
        } else {
            format!("{}-{}", self.pop(l.src).name, self.pop(l.dst).name)
        }
    }

    /// Number of directed inter-PoP links (excludes intra-PoP links).
    pub fn num_inter_pop_links(&self) -> usize {
        self.links.len() - self.pops.len()
    }
}

/// Incremental [`Topology`] construction.
#[derive(Debug)]
pub struct TopologyBuilder {
    name: String,
    pops: Vec<Pop>,
    edges: Vec<(usize, usize, f64)>,
}

impl TopologyBuilder {
    /// Register a PoP, returning its id. Names must be unique.
    pub fn pop(&mut self, name: impl Into<String>) -> Result<PopId> {
        let name = name.into();
        if self.pops.iter().any(|p| p.name == name) {
            return Err(TopologyError::DuplicatePop { name });
        }
        self.pops.push(Pop { name });
        Ok(PopId(self.pops.len() - 1))
    }

    /// Add a bidirectional inter-PoP edge with unit weight.
    pub fn edge(&mut self, a: PopId, b: PopId) -> Result<&mut Self> {
        self.weighted_edge(a, b, 1.0)
    }

    /// Add a bidirectional inter-PoP edge with an explicit IGP weight.
    pub fn weighted_edge(&mut self, a: PopId, b: PopId, weight: f64) -> Result<&mut Self> {
        for id in [a, b] {
            if id.0 >= self.pops.len() {
                return Err(TopologyError::UnknownPop {
                    index: id.0,
                    num_pops: self.pops.len(),
                });
            }
        }
        if a == b {
            return Err(TopologyError::SelfEdge { pop: a.0 });
        }
        if weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !weight.is_finite() {
            return Err(TopologyError::InvalidWeight {
                weight_milli: (weight * 1000.0) as i64,
            });
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if self
            .edges
            .iter()
            .any(|&(x, y, _)| (x.min(y), x.max(y)) == key)
        {
            return Err(TopologyError::DuplicateEdge { endpoints: key });
        }
        self.edges.push((a.0, b.0, weight));
        Ok(self)
    }

    /// Finish building: appends intra-PoP links and freezes the topology.
    pub fn build(self) -> Result<Topology> {
        if self.pops.is_empty() {
            return Err(TopologyError::EmptyTopology);
        }
        let mut links = Vec::with_capacity(self.edges.len() * 2 + self.pops.len());
        let mut out_links = vec![Vec::new(); self.pops.len()];
        for &(a, b, w) in &self.edges {
            out_links[a].push(LinkId(links.len()));
            links.push(Link {
                src: PopId(a),
                dst: PopId(b),
                weight: w,
            });
            out_links[b].push(LinkId(links.len()));
            links.push(Link {
                src: PopId(b),
                dst: PopId(a),
                weight: w,
            });
        }
        let mut intra_links = Vec::with_capacity(self.pops.len());
        for p in 0..self.pops.len() {
            intra_links.push(LinkId(links.len()));
            links.push(Link {
                src: PopId(p),
                dst: PopId(p),
                weight: 0.0,
            });
        }
        Ok(Topology {
            name: self.name,
            pops: self.pops,
            links,
            out_links,
            intra_links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = Topology::builder("tri");
        let x = b.pop("x").unwrap();
        let y = b.pop("y").unwrap();
        let z = b.pop("z").unwrap();
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        b.edge(z, x).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn link_counting_matches_paper_convention() {
        let t = triangle();
        assert_eq!(t.num_pops(), 3);
        // 3 edges -> 6 directed + 3 intra-PoP.
        assert_eq!(t.num_links(), 9);
        assert_eq!(t.num_inter_pop_links(), 6);
    }

    #[test]
    fn intra_links_are_last_and_self_looped() {
        let t = triangle();
        for p in 0..3 {
            let l = t.link(t.intra_link(PopId(p)));
            assert!(l.is_intra_pop());
            assert_eq!(l.src, PopId(p));
        }
        // First six links are inter-PoP.
        for i in 0..6 {
            assert!(!t.link(LinkId(i)).is_intra_pop());
        }
    }

    #[test]
    fn out_links_cover_both_directions() {
        let t = triangle();
        // Each PoP in a triangle has out-degree 2.
        for p in 0..3 {
            assert_eq!(t.out_links(PopId(p)).len(), 2);
            for &lid in t.out_links(PopId(p)) {
                assert_eq!(t.link(lid).src, PopId(p));
            }
        }
    }

    #[test]
    fn duplicate_pop_rejected() {
        let mut b = Topology::builder("t");
        b.pop("a").unwrap();
        assert!(matches!(
            b.pop("a"),
            Err(TopologyError::DuplicatePop { .. })
        ));
    }

    #[test]
    fn self_edge_rejected() {
        let mut b = Topology::builder("t");
        let a = b.pop("a").unwrap();
        assert!(matches!(b.edge(a, a), Err(TopologyError::SelfEdge { .. })));
    }

    #[test]
    fn duplicate_edge_rejected_either_direction() {
        let mut b = Topology::builder("t");
        let a = b.pop("a").unwrap();
        let c = b.pop("c").unwrap();
        b.edge(a, c).unwrap();
        assert!(matches!(
            b.edge(c, a),
            Err(TopologyError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn unknown_pop_rejected() {
        let mut b = Topology::builder("t");
        let a = b.pop("a").unwrap();
        assert!(matches!(
            b.edge(a, PopId(9)),
            Err(TopologyError::UnknownPop { .. })
        ));
    }

    #[test]
    fn invalid_weight_rejected() {
        let mut b = Topology::builder("t");
        let a = b.pop("a").unwrap();
        let c = b.pop("c").unwrap();
        assert!(b.weighted_edge(a, c, 0.0).is_err());
        assert!(b.weighted_edge(a, c, -1.0).is_err());
        assert!(b.weighted_edge(a, c, f64::NAN).is_err());
        assert!(b.weighted_edge(a, c, f64::INFINITY).is_err());
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(
            Topology::builder("t").build(),
            Err(TopologyError::EmptyTopology)
        ));
    }

    #[test]
    fn pop_by_name_and_labels() {
        let t = triangle();
        assert_eq!(t.pop_by_name("y"), Some(PopId(1)));
        assert_eq!(t.pop_by_name("nope"), None);
        assert_eq!(t.link_label(LinkId(0)), "x-y");
        let intra = t.intra_link(PopId(2));
        assert_eq!(t.link_label(intra), "z (intra)");
    }

    #[test]
    fn single_pop_topology_has_one_intra_link() {
        let mut b = Topology::builder("solo");
        b.pop("only").unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_links(), 1);
        assert!(t.link(LinkId(0)).is_intra_pop());
    }
}
