//! Benchmarks of the temporal baseline detectors — the ablation behind
//! Figure 10's methodological comparison and the cost context for the
//! paper's claim that per-OD-flow temporal decomposition "is impractical".

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_baselines::{Ewma, FourierModel, HaarWavelet, HoltWinters};
use netanom_bench::sprint1;

fn bench_baselines(c: &mut Criterion) {
    let ds = sprint1();
    // One real link timeseries (the busiest link) as the workload.
    let means = ds.links.link_means();
    let busiest = means
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .expect("links exist");
    let series = ds.links.link_series(busiest);

    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);

    group.bench_function("ewma_forecast_1008", |b| {
        let e = Ewma::new(0.25);
        b.iter(|| e.bidirectional_spike_sizes(black_box(&series)))
    });
    group.bench_function("ewma_grid_search_1008", |b| {
        b.iter(|| Ewma::grid_search(black_box(&series)))
    });
    group.bench_function("fourier_fit_1008", |b| {
        b.iter(|| FourierModel::fit_paper_basis(black_box(&series)))
    });
    group.bench_function("holt_winters_1008", |b| {
        let hw = HoltWinters::daily();
        b.iter(|| hw.residuals(black_box(&series)))
    });
    group.bench_function("haar_wavelet_1008", |b| {
        let w = HaarWavelet::new(5);
        b.iter(|| w.residuals(black_box(&series)))
    });

    // The paper's scaling argument: temporal methods must run per OD
    // flow (169 of them), the subspace method once. This measures the
    // per-flow Fourier cost that multiplies.
    let flow_series = ds.od.flow_series(ds.od.num_flows() / 2);
    group.bench_function("fourier_fit_per_od_flow", |b| {
        b.iter(|| FourierModel::fit_paper_basis(black_box(&flow_series)))
    });

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
