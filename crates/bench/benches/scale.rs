//! Benchmarks of the large-topology refit path: the numbers behind the
//! truncated-eigensolver trade-off (ISSUE 5's acceptance gate is the
//! truncated refit ≥ 5× faster than the full Jacobi refit at
//! `m = 1024`).
//!
//! `scale/refit_m{512,1024}_{jacobi,truncated}` rebuild a
//! [`SubspaceModel`](netanom_core::SubspaceModel) from the same
//! sufficient statistics (`IncrementalCovariance` over a synthetic
//! diurnal window): the `jacobi` ids run the full `m × m` eigensolve
//! (`to_model`, the [`RefitStrategy::Incremental`] route), the
//! `truncated` ids the blocked top-k subspace iteration plus the
//! exact-moment threshold traces (`to_model_truncated`, the
//! [`RefitStrategy::Truncated`] route).
//!
//! [`RefitStrategy::Incremental`]: netanom_core::RefitStrategy::Incremental
//! [`RefitStrategy::Truncated`]: netanom_core::RefitStrategy::Truncated

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_core::incremental::IncrementalCovariance;
use netanom_core::SeparationPolicy;
use netanom_linalg::Matrix;

const TRAIN_BINS: usize = 288;
const R: usize = 6;
const K: usize = 8;
const TOL: f64 = 1e-10;

/// Sufficient statistics of a synthetic diurnal window at width `m`:
/// the same structural shape the streaming benches use, so the
/// covariance has a realistic few-dominant-axes spectrum with a noisy
/// tail.
fn stats(m: usize) -> IncrementalCovariance {
    let data = Matrix::from_fn(TRAIN_BINS, m, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 7) as f64 + 1.0)
            + 1e5 * (2.0 * phase).cos() * ((l % 5) as f64)
            + 5e4 * (3.0 * phase).sin() * ((l % 11) as f64);
        let noise = (((i * m + l).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    });
    IncrementalCovariance::from_matrix(&data)
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    // Each jacobi iteration is seconds of wall clock at these sizes;
    // keep the sample counts minimal.
    group.sample_size(2);
    for m in [512usize, 1024] {
        let acc = stats(m);
        group.bench_function(&format!("refit_m{m}_jacobi"), |b| {
            b.iter(|| {
                black_box(&acc)
                    .to_model(SeparationPolicy::FixedCount(R))
                    .expect("synthetic stats fit")
                    .normal_dim()
            })
        });
        group.bench_function(&format!("refit_m{m}_truncated"), |b| {
            b.iter(|| {
                black_box(&acc)
                    .to_model_truncated(SeparationPolicy::FixedCount(R), K, TOL)
                    .expect("synthetic stats fit")
                    .normal_dim()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
