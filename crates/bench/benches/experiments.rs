//! One bench per table/figure: measures the computation that regenerates
//! each artifact of the paper's evaluation (the artifacts themselves are
//! produced by `cargo run -p netanom-eval --bin experiments`).
//!
//! Injection-sweep benches (fig7/fig8/fig9/table3) run on a reduced time
//! grid so the whole suite stays in CI-friendly territory; the sweep cost
//! is linear in the number of injection times.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_baselines::link_residual::{residual_energy_series, LinkFilter};
use netanom_baselines::{extract_true_anomalies, TruthMethod};
use netanom_bench::{abilene, abilene_diagnoser, sprint1, sprint1_diagnoser};
use netanom_core::{Pca, SeparationPolicy};
use netanom_eval::injection;
use netanom_eval::metrics::{self, TruthEvent};

fn bench_experiments(c: &mut Criterion) {
    let ds = sprint1();
    let diagnoser = sprint1_diagnoser();
    let links = ds.links.matrix();

    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    // Figure 3: scree (PCA + variance fractions) per dataset.
    group.bench_function("fig3_scree", |b| {
        b.iter(|| {
            let pca = Pca::fit(black_box(links), Default::default()).expect("fits");
            (
                pca.variance_fractions(),
                SeparationPolicy::default().normal_dim(&pca),
            )
        })
    });

    // Figure 4: temporal projections of four axes.
    group.bench_function("fig4_projections", |b| {
        let pca = Pca::fit(links, Default::default()).expect("fits");
        b.iter(|| {
            for i in [0usize, 1, 5, 7] {
                black_box(pca.temporal_projection(i));
            }
        })
    });

    // Figure 5: state + SPE series with both thresholds.
    group.bench_function("fig5_spe_series", |b| {
        let model = diagnoser.model();
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..links.rows() {
                acc += model.spe(links.row(t)).expect("dims");
            }
            (acc, model.q_threshold(0.995).expect("ok").delta_sq)
        })
    });

    // Figure 6 / Table 2: temporal ground-truth extraction + validation.
    group.bench_function("fig6_fourier_extraction", |b| {
        b.iter(|| extract_true_anomalies(black_box(&ds.od), TruthMethod::Fourier, 40))
    });
    group.bench_function("table2_validation", |b| {
        let truth: Vec<TruthEvent> = extract_true_anomalies(&ds.od, TruthMethod::Fourier, 40)
            .into_iter()
            .map(Into::into)
            .collect();
        let reports = diagnoser.diagnose_series(links).expect("dims");
        b.iter(|| metrics::validate_strict(black_box(&reports), &truth, ds.cutoff_bytes))
    });

    // Figures 7-9 / Table 3: injection sweeps (reduced grid: 12 times).
    let times: Vec<usize> = (288..432).step_by(12).collect();
    group.bench_function("fig7_injection_sweep_large", |b| {
        b.iter(|| injection::sweep(ds, diagnoser, ds.large_injection, black_box(&times), 8))
    });
    group.bench_function("table3_injection_sweep_small", |b| {
        b.iter(|| injection::sweep(ds, diagnoser, ds.small_injection, black_box(&times), 8))
    });
    group.bench_function("table3_abilene_sweep_large", |b| {
        let ads = abilene();
        let adiag = abilene_diagnoser();
        b.iter(|| injection::sweep(ads, adiag, ads.large_injection, black_box(&times), 8))
    });

    // Figure 10: per-link temporal residuals (Fourier is the heavy one).
    group.bench_function("fig10_fourier_link_residuals", |b| {
        b.iter(|| residual_energy_series(black_box(&ds.links), LinkFilter::Fourier))
    });
    group.bench_function("fig10_haar_link_residuals", |b| {
        b.iter(|| residual_energy_series(black_box(&ds.links), LinkFilter::Haar { levels: 5 }))
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
