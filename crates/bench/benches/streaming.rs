//! Benchmarks of the streaming ingestion engine: the numbers behind the
//! refit-strategy trade-off (ISSUE 2's acceptance gate is incremental
//! refits ≥ 3× faster than full-SVD refits at `m = 121`).
//!
//! `stream/ingest_m121_*` replay two days of arrivals (288 bins, one
//! `process_batch` per 36-bin poll cycle) against a one-week window
//! (1008 × 121) with a refit every 72 arrivals — four refits per
//! iteration, so the refit cost dominates exactly as it would in a
//! deployment that tracks drift aggressively. `stream/refit_m121_*`
//! isolate a single refit of each flavor.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_core::stream::{RefitStrategy, StreamConfig, StreamingEngine};
use netanom_core::{DiagnoserConfig, PcaMethod, SeparationPolicy};
use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

const M: usize = 121;
const WINDOW: usize = 1008;
const STREAM_BINS: usize = 288;
const CHUNK: usize = 36;
const REFIT_EVERY: usize = 72;

fn links(bins: usize, seed: usize) -> Matrix {
    Matrix::from_fn(bins, M, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 7) as f64 + 1.0);
        let noise = (((i * M + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    })
}

fn engine(strategy: RefitStrategy) -> StreamingEngine {
    let training = links(WINDOW, 0);
    // One candidate flow per link: identification stays in the loop
    // without needing a topology at this width.
    let identity: Vec<Vec<usize>> = (0..M).map(|l| vec![l]).collect();
    let rm = RoutingMatrix::from_paths(M, &identity);
    let config = DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(6),
        pca_method: PcaMethod::Svd,
        confidence: 0.999,
    };
    StreamingEngine::new(
        &training,
        &rm,
        config,
        StreamConfig::new(WINDOW)
            .refit_every(REFIT_EVERY)
            .strategy(strategy),
    )
    .expect("synthetic data fits")
}

/// Two streamed days in poll-cycle chunks; refits included.
fn ingest(base: &StreamingEngine, stream: &Matrix) -> usize {
    let mut engine = base.clone();
    let mut alarms = 0usize;
    let mut next = 0;
    while next < stream.rows() {
        let take = CHUNK.min(stream.rows() - next);
        let block = stream.row_block(next, take).expect("range checked");
        alarms += engine
            .process_batch(&block)
            .expect("dims match")
            .iter()
            .filter(|r| r.detected)
            .count();
        next += take;
    }
    alarms
}

fn bench_streaming(c: &mut Criterion) {
    let stream = links(STREAM_BINS, WINDOW);
    let full = engine(RefitStrategy::FullSvd);
    let incremental = engine(RefitStrategy::Incremental);

    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.bench_function("ingest_m121_fullsvd", |b| {
        b.iter(|| ingest(black_box(&full), black_box(&stream)))
    });
    group.bench_function("ingest_m121_incremental", |b| {
        b.iter(|| ingest(black_box(&incremental), black_box(&stream)))
    });

    // A single refit of each flavor, isolated from diagnosis.
    group.bench_function("refit_m121_fullsvd", |b| {
        b.iter(|| {
            let mut e = full.clone();
            e.refit().expect("window is fit-able");
            e.refits()
        })
    });
    group.bench_function("refit_m121_incremental", |b| {
        b.iter(|| {
            let mut e = incremental.clone();
            e.refit().expect("window is fit-able");
            e.refits()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
