//! Benchmarks of the pluggable detection backends: the ingestion cost
//! of each method through the *same* streaming engine.
//!
//! `methods/ingest_m121_*` replay two days of arrivals (288 bins, one
//! `process_batch` per 36-bin poll cycle) against a one-week window
//! (1008 × 121) with a refit every 72 arrivals — four refits per
//! iteration, so each method's model upkeep (Jacobi refit, per-link
//! grid search, Holt–Winters replay, pyramid rebuild) is part of its
//! number. The committed reference baseline is
//! `scripts/bench-baseline-methods.jsonl`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_baselines::methods::{MethodBackend, TemporalBackend, TemporalKind};
use netanom_core::method::SubspaceBackend;
use netanom_core::stream::{RefitStrategy, StreamConfig, StreamingEngine};
use netanom_core::{DiagnoserConfig, PcaMethod, SeparationPolicy};
use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

const M: usize = 121;
const WINDOW: usize = 1008;
const STREAM_BINS: usize = 288;
const CHUNK: usize = 36;
const REFIT_EVERY: usize = 72;

fn links(bins: usize, seed: usize) -> Matrix {
    Matrix::from_fn(bins, M, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 7) as f64 + 1.0);
        let noise = (((i * M + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    })
}

fn engine(backend: MethodBackend, training: &Matrix) -> StreamingEngine<MethodBackend> {
    StreamingEngine::with_backend(
        backend,
        training,
        StreamConfig::new(WINDOW).refit_every(REFIT_EVERY),
    )
    .expect("synthetic data fits")
}

/// Two streamed days in poll-cycle chunks; refits included.
fn ingest(base: &StreamingEngine<MethodBackend>, stream: &Matrix) -> usize {
    let mut engine = base.clone();
    let mut alarms = 0usize;
    let mut next = 0;
    while next < stream.rows() {
        let take = CHUNK.min(stream.rows() - next);
        let block = stream.row_block(next, take).expect("range checked");
        alarms += engine
            .process_batch(&block)
            .expect("dims match")
            .iter()
            .filter(|r| r.detected)
            .count();
        next += take;
    }
    alarms
}

fn bench_methods(c: &mut Criterion) {
    let training = links(WINDOW, 0);
    let stream = links(STREAM_BINS, WINDOW);
    // One candidate flow per link: identification stays in the subspace
    // loop without needing a topology at this width.
    let identity: Vec<Vec<usize>> = (0..M).map(|l| vec![l]).collect();
    let rm = RoutingMatrix::from_paths(M, &identity);
    let config = DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(6),
        pca_method: PcaMethod::Svd,
        confidence: 0.999,
    };

    let subspace = engine(
        MethodBackend::Subspace(
            SubspaceBackend::fit(&training, &rm, config, RefitStrategy::Incremental)
                .expect("synthetic data fits"),
        ),
        &training,
    );
    let temporal = |kind| {
        engine(
            MethodBackend::Temporal(
                TemporalBackend::fit(kind, &training, 0.999).expect("synthetic data fits"),
            ),
            &training,
        )
    };
    let ewma = temporal(TemporalKind::Ewma);
    let holt_winters = temporal(TemporalKind::HoltWinters { period: 144 });
    let wavelet = temporal(TemporalKind::Wavelet { levels: 5 });

    let mut group = c.benchmark_group("methods");
    group.sample_size(10);
    for (name, eng) in [
        ("ingest_m121_subspace", &subspace),
        ("ingest_m121_ewma", &ewma),
        ("ingest_m121_holt_winters", &holt_winters),
        ("ingest_m121_wavelet", &wavelet),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| ingest(black_box(eng), black_box(&stream)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
