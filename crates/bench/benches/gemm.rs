//! Benchmarks of the packed GEMM kernel layer (`linalg::kernel`), the
//! engine under every product in the workspace.
//!
//! `gemm/{matmul,matmul_nt,gram}_{m512,m1024,m2048}` and
//! `gemm/matmul_tn_{m512,m1024}` time the packed path on the shapes the
//! scale scenarios exercise: square `m × m` products for
//! `matmul`/`matmul_nt`/`matmul_tn` (the truncated refit's `A·Q`,
//! `A·Aᵀ`, and Rayleigh–Ritz `QᵀZ` steps) and a 288-bin training
//! window for `gram` (the covariance build). The un-suffixed ids run
//! whatever backend the dispatcher selects for the host (honouring
//! `NETANOM_KERNEL`); the `_portable` / `_fma` / `_avx512` suffixed
//! ids pin each supported tier explicitly through the `*_with` entry
//! points, so `median(..._portable) / median(..._fma)` (or
//! `..._avx512`) in one run is that tier's speedup on that shape, and
//! `median(..._fma) / median(..._avx512)` is the zmm-over-ymm win.
//! The `*_m512_ref` ids time the serial
//! reference kernels — the same row-axpy/dot loop nests the crate ran
//! before the packed layer — so
//! `median(matmul_m512_ref) / median(matmul_m512)` in the committed
//! baseline is the packed-vs-old kernel ratio.
//!
//! Committed baseline: `scripts/bench-baseline-gemm.jsonl` (diffed by
//! `scripts/bench-compare.sh`). The `_fma` / `_avx512` ids only
//! appear on hosts with the matching SIMD extensions;
//! `bench-compare.sh` treats one-sided ids as informational, so the
//! same baseline works on any host class.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_linalg::{kernel, Matrix};

const TRAIN_BINS: usize = 288;

/// Deterministic dense operand with full-range structure (no zeros, so
/// timings are input-independent by construction).
fn operand(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let h = (i * cols + j + salt).wrapping_mul(2654435761) % 8192;
        h as f64 / 4096.0 - 1.0 + 0.25
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // Multi-second iterations at m = 2048; keep sample counts minimal.
    group.sample_size(2);
    for m in [512usize, 1024, 2048] {
        let a = operand(m, m, 1);
        let b = operand(m, m, 2);
        let data = operand(TRAIN_BINS, m, 3);
        group.bench_function(&format!("matmul_m{m}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
        });
        group.bench_function(&format!("matmul_nt_m{m}"), |bch| {
            bch.iter(|| black_box(&a).matmul_nt(black_box(&b)).unwrap())
        });
        group.bench_function(&format!("gram_m{m}"), |bch| {
            bch.iter(|| black_box(&data).gram())
        });
        if m <= 1024 {
            group.bench_function(&format!("matmul_tn_m{m}"), |bch| {
                bch.iter(|| black_box(&a).matmul_tn(black_box(&b)).unwrap())
            });
            // Explicit per-tier legs: the portable/hardware-tier
            // ratio on the same shape is the micro-kernel speedup,
            // independent of what the dispatcher picked for the
            // un-suffixed ids.
            for tier in kernel::supported_backends() {
                group.bench_function(&format!("matmul_m{m}_{}", tier.name()), |bch| {
                    bch.iter(|| kernel::matmul_with(tier, black_box(&a), black_box(&b)).unwrap())
                });
                group.bench_function(&format!("matmul_tn_m{m}_{}", tier.name()), |bch| {
                    bch.iter(|| kernel::matmul_tn_with(tier, black_box(&a), black_box(&b)).unwrap())
                });
            }
        }
        // Reference-kernel counterparts at the smallest size only (the
        // serial loops take minutes beyond it).
        if m == 512 {
            group.bench_function(&format!("matmul_m{m}_ref"), |bch| {
                bch.iter(|| kernel::matmul_reference(black_box(&a), black_box(&b)).unwrap())
            });
            group.bench_function(&format!("matmul_nt_m{m}_ref"), |bch| {
                bch.iter(|| kernel::matmul_nt_reference(black_box(&a), black_box(&b)).unwrap())
            });
            group.bench_function(&format!("gram_m{m}_ref"), |bch| {
                bch.iter(|| kernel::gram_reference(black_box(&data)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
