//! Micro-benchmarks of the linear-algebra substrate at the paper's
//! problem sizes (1008 × 49 measurement matrices).
//!
//! The paper reports that the complete SVD of its 1008 × 49 matrix takes
//! "less than two seconds on a 1.0 GHz Intel-based laptop" — the
//! `svd_1008x49` bench is the direct modern equivalent.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_linalg::decomposition::{Cholesky, Qr, Svd, SymmetricEigen};
use netanom_linalg::Matrix;

fn paper_sized_matrix() -> Matrix {
    // Deterministic structured data at the Sprint shape.
    Matrix::from_fn(1008, 49, |i, j| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 1e7 * phase.sin() * ((j % 5) as f64 + 1.0);
        let noise = ((i * 49 + j).wrapping_mul(2654435761) % 65536) as f64 * 100.0;
        5e7 + smooth + noise
    })
}

fn bench_decompositions(c: &mut Criterion) {
    let y = paper_sized_matrix();
    let (centered, _) = y.mean_centered_columns();
    let cov = centered.gram().scaled(1.0 / 1007.0);

    let mut group = c.benchmark_group("decompositions");
    group.sample_size(10);

    group.bench_function("svd_1008x49", |b| {
        b.iter(|| Svd::new(black_box(&centered)).expect("converges"))
    });
    group.bench_function("covariance_eigen_49x49", |b| {
        b.iter(|| SymmetricEigen::new(black_box(&cov)).expect("converges"))
    });
    group.bench_function("gram_1008x49", |b| b.iter(|| black_box(&centered).gram()));

    // QR least squares at the Fourier-fit shape (1008 × 17).
    let basis = Matrix::from_fn(1008, 17, |i, j| {
        if j == 0 {
            1.0
        } else {
            let period = [1008.0, 720.0, 432.0, 144.0, 72.0, 36.0, 18.0, 9.0][(j - 1) / 2];
            let w = std::f64::consts::TAU / period * i as f64;
            if (j - 1) % 2 == 0 {
                w.sin()
            } else {
                w.cos()
            }
        }
    });
    let rhs: Vec<f64> = (0..1008).map(|i| (i as f64 * 0.01).sin()).collect();
    group.bench_function("qr_least_squares_1008x17", |b| {
        b.iter(|| {
            Qr::new(black_box(&basis))
                .expect("tall matrix")
                .solve_least_squares(black_box(&rhs))
                .expect("full rank")
        })
    });

    // Cholesky at the multi-flow shape (5 × 5 Gram).
    let theta = Matrix::from_fn(49, 5, |i, j| ((i * (j + 1)) as f64 * 0.37).sin());
    let gram = theta.gram().add(&Matrix::identity(5).scaled(1e-6)).unwrap();
    group.bench_function("cholesky_solve_5x5", |b| {
        b.iter(|| {
            Cholesky::new(black_box(&gram))
                .expect("SPD")
                .solve(black_box(&[1.0, 2.0, 3.0, 4.0, 5.0]))
                .expect("dims")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_decompositions);
criterion_main!(benches);
