//! Benchmarks of the diagnosis pipeline stages: the numbers behind the
//! paper's Section 7.1 deployment argument (fit occasionally, diagnose
//! every arrival cheaply).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_bench::{sprint1, sprint1_diagnoser};
use netanom_core::{Diagnoser, DiagnoserConfig, Pca, PcaMethod, SubspaceModel};
use netanom_linalg::vector;

fn bench_pipeline(c: &mut Criterion) {
    let ds = sprint1();
    let diagnoser = sprint1_diagnoser();
    let links = ds.links.matrix();
    let rm = &ds.network.routing_matrix;

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    // Model fitting — done "occasionally" per the paper.
    group.bench_function("pca_fit_svd", |b| {
        b.iter(|| Pca::fit(black_box(links), PcaMethod::Svd).expect("fits"))
    });
    group.bench_function("pca_fit_covariance", |b| {
        b.iter(|| Pca::fit(black_box(links), PcaMethod::Covariance).expect("fits"))
    });
    group.bench_function("diagnoser_fit_full", |b| {
        b.iter(|| Diagnoser::fit(black_box(links), rm, DiagnoserConfig::default()).expect("fits"))
    });

    // Per-arrival costs — the online path.
    let model: &SubspaceModel = diagnoser.model();
    let quiet = links.row(10).to_vec();
    let mut anomalous = links.row(10).to_vec();
    vector::axpy(5e7, &rm.column(100), &mut anomalous);

    group.bench_function("spe_single_vector", |b| {
        b.iter(|| model.spe(black_box(&quiet)).expect("dims"))
    });
    group.bench_function("diagnose_quiet_vector", |b| {
        b.iter(|| diagnoser.diagnose_vector(black_box(&quiet)).expect("dims"))
    });
    group.bench_function("diagnose_anomalous_vector", |b| {
        b.iter(|| {
            diagnoser
                .diagnose_vector(black_box(&anomalous))
                .expect("dims")
        })
    });

    // Identification alone (fast path vs naive Equation-1 evaluation).
    let residual = model.residual(&anomalous).expect("dims");
    group.bench_function("identify_fast", |b| {
        b.iter(|| {
            diagnoser
                .identifier()
                .identify(black_box(&residual))
                .expect("candidates exist")
        })
    });
    group.bench_function("identify_naive_eq1", |b| {
        b.iter(|| {
            diagnoser
                .identifier()
                .identify_naive(model, black_box(&anomalous))
                .expect("candidates exist")
        })
    });

    // The full week, batch mode.
    group.bench_function("diagnose_series_1008", |b| {
        b.iter(|| diagnoser.diagnose_series(black_box(links)).expect("dims"))
    });

    group.finish();
}

/// The headline batch-vs-per-vector comparison on an Abilene-week-scale
/// matrix (1008 × 121): `Detector::detect_matrix` against the naive
/// `detect_vector` loop the seed shipped with. The PR that introduced
/// the batched kernel layer requires `detect_matrix` ≥ 3× faster here.
fn bench_batch_vs_per_vector(c: &mut Criterion) {
    use netanom_core::{Detector, PcaMethod, SeparationPolicy, SubspaceModel};
    use netanom_linalg::Matrix;

    let m = 121;
    let links = Matrix::from_fn(1008, m, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 7) as f64 + 1.0);
        let noise = (((i * m + l).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    });
    let model = SubspaceModel::fit(&links, SeparationPolicy::FixedCount(6), PcaMethod::Svd)
        .expect("synthetic data fits");
    let detector = Detector::new(model, 0.999).expect("residual variance present");

    let mut group = c.benchmark_group("batch");
    group.sample_size(30);
    group.bench_function("detect_per_vector_1008x121", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(links.rows());
            for t in 0..links.rows() {
                let mut d = detector
                    .detect_vector(black_box(&links).row(t))
                    .expect("dims");
                d.time = t;
                out.push(d);
            }
            out
        })
    });
    group.bench_function("detect_matrix_1008x121", |b| {
        b.iter(|| detector.detect_matrix(black_box(&links)).expect("dims"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_batch_vs_per_vector);
criterion_main!(benches);
