//! Benchmarks of the Section 7 extensions: incremental maintenance,
//! multi-flow identification, two-flow exhaustive search, and the
//! multi-timescale pyramid.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_bench::{sprint1, sprint1_diagnoser};
use netanom_core::incremental::IncrementalCovariance;
use netanom_core::{multiflow, timescale, DiagnoserConfig, SeparationPolicy};
use netanom_linalg::vector;

fn bench_extensions(c: &mut Criterion) {
    let ds = sprint1();
    let diagnoser = sprint1_diagnoser();
    let links = ds.links.matrix();
    let rm = &ds.network.routing_matrix;
    let model = diagnoser.model();

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    // Incremental window maintenance: one slide step (remove + add) vs
    // the cost of a full refit.
    group.bench_function("incremental_slide_step", |b| {
        let mut inc = IncrementalCovariance::from_matrix(links);
        let old = links.row(0).to_vec();
        let new = links.row(500).to_vec();
        b.iter(|| {
            inc.remove(black_box(&old)).expect("dims match");
            inc.add(black_box(&new)).expect("dims match");
        })
    });
    group.bench_function("incremental_rebuild_model", |b| {
        let inc = IncrementalCovariance::from_matrix(links);
        b.iter(|| {
            inc.to_model(SeparationPolicy::FixedCount(model.normal_dim()))
                .expect("window is healthy")
        })
    });

    // Multi-flow machinery on a staged two-origin event.
    let mut y = links.row(400).to_vec();
    vector::axpy(3e7, &rm.column(20), &mut y);
    vector::axpy(2e7, &rm.column(87), &mut y);
    group.bench_function("multiflow_known_pair_estimate", |b| {
        b.iter(|| multiflow::estimate_intensities(model, rm, &[20, 87], black_box(&y)))
    });
    group.bench_function("multiflow_greedy_identify", |b| {
        b.iter(|| {
            multiflow::greedy_identify(model, rm, diagnoser.identifier(), black_box(&y), 4, 0.05)
                .expect("residual explainable")
        })
    });
    group.bench_function("multiflow_exhaustive_pairs_169", |b| {
        b.iter(|| multiflow::identify_best_pair(model, rm, black_box(&y)).expect("pairs exist"))
    });

    // Multi-timescale pyramid: fit and sweep.
    group.bench_function("timescale_fit_4_levels", |b| {
        b.iter(|| {
            timescale::MultiscaleDiagnoser::fit(black_box(links), rm, DiagnoserConfig::default(), 4)
                .expect("week supports 4 levels")
        })
    });
    group.bench_function("timescale_diagnose_week", |b| {
        let ms = timescale::MultiscaleDiagnoser::fit(links, rm, DiagnoserConfig::default(), 4)
            .expect("week supports 4 levels");
        b.iter(|| ms.diagnose_series(black_box(links)).expect("dims match"))
    });

    // CSV round-trip throughput for the week-long measurement file.
    group.bench_function("csv_serialize_week", |b| {
        b.iter(|| netanom_traffic::io::link_series_to_csv_string(black_box(&ds.links), None))
    });
    group.bench_function("csv_parse_week", |b| {
        let csv = netanom_traffic::io::link_series_to_csv_string(&ds.links, None);
        b.iter(|| netanom_traffic::io::link_series_from_csv_str(black_box(&csv)).expect("valid"))
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
