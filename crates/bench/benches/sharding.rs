//! Benchmarks of the sharded diagnosis engine: the numbers behind the
//! "sharding is a pure scale transform" claim.
//!
//! `shard/ingest_m121_k{1,2,4,8}` replay two days of arrivals (288 bins,
//! one `process_batch` per 72-bin chunk) against a one-week window
//! (1008 × 121) with incremental statistics maintained and no refits —
//! isolating the per-arrival cost the shards split: the `O(m²)`
//! sufficient-statistic upkeep plus the `O(m·r)` SPE work.
//! `shard/refit_m121_k4` isolates one merge + Jacobi refit + broadcast
//! cycle, the coordination overhead the global view costs.
//!
//! Interpreting the committed baseline
//! (`scripts/bench-baseline-shard.jsonl`): shard phases fan out over
//! scoped worker threads only when more than one hardware thread is
//! available. On a single-core host (where the committed baseline was
//! recorded) the engine runs the shards serially, so `k4` vs `k1`
//! measures the *overhead* of sharding — the gate there is that `k4`
//! stays within a few percent of `k1`. With ≥ 4 hardware threads the
//! same ids measure the speedup; the ≥ 2× `k4`-vs-`k1` ingestion gate
//! applies to multi-core hosts (`RAYON_NUM_THREADS` caps the fan-out).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netanom_core::shard::ShardedEngine;
use netanom_core::stream::{RefitStrategy, StreamConfig};
use netanom_core::{DiagnoserConfig, PcaMethod, SeparationPolicy};
use netanom_linalg::Matrix;
use netanom_topology::{LinkPartition, RoutingMatrix};

const M: usize = 121;
const WINDOW: usize = 1008;
const STREAM_BINS: usize = 288;
const CHUNK: usize = 72;

fn links(bins: usize, seed: usize) -> Matrix {
    Matrix::from_fn(bins, M, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 7) as f64 + 1.0);
        let noise = (((i * M + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    })
}

fn engine(shards: usize, refit_every: Option<usize>) -> ShardedEngine {
    let training = links(WINDOW, 0);
    // One candidate flow per link: identification stays in the loop
    // without needing a topology at this width.
    let identity: Vec<Vec<usize>> = (0..M).map(|l| vec![l]).collect();
    let rm = RoutingMatrix::from_paths(M, &identity);
    let config = DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(6),
        pca_method: PcaMethod::Svd,
        confidence: 0.999,
    };
    let partition = LinkPartition::round_robin(M, shards).expect("valid shard count");
    let mut stream = StreamConfig::new(WINDOW).strategy(RefitStrategy::Incremental);
    stream.refit_every = refit_every;
    ShardedEngine::new(&training, &rm, config, stream, &partition).expect("synthetic data fits")
}

/// Two streamed days in poll-cycle chunks (no refits: pure ingestion).
fn ingest(base: &ShardedEngine, stream: &Matrix) -> usize {
    let mut engine = base.clone();
    let mut alarms = 0usize;
    let mut next = 0;
    while next < stream.rows() {
        let take = CHUNK.min(stream.rows() - next);
        let block = stream.row_block(next, take).expect("range checked");
        alarms += engine
            .process_batch(&block)
            .expect("dims match")
            .iter()
            .filter(|r| r.detected)
            .count();
        next += take;
    }
    alarms
}

fn bench_sharding(c: &mut Criterion) {
    let stream = links(STREAM_BINS, WINDOW);

    let mut group = c.benchmark_group("shard");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        let base = engine(k, None);
        let id = format!("ingest_m121_k{k}");
        group.bench_function(&id, |b| {
            b.iter(|| ingest(black_box(&base), black_box(&stream)))
        });
    }

    // One merge + refit + broadcast cycle, isolated from diagnosis.
    let refit_base = engine(4, Some(100_000));
    group.bench_function("refit_m121_k4", |b| {
        b.iter(|| {
            let mut e = refit_base.clone();
            e.refit().expect("window is fit-able");
            e.refits()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
