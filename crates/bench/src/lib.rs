//! Shared fixtures for the Criterion benches.
//!
//! The benches live in `benches/`; this library only provides cached
//! dataset construction so every bench file measures computation, not
//! dataset generation.
//!
//! # Example
//!
//! Fixtures are generated once per process and borrowed everywhere:
//!
//! ```
//! let ds = netanom_bench::mini();
//! assert!(ds.links.num_bins() >= 288);
//! assert!(std::ptr::eq(ds, netanom_bench::mini())); // cached
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::OnceLock;

use netanom_core::{Diagnoser, DiagnoserConfig};
use netanom_traffic::datasets::{self, Dataset};

/// The Sprint-1 dataset, generated once per process.
pub fn sprint1() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(datasets::sprint1)
}

/// The Abilene dataset, generated once per process.
pub fn abilene() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(datasets::abilene)
}

/// The small `mini` dataset (cheap to generate), once per process —
/// the fixture for doctests and smoke benches.
pub fn mini() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| datasets::mini(1))
}

/// A diagnoser fitted on Sprint-1 with the paper's default configuration,
/// fitted once per process.
pub fn sprint1_diagnoser() -> &'static Diagnoser {
    static D: OnceLock<Diagnoser> = OnceLock::new();
    D.get_or_init(|| {
        let ds = sprint1();
        Diagnoser::fit(
            ds.links.matrix(),
            &ds.network.routing_matrix,
            DiagnoserConfig::default(),
        )
        .expect("canned dataset fits")
    })
}

/// A diagnoser fitted on Abilene.
pub fn abilene_diagnoser() -> &'static Diagnoser {
    static D: OnceLock<Diagnoser> = OnceLock::new();
    D.get_or_init(|| {
        let ds = abilene();
        Diagnoser::fit(
            ds.links.matrix(),
            &ds.network.routing_matrix,
            DiagnoserConfig::default(),
        )
        .expect("canned dataset fits")
    })
}
