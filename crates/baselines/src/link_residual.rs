//! Per-link temporal filtering of the measurement matrix (Figure 10).
//!
//! Section 7.3 asks whether the *temporal* filters used to build ground
//! truth could replace the subspace method if applied per link. The
//! comparison separates each link timeseries into modeled + residual with
//! EWMA or Fourier and plots the squared norm of the per-bin residual
//! vector — which turns out to be far worse separated than the subspace
//! residual. These helpers produce those residual series.

use netanom_linalg::Matrix;
use netanom_traffic::LinkSeries;

use crate::ewma::Ewma;
use crate::fourier::FourierModel;
use crate::holt_winters::HoltWinters;
use crate::wavelet::HaarWavelet;

/// Which temporal filter to apply per link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFilter {
    /// EWMA with grid-searched α per link.
    Ewma,
    /// The paper's eight-period Fourier model per link.
    Fourier,
    /// Additive Holt–Winters (daily season) per link.
    HoltWinters,
    /// Haar multiscale approximation per link.
    Haar {
        /// Decomposition depth.
        levels: usize,
    },
}

/// Apply the filter to every link column, returning the `t × m` residual
/// matrix.
pub fn residual_matrix(links: &LinkSeries, filter: LinkFilter) -> Matrix {
    let t = links.num_bins();
    let m = links.num_links();
    let mut out = Matrix::zeros(t, m);
    for l in 0..m {
        let series = links.link_series(l);
        let resid = match filter {
            LinkFilter::Ewma => Ewma::grid_search(&series).residuals(&series),
            LinkFilter::Fourier => FourierModel::fit_paper_basis(&series).residuals(&series),
            LinkFilter::HoltWinters => HoltWinters::daily().residuals(&series),
            LinkFilter::Haar { levels } => HaarWavelet::new(levels).residuals(&series),
        };
        out.set_col(l, &resid);
    }
    out
}

/// The per-bin squared norm of the residual vector — the series plotted
/// in Figure 10 (for the subspace method the same quantity is the SPE).
pub fn residual_energy_series(links: &LinkSeries, filter: LinkFilter) -> Vec<f64> {
    let resid = residual_matrix(links, filter);
    (0..resid.rows())
        .map(|t| netanom_linalg::vector::norm_sq(resid.row(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netanom_linalg::Matrix;

    fn links_with_spike() -> LinkSeries {
        let bins = 1008;
        let mut m = Matrix::from_fn(bins, 3, |t, l| {
            1e6 * (l + 1) as f64 + 1e5 * (std::f64::consts::TAU * t as f64 / 144.0).sin()
        });
        for l in 0..3 {
            m[(400, l)] += 5e5;
        }
        LinkSeries::new(m)
    }

    #[test]
    fn all_filters_produce_full_matrices() {
        let links = links_with_spike();
        for filter in [
            LinkFilter::Ewma,
            LinkFilter::Fourier,
            LinkFilter::HoltWinters,
            LinkFilter::Haar { levels: 5 },
        ] {
            let resid = residual_matrix(&links, filter);
            assert_eq!(resid.shape(), (1008, 3), "{filter:?}");
        }
    }

    #[test]
    fn spike_bin_has_elevated_energy_under_every_filter() {
        let links = links_with_spike();
        for filter in [
            LinkFilter::Ewma,
            LinkFilter::Fourier,
            LinkFilter::HoltWinters,
            LinkFilter::Haar { levels: 5 },
        ] {
            let energy = residual_energy_series(&links, filter);
            let spike = energy[400];
            let median = {
                let mut v = energy.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            };
            assert!(
                spike > 10.0 * median,
                "{filter:?}: spike energy {spike} vs median {median}"
            );
        }
    }

    #[test]
    fn fourier_residual_is_centered() {
        let links = links_with_spike();
        let resid = residual_matrix(&links, LinkFilter::Fourier);
        // Least squares with a DC column leaves zero-mean residuals.
        for l in 0..3 {
            let mean = netanom_linalg::vector::mean(&resid.col(l));
            assert!(mean.abs() < 1e-6, "link {l} residual mean {mean}");
        }
    }

    #[test]
    fn energy_series_matches_matrix() {
        let links = links_with_spike();
        let resid = residual_matrix(&links, LinkFilter::Haar { levels: 4 });
        let energy = residual_energy_series(&links, LinkFilter::Haar { levels: 4 });
        for t in (0..1008).step_by(101) {
            let direct = netanom_linalg::vector::norm_sq(resid.row(t));
            assert!((energy[t] - direct).abs() < 1e-9 * direct.max(1.0));
        }
    }
}
