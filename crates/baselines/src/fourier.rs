//! Fourier-basis seasonal modeling.

use netanom_linalg::decomposition::Qr;
use netanom_linalg::Matrix;

/// The paper's eight basis periods, expressed in 10-minute bins:
/// 7 days, 5 days, 3 days, 24 h, 12 h, 6 h, 3 h, 1.5 h.
pub const PAPER_PERIODS_BINS: [f64; 8] = [1008.0, 720.0, 432.0, 144.0, 72.0, 36.0, 18.0, 9.0];

/// A least-squares seasonal model: a DC term plus a sine/cosine pair per
/// period (17 coefficients for the paper's 8 periods).
///
/// The paper approximates "the timeseries of each OD flow as a weighted
/// sum of eight Fourier basis functions" and measures anomalies as
/// `|z_t − ẑ_t|` against the fitted model. Because 5-day and 3-day periods
/// are not harmonics of the one-week window, the basis is not orthogonal
/// — the fit uses Householder QR rather than plain projections.
#[derive(Debug, Clone)]
pub struct FourierModel {
    periods: Vec<f64>,
    /// Fitted coefficients: `[dc, (sin, cos) per period…]`.
    coefficients: Vec<f64>,
    fitted: Vec<f64>,
}

impl FourierModel {
    /// Fit the paper's eight-period model to a series.
    pub fn fit_paper_basis(series: &[f64]) -> Self {
        Self::fit(series, &PAPER_PERIODS_BINS)
    }

    /// Fit with explicit periods (in bins). Periods longer than twice the
    /// series are dropped (they are indistinguishable from trend on such
    /// a short window and make the basis ill-conditioned).
    ///
    /// # Panics
    /// Panics if the series is shorter than the resulting coefficient
    /// count (cannot fit more parameters than samples).
    pub fn fit(series: &[f64], periods: &[f64]) -> Self {
        let t = series.len();
        let usable: Vec<f64> = periods
            .iter()
            .copied()
            .filter(|&p| p > 0.0 && p <= 2.0 * t as f64)
            .collect();
        let ncoef = 1 + 2 * usable.len();
        assert!(
            t >= ncoef,
            "series of {t} bins cannot support {ncoef} coefficients"
        );

        let basis = Self::basis_matrix(t, &usable);
        let qr = Qr::new(&basis).expect("basis is tall by construction");
        let coefficients = qr
            .solve_least_squares(series)
            .expect("trig + DC columns are independent for t >= ncoef");
        let fitted = basis
            .matvec(&coefficients)
            .expect("shape consistent by construction");
        FourierModel {
            periods: usable,
            coefficients,
            fitted,
        }
    }

    fn basis_matrix(t: usize, periods: &[f64]) -> Matrix {
        let ncoef = 1 + 2 * periods.len();
        Matrix::from_fn(t, ncoef, |i, j| {
            if j == 0 {
                1.0
            } else {
                let p = periods[(j - 1) / 2];
                let w = std::f64::consts::TAU / p * i as f64;
                if (j - 1) % 2 == 0 {
                    w.sin()
                } else {
                    w.cos()
                }
            }
        })
    }

    /// The periods actually used (in bins).
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// Fitted coefficients `[dc, (sin, cos) per period…]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The modeled (seasonal) series `ẑ`.
    pub fn fitted(&self) -> &[f64] {
        &self.fitted
    }

    /// Residuals `z_t − ẑ_t` against the series the model was fit on.
    ///
    /// # Panics
    /// Panics if `series` has a different length than the fit data.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        assert_eq!(series.len(), self.fitted.len(), "length mismatch");
        series
            .iter()
            .zip(&self.fitted)
            .map(|(z, f)| z - f)
            .collect()
    }

    /// Absolute anomaly sizes `|z_t − ẑ_t|`.
    pub fn spike_sizes(&self, series: &[f64]) -> Vec<f64> {
        self.residuals(series).iter().map(|r| r.abs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_pure_daily_sinusoid() {
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| 50.0 + 10.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin())
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        let resid = m.residuals(&s);
        let max = resid.iter().cloned().fold(0.0_f64, |a, b| a.max(b.abs()));
        assert!(max < 1e-8, "max residual {max}");
        // DC coefficient is the mean.
        assert!((m.coefficients()[0] - 50.0).abs() < 1e-8);
    }

    #[test]
    fn recovers_multi_period_mixture() {
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| {
                let x = i as f64;
                100.0
                    + 8.0 * (std::f64::consts::TAU / 1008.0 * x).cos()
                    + 5.0 * (std::f64::consts::TAU / 144.0 * x).sin()
                    + 2.0 * (std::f64::consts::TAU / 72.0 * x).cos()
            })
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        let resid = m.residuals(&s);
        assert!(resid.iter().all(|r| r.abs() < 1e-7));
    }

    #[test]
    fn isolates_a_spike() {
        let t = 1008;
        let mut s: Vec<f64> = (0..t)
            .map(|i| 100.0 + 20.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin())
            .collect();
        s[500] += 300.0;
        let m = FourierModel::fit_paper_basis(&s);
        let sizes = m.spike_sizes(&s);
        // The spike dominates; the seasonal fit absorbs almost nothing of
        // a single-bin impulse (1/1008 of its energy per basis function).
        assert!(sizes[500] > 280.0, "spike size {}", sizes[500]);
        let median = {
            let mut v = sizes.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[t / 2]
        };
        assert!(median < 5.0, "background residual {median}");
    }

    #[test]
    fn non_harmonic_periods_do_not_break_the_fit() {
        // 720 and 432 bins are not divisors of 1008; the QR fit must still
        // reproduce signals built from them.
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| 10.0 * (std::f64::consts::TAU / 720.0 * i as f64).sin())
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        assert!(m.residuals(&s).iter().all(|r| r.abs() < 1e-7));
    }

    #[test]
    fn long_periods_dropped_for_short_series() {
        let s: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let m = FourierModel::fit_paper_basis(&s);
        // 1008-, 720- and 432-bin periods exceed 2×200 and are dropped.
        assert_eq!(m.periods(), &[144.0, 72.0, 36.0, 18.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn too_short_series_panics() {
        FourierModel::fit(&[1.0, 2.0, 3.0], &[2.0, 3.0]);
    }

    #[test]
    fn fitted_length_matches() {
        let s: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let m = FourierModel::fit_paper_basis(&s);
        assert_eq!(m.fitted().len(), 300);
        assert_eq!(m.spike_sizes(&s).len(), 300);
    }
}
