//! Fourier-basis seasonal modeling.

use netanom_linalg::decomposition::Qr;
use netanom_linalg::Matrix;

/// The paper's eight basis periods, expressed in 10-minute bins:
/// 7 days, 5 days, 3 days, 24 h, 12 h, 6 h, 3 h, 1.5 h.
pub const PAPER_PERIODS_BINS: [f64; 8] = [1008.0, 720.0, 432.0, 144.0, 72.0, 36.0, 18.0, 9.0];

/// A least-squares seasonal model: a DC term plus a sine/cosine pair per
/// period (17 coefficients for the paper's 8 periods).
///
/// The paper approximates "the timeseries of each OD flow as a weighted
/// sum of eight Fourier basis functions" and measures anomalies as
/// `|z_t − ẑ_t|` against the fitted model. Because 5-day and 3-day periods
/// are not harmonics of the one-week window, the basis is not orthogonal
/// — the fit uses Householder QR rather than plain projections.
#[derive(Debug, Clone)]
pub struct FourierModel {
    periods: Vec<f64>,
    /// Fitted coefficients: `[dc, (sin, cos) per period…]`.
    coefficients: Vec<f64>,
    fitted: Vec<f64>,
}

impl FourierModel {
    /// Fit the paper's eight-period model to a series.
    pub fn fit_paper_basis(series: &[f64]) -> Self {
        Self::fit(series, &PAPER_PERIODS_BINS)
    }

    /// Fit with explicit periods (in bins). Periods longer than twice the
    /// series are dropped (they are indistinguishable from trend on such
    /// a short window and make the basis ill-conditioned).
    ///
    /// # Panics
    /// Panics if the series is shorter than the resulting coefficient
    /// count (cannot fit more parameters than samples).
    pub fn fit(series: &[f64], periods: &[f64]) -> Self {
        let t = series.len();
        let usable: Vec<f64> = periods
            .iter()
            .copied()
            .filter(|&p| p > 0.0 && p <= 2.0 * t as f64)
            .collect();
        let ncoef = 1 + 2 * usable.len();
        assert!(
            t >= ncoef,
            "series of {t} bins cannot support {ncoef} coefficients"
        );

        let basis = Self::basis_matrix(t, &usable);
        let qr = Qr::new(&basis).expect("basis is tall by construction");
        let coefficients = qr
            .solve_least_squares(series)
            .expect("trig + DC columns are independent for t >= ncoef");
        let fitted = basis
            .matvec(&coefficients)
            .expect("shape consistent by construction");
        FourierModel {
            periods: usable,
            coefficients,
            fitted,
        }
    }

    /// Value of basis function `j` at (possibly fractional, possibly
    /// beyond-the-window) time index `t`.
    fn basis_value(periods: &[f64], t: f64, j: usize) -> f64 {
        if j == 0 {
            1.0
        } else {
            let p = periods[(j - 1) / 2];
            let w = std::f64::consts::TAU / p * t;
            if (j - 1).is_multiple_of(2) {
                w.sin()
            } else {
                w.cos()
            }
        }
    }

    fn basis_matrix(t: usize, periods: &[f64]) -> Matrix {
        let ncoef = 1 + 2 * periods.len();
        Matrix::from_fn(t, ncoef, |i, j| Self::basis_value(periods, i as f64, j))
    }

    /// The periods actually used (in bins).
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// Fitted coefficients `[dc, (sin, cos) per period…]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The modeled (seasonal) series `ẑ`.
    pub fn fitted(&self) -> &[f64] {
        &self.fitted
    }

    /// Residuals `z_t − ẑ_t` against the series the model was fit on.
    ///
    /// # Panics
    /// Panics if `series` has a different length than the fit data.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        assert_eq!(series.len(), self.fitted.len(), "length mismatch");
        series
            .iter()
            .zip(&self.fitted)
            .map(|(z, f)| z - f)
            .collect()
    }

    /// Absolute anomaly sizes `|z_t − ẑ_t|`.
    pub fn spike_sizes(&self, series: &[f64]) -> Vec<f64> {
        self.residuals(series).iter().map(|r| r.abs()).collect()
    }

    /// Evaluate the fitted seasonal model at an arbitrary time index —
    /// inside the fit window (`predict_at(i)` matches `fitted()[i]`) or
    /// beyond it (trigonometric extrapolation), which is how the
    /// streaming port scores arrivals after the training window.
    pub fn predict_at(&self, t: f64) -> f64 {
        let ncoef = self.coefficients.len();
        let mut acc = 0.0;
        for j in 0..ncoef {
            acc += Self::basis_value(&self.periods, t, j) * self.coefficients[j];
        }
        acc
    }

    /// The streaming-stateful port: score arrivals one at a time against
    /// this frozen model, starting at time index `t0` (use the fit
    /// length to continue immediately after the training window).
    pub fn stream(self, t0: usize) -> FourierStream {
        FourierStream { model: self, t: t0 }
    }

    /// Reassemble a model from exported parts (periods + coefficients,
    /// `coefficients.len() == 1 + 2 * periods.len()`), e.g. from a
    /// serialized method state. The reassembled model predicts
    /// ([`FourierModel::predict_at`]) but carries no fitted series
    /// (`fit_len() == 0`).
    ///
    /// # Panics
    /// Panics if the coefficient count does not match the periods.
    pub fn from_coefficients(periods: Vec<f64>, coefficients: Vec<f64>) -> Self {
        assert_eq!(
            coefficients.len(),
            1 + 2 * periods.len(),
            "need one DC + a sin/cos pair per period"
        );
        FourierModel {
            periods,
            coefficients,
            fitted: Vec::new(),
        }
    }

    /// Number of bins the model was fit on.
    pub fn fit_len(&self) -> usize {
        self.fitted.len()
    }
}

/// Incremental scorer over a frozen [`FourierModel`]: each
/// [`FourierStream::step`] returns the residual `z_t − ẑ_t` against the
/// model's extrapolated seasonal prediction and advances the time index.
///
/// Inside the fit window the predictions match the batch
/// [`FourierModel::fitted`] values (pinned by the unit tests), so the
/// stream is the exact incremental counterpart of
/// [`FourierModel::residuals`].
#[derive(Debug, Clone)]
pub struct FourierStream {
    model: FourierModel,
    /// Time index of the next arrival.
    t: usize,
}

impl FourierStream {
    /// The frozen model being scored against.
    pub fn model(&self) -> &FourierModel {
        &self.model
    }

    /// Time index the next [`FourierStream::step`] scores at.
    pub fn time(&self) -> usize {
        self.t
    }

    /// The prediction the next step will subtract.
    pub fn forecast_next(&self) -> f64 {
        self.model.predict_at(self.t as f64)
    }

    /// Score one arrival: residual `z − ẑ_t`, then advance the clock.
    pub fn step(&mut self, z: f64) -> f64 {
        let r = z - self.model.predict_at(self.t as f64);
        self.t += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_pure_daily_sinusoid() {
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| 50.0 + 10.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin())
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        let resid = m.residuals(&s);
        let max = resid.iter().cloned().fold(0.0_f64, |a, b| a.max(b.abs()));
        assert!(max < 1e-8, "max residual {max}");
        // DC coefficient is the mean.
        assert!((m.coefficients()[0] - 50.0).abs() < 1e-8);
    }

    #[test]
    fn recovers_multi_period_mixture() {
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| {
                let x = i as f64;
                100.0
                    + 8.0 * (std::f64::consts::TAU / 1008.0 * x).cos()
                    + 5.0 * (std::f64::consts::TAU / 144.0 * x).sin()
                    + 2.0 * (std::f64::consts::TAU / 72.0 * x).cos()
            })
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        let resid = m.residuals(&s);
        assert!(resid.iter().all(|r| r.abs() < 1e-7));
    }

    #[test]
    fn isolates_a_spike() {
        let t = 1008;
        let mut s: Vec<f64> = (0..t)
            .map(|i| 100.0 + 20.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin())
            .collect();
        s[500] += 300.0;
        let m = FourierModel::fit_paper_basis(&s);
        let sizes = m.spike_sizes(&s);
        // The spike dominates; the seasonal fit absorbs almost nothing of
        // a single-bin impulse (1/1008 of its energy per basis function).
        assert!(sizes[500] > 280.0, "spike size {}", sizes[500]);
        let median = {
            let mut v = sizes.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[t / 2]
        };
        assert!(median < 5.0, "background residual {median}");
    }

    #[test]
    fn non_harmonic_periods_do_not_break_the_fit() {
        // 720 and 432 bins are not divisors of 1008; the QR fit must still
        // reproduce signals built from them.
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| 10.0 * (std::f64::consts::TAU / 720.0 * i as f64).sin())
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        assert!(m.residuals(&s).iter().all(|r| r.abs() < 1e-7));
    }

    #[test]
    fn long_periods_dropped_for_short_series() {
        let s: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let m = FourierModel::fit_paper_basis(&s);
        // 1008-, 720- and 432-bin periods exceed 2×200 and are dropped.
        assert_eq!(m.periods(), &[144.0, 72.0, 36.0, 18.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn too_short_series_panics() {
        FourierModel::fit(&[1.0, 2.0, 3.0], &[2.0, 3.0]);
    }

    #[test]
    fn fitted_length_matches() {
        let s: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let m = FourierModel::fit_paper_basis(&s);
        assert_eq!(m.fitted().len(), 300);
        assert_eq!(m.spike_sizes(&s).len(), 300);
        assert_eq!(m.fit_len(), 300);
    }

    #[test]
    fn predict_at_matches_fitted_inside_the_window() {
        let t = 1008;
        let s: Vec<f64> = (0..t)
            .map(|i| 100.0 + 20.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin())
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        for (i, &f) in m.fitted().iter().enumerate() {
            let p = m.predict_at(i as f64);
            assert!(
                (p - f).abs() <= 1e-12 * f.abs().max(1.0),
                "bin {i}: {p} vs {f}"
            );
        }
    }

    #[test]
    fn stream_extrapolates_the_seasonal_pattern() {
        // Fit on one week; stream the next day of the same clean
        // pattern: residuals stay tiny because the basis is periodic.
        let gen = |i: usize| 50.0 + 10.0 * (std::f64::consts::TAU / 144.0 * i as f64).sin();
        let s: Vec<f64> = (0..1008).map(gen).collect();
        let m = FourierModel::fit_paper_basis(&s);
        let mut stream = m.clone().stream(m.fit_len());
        assert_eq!(stream.time(), 1008);
        for i in 1008..1152 {
            let r = stream.step(gen(i));
            // The non-harmonic 720/432-bin periods extrapolate with some
            // error, but a clean daily signal stays well-modeled.
            assert!(r.abs() < 1.0, "bin {i}: residual {r}");
        }
        // A spike stands out by its full height.
        let r = stream.step(gen(1152) + 300.0);
        assert!(r > 299.0, "spike residual {r}");
    }

    #[test]
    fn stream_inside_window_matches_batch_residuals() {
        let s: Vec<f64> = (0..300)
            .map(|i| 10.0 + (i as f64 * 0.2).cos() * 3.0 + ((i * 31) % 7) as f64)
            .collect();
        let m = FourierModel::fit_paper_basis(&s);
        let batch = m.residuals(&s);
        let mut stream = m.clone().stream(0);
        for (t, &z) in s.iter().enumerate() {
            let r = stream.step(z);
            assert!(
                (r - batch[t]).abs() <= 1e-12 * batch[t].abs().max(1.0),
                "bin {t}: {r} vs {}",
                batch[t]
            );
        }
    }
}
