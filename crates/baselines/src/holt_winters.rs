//! Additive Holt–Winters seasonal forecasting.
//!
//! One of the forecasting-family baselines the paper cites (used by
//! Brutlag's aberrant-behaviour detector [5]). Included for the ablation
//! benches comparing temporal detectors on link data.

/// Additive Holt–Winters: level + trend + seasonal components with
/// exponential updates.
#[derive(Debug, Clone, Copy)]
pub struct HoltWinters {
    /// Level smoothing weight.
    pub alpha: f64,
    /// Trend smoothing weight.
    pub beta: f64,
    /// Seasonal smoothing weight.
    pub gamma: f64,
    /// Season length in bins (144 for daily seasonality at 10-minute
    /// bins).
    pub period: usize,
}

impl HoltWinters {
    /// A sensible default for daily-seasonal 10-minute traffic, in the
    /// spirit of Brutlag's recommended smoothing constants.
    pub fn daily() -> Self {
        HoltWinters {
            alpha: 0.2,
            beta: 0.01,
            gamma: 0.15,
            period: 144,
        }
    }

    /// One-step-ahead forecasts. `out[t]` predicts `series[t]` using data
    /// up to `t − 1`. The first two seasons initialize the components
    /// (classical initialization), so forecasts there equal the
    /// initialization values.
    ///
    /// # Panics
    /// Panics if the series is shorter than two periods, or parameters
    /// are outside `[0, 1]`.
    pub fn forecasts(&self, series: &[f64]) -> Vec<f64> {
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("gamma", self.gamma),
        ] {
            assert!(
                (0.0..=1.0).contains(&v) && v.is_finite(),
                "{name} {v} outside [0, 1]"
            );
        }
        let m = self.period;
        assert!(m >= 1, "period must be at least 1");
        assert!(
            series.len() >= 2 * m,
            "need at least two seasons ({} bins), got {}",
            2 * m,
            series.len()
        );

        // Initialization from the first two seasons; seasonal indices are
        // detrended so a pure linear ramp initializes them to zero.
        let s1_mean = series[..m].iter().sum::<f64>() / m as f64;
        let s2_mean = series[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = s1_mean;
        let mut trend = (s2_mean - s1_mean) / m as f64;
        let mid = (m as f64 - 1.0) / 2.0;
        let mut seasonal: Vec<f64> = (0..m)
            .map(|i| series[i] - (s1_mean + (i as f64 - mid) * trend))
            .collect();

        let mut out = Vec::with_capacity(series.len());
        for (t, &z) in series.iter().enumerate() {
            let s_idx = t % m;
            let forecast = level + trend + seasonal[s_idx];
            out.push(forecast);
            // Update components with the observation.
            let prev_level = level;
            level = self.alpha * (z - seasonal[s_idx]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[s_idx] = self.gamma * (z - level) + (1.0 - self.gamma) * seasonal[s_idx];
        }
        out
    }

    /// Forecast residuals `z_t − ẑ_t`.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        self.forecasts(series)
            .iter()
            .zip(series)
            .map(|(f, z)| z - f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(t: usize, period: usize) -> Vec<f64> {
        (0..t)
            .map(|i| {
                1000.0 + 100.0 * (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn tracks_a_clean_seasonal_signal() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period: 48,
        };
        let s = seasonal_series(480, 48);
        let resid = hw.residuals(&s);
        // After the burn-in seasons the forecast should be tight.
        let late = &resid[96..];
        let rms = (late.iter().map(|r| r * r).sum::<f64>() / late.len() as f64).sqrt();
        assert!(rms < 10.0, "late-series RMS residual {rms}");
    }

    #[test]
    fn spike_stands_out() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period: 48,
        };
        let mut s = seasonal_series(480, 48);
        s[300] += 600.0;
        let resid = hw.residuals(&s);
        assert!(resid[300] > 500.0, "spike residual {}", resid[300]);
    }

    #[test]
    fn linear_trend_is_followed() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.2,
            gamma: 0.1,
            period: 10,
        };
        let s: Vec<f64> = (0..200).map(|i| 10.0 + 2.0 * i as f64).collect();
        let resid = hw.residuals(&s);
        let late = &resid[100..];
        assert!(late.iter().all(|r| r.abs() < 5.0), "trend not tracked");
    }

    #[test]
    fn daily_default_parameters() {
        let hw = HoltWinters::daily();
        assert_eq!(hw.period, 144);
        let s = seasonal_series(2 * 144 + 50, 144);
        assert_eq!(hw.forecasts(&s).len(), s.len());
    }

    #[test]
    #[should_panic(expected = "two seasons")]
    fn short_series_rejected() {
        HoltWinters::daily().forecasts(&[1.0; 100]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_parameters_rejected() {
        HoltWinters {
            alpha: 1.2,
            beta: 0.1,
            gamma: 0.1,
            period: 4,
        }
        .forecasts(&[0.0; 8]);
    }
}
