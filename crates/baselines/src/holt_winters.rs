//! Additive Holt–Winters seasonal forecasting.
//!
//! One of the forecasting-family baselines the paper cites (used by
//! Brutlag's aberrant-behaviour detector [5]). Included for the ablation
//! benches comparing temporal detectors on link data.

/// Additive Holt–Winters: level + trend + seasonal components with
/// exponential updates.
#[derive(Debug, Clone, Copy)]
pub struct HoltWinters {
    /// Level smoothing weight.
    pub alpha: f64,
    /// Trend smoothing weight.
    pub beta: f64,
    /// Seasonal smoothing weight.
    pub gamma: f64,
    /// Season length in bins (144 for daily seasonality at 10-minute
    /// bins).
    pub period: usize,
}

impl HoltWinters {
    /// A sensible default for daily-seasonal 10-minute traffic, in the
    /// spirit of Brutlag's recommended smoothing constants.
    pub fn daily() -> Self {
        HoltWinters {
            alpha: 0.2,
            beta: 0.01,
            gamma: 0.15,
            period: 144,
        }
    }

    /// One-step-ahead forecasts. `out[t]` predicts `series[t]` using data
    /// up to `t − 1`. The first two seasons initialize the components
    /// (classical initialization), so forecasts there equal the
    /// initialization values.
    ///
    /// Implemented as the initialization plus a [`HoltWintersStream`]
    /// stepped over the series, so the batch and streaming paths cannot
    /// drift.
    ///
    /// # Panics
    /// Panics if the series is shorter than two periods, or parameters
    /// are outside `[0, 1]`.
    pub fn forecasts(&self, series: &[f64]) -> Vec<f64> {
        let mut stream = HoltWintersStream::init(*self, series);
        series.iter().map(|&z| stream.step(z)).collect()
    }

    /// Forecast residuals `z_t − ẑ_t`.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        self.forecasts(series)
            .iter()
            .zip(series)
            .map(|(f, z)| z - f)
            .collect()
    }

    /// The streaming-stateful port: initialize from (and replay) a
    /// training history, ready to [`HoltWintersStream::step`] fresh
    /// arrivals. See [`HoltWintersStream::fit`].
    pub fn stream(&self, history: &[f64]) -> HoltWintersStream {
        HoltWintersStream::fit(*self, history)
    }
}

/// Incremental Holt–Winters state: the streaming port of
/// [`HoltWinters`].
///
/// The level/trend/seasonal components are initialized from a training
/// history (which needs at least two seasons, exactly like the batch
/// fit) and then advanced one observation at a time:
/// [`HoltWintersStream::step`] returns the one-step-ahead forecast of
/// its argument *before* folding it in. Because the update is the
/// identical arithmetic expression, `fit(params, &series[..k])` followed
/// by stepping `series[k..]` reproduces
/// `params.forecasts(&series)[k..]` **bitwise** — the restart-mid-series
/// contract the property tests pin.
#[derive(Debug, Clone)]
pub struct HoltWintersStream {
    params: HoltWinters,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Observations consumed so far (seasonal phase = `t % period`).
    t: usize,
}

impl HoltWintersStream {
    /// Initialize components from the first two seasons of `history`
    /// *without* consuming any observation (the batch
    /// [`HoltWinters::forecasts`] entry point).
    ///
    /// # Panics
    /// Panics if the history is shorter than two periods, or parameters
    /// are outside `[0, 1]`.
    fn init(params: HoltWinters, history: &[f64]) -> Self {
        for (name, v) in [
            ("alpha", params.alpha),
            ("beta", params.beta),
            ("gamma", params.gamma),
        ] {
            assert!(
                (0.0..=1.0).contains(&v) && v.is_finite(),
                "{name} {v} outside [0, 1]"
            );
        }
        let m = params.period;
        assert!(m >= 1, "period must be at least 1");
        assert!(
            history.len() >= 2 * m,
            "need at least two seasons ({} bins), got {}",
            2 * m,
            history.len()
        );

        // Initialization from the first two seasons; seasonal indices are
        // detrended so a pure linear ramp initializes them to zero.
        let s1_mean = history[..m].iter().sum::<f64>() / m as f64;
        let s2_mean = history[m..2 * m].iter().sum::<f64>() / m as f64;
        let level = s1_mean;
        let trend = (s2_mean - s1_mean) / m as f64;
        let mid = (m as f64 - 1.0) / 2.0;
        let seasonal: Vec<f64> = (0..m)
            .map(|i| history[i] - (s1_mean + (i as f64 - mid) * trend))
            .collect();
        HoltWintersStream {
            params,
            level,
            trend,
            seasonal,
            t: 0,
        }
    }

    /// Initialize from `history` and replay it, leaving the state ready
    /// to forecast the first bin *after* the history.
    ///
    /// # Panics
    /// Panics under the same conditions as [`HoltWinters::forecasts`].
    pub fn fit(params: HoltWinters, history: &[f64]) -> Self {
        Self::fit_collecting(params, history).0
    }

    /// [`HoltWintersStream::fit`] that also returns the one-step
    /// forecasts produced while replaying the history — bitwise
    /// [`HoltWinters::forecasts`] of the same series, without a second
    /// pass. Calibration paths that need both the fitted stream and the
    /// training residuals use this to pay one replay instead of two.
    pub fn fit_collecting(params: HoltWinters, history: &[f64]) -> (Self, Vec<f64>) {
        let mut s = Self::init(params, history);
        let forecasts = history.iter().map(|&z| s.step(z)).collect();
        (s, forecasts)
    }

    /// The parameters the stream runs with.
    pub fn params(&self) -> HoltWinters {
        self.params
    }

    /// The current components `(level, trend, seasonal)` — the
    /// serializable snapshot of the stream.
    pub fn components(&self) -> (f64, f64, &[f64]) {
        (self.level, self.trend, &self.seasonal)
    }

    /// Reassemble a stream from snapshotted components (the counterpart
    /// of [`HoltWintersStream::components`]): `observed` restores the
    /// seasonal phase.
    ///
    /// # Panics
    /// Panics if `seasonal.len() != params.period` or the period is 0.
    pub fn from_components(
        params: HoltWinters,
        level: f64,
        trend: f64,
        seasonal: Vec<f64>,
        observed: usize,
    ) -> Self {
        assert!(params.period >= 1, "period must be at least 1");
        assert_eq!(
            seasonal.len(),
            params.period,
            "seasonal table must match the period"
        );
        HoltWintersStream {
            params,
            level,
            trend,
            seasonal,
            t: observed,
        }
    }

    /// Observations consumed so far (including the replayed history).
    pub fn observed(&self) -> usize {
        self.t
    }

    /// The forecast the next [`HoltWintersStream::step`] will return.
    pub fn forecast_next(&self) -> f64 {
        self.level + self.trend + self.seasonal[self.t % self.params.period]
    }

    /// Observe `z`: returns its one-step-ahead forecast, then updates
    /// the level, trend, and seasonal components.
    pub fn step(&mut self, z: f64) -> f64 {
        let s_idx = self.t % self.params.period;
        let forecast = self.level + self.trend + self.seasonal[s_idx];
        let prev_level = self.level;
        self.level = self.params.alpha * (z - self.seasonal[s_idx])
            + (1.0 - self.params.alpha) * (self.level + self.trend);
        self.trend =
            self.params.beta * (self.level - prev_level) + (1.0 - self.params.beta) * self.trend;
        self.seasonal[s_idx] =
            self.params.gamma * (z - self.level) + (1.0 - self.params.gamma) * self.seasonal[s_idx];
        self.t += 1;
        forecast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(t: usize, period: usize) -> Vec<f64> {
        (0..t)
            .map(|i| {
                1000.0 + 100.0 * (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn tracks_a_clean_seasonal_signal() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period: 48,
        };
        let s = seasonal_series(480, 48);
        let resid = hw.residuals(&s);
        // After the burn-in seasons the forecast should be tight.
        let late = &resid[96..];
        let rms = (late.iter().map(|r| r * r).sum::<f64>() / late.len() as f64).sqrt();
        assert!(rms < 10.0, "late-series RMS residual {rms}");
    }

    #[test]
    fn spike_stands_out() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period: 48,
        };
        let mut s = seasonal_series(480, 48);
        s[300] += 600.0;
        let resid = hw.residuals(&s);
        assert!(resid[300] > 500.0, "spike residual {}", resid[300]);
    }

    #[test]
    fn linear_trend_is_followed() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.2,
            gamma: 0.1,
            period: 10,
        };
        let s: Vec<f64> = (0..200).map(|i| 10.0 + 2.0 * i as f64).collect();
        let resid = hw.residuals(&s);
        let late = &resid[100..];
        assert!(late.iter().all(|r| r.abs() < 5.0), "trend not tracked");
    }

    #[test]
    fn daily_default_parameters() {
        let hw = HoltWinters::daily();
        assert_eq!(hw.period, 144);
        let s = seasonal_series(2 * 144 + 50, 144);
        assert_eq!(hw.forecasts(&s).len(), s.len());
    }

    #[test]
    #[should_panic(expected = "two seasons")]
    fn short_series_rejected() {
        HoltWinters::daily().forecasts(&[1.0; 100]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_parameters_rejected() {
        HoltWinters {
            alpha: 1.2,
            beta: 0.1,
            gamma: 0.1,
            period: 4,
        }
        .forecasts(&[0.0; 8]);
    }

    #[test]
    fn stream_fit_then_step_reproduces_batch_bitwise() {
        let hw = HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period: 48,
        };
        let mut s = seasonal_series(400, 48);
        s[250] += 700.0; // one spike so the states diverge if buggy
        let batch = hw.forecasts(&s);
        let k = 120; // restart point: past the two init seasons
        let mut stream = hw.stream(&s[..k]);
        assert_eq!(stream.observed(), k);
        for (t, &z) in s.iter().enumerate().skip(k) {
            assert_eq!(stream.forecast_next(), batch[t], "lookahead at bin {t}");
            assert_eq!(stream.step(z), batch[t], "bin {t}");
        }
    }

    #[test]
    #[should_panic(expected = "two seasons")]
    fn stream_rejects_short_history() {
        HoltWinters::daily().stream(&[1.0; 100]);
    }
}
