//! Knee detection on rank-ordered anomaly sizes.
//!
//! The paper (Section 6.2) observes "a sharp knee in the rank-ordered
//! plot of anomaly sizes" and chooses "the anomalies that stand out to
//! the left of the knee as the important set to detect". This module
//! finds that knee with the maximum-distance-to-chord criterion: draw the
//! chord from the largest to the smallest plotted size and take the rank
//! with the greatest perpendicular distance below it.

/// Index of the knee in a descending rank-size curve (the first rank
/// *after* the "standout" set), found by maximum distance to the chord.
///
/// Returns `None` for fewer than 3 points (no interior point to be a
/// knee), a flat curve, or degenerate input: anomaly sizes are
/// magnitudes, so any non-finite or negative entry means the curve is
/// not a rank-size curve at all — a NaN would otherwise compare `false`
/// everywhere and silently skew the chord search toward whatever points
/// happened to be evaluated against it.
pub fn knee_index(sizes_desc: &[f64]) -> Option<usize> {
    let n = sizes_desc.len();
    if n < 3 {
        return None;
    }
    if sizes_desc.iter().any(|s| !s.is_finite() || *s < 0.0) {
        return None;
    }
    let x0 = 0.0;
    let y0 = sizes_desc[0];
    let x1 = (n - 1) as f64;
    let y1 = sizes_desc[n - 1];
    if (y0 - y1).abs() <= f64::EPSILON * y0.abs().max(1.0) {
        return None; // flat: no knee
    }
    // Distance from point (i, s_i) to the chord.
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    let mut best: Option<(usize, f64)> = None;
    for (i, &s) in sizes_desc.iter().enumerate().take(n - 1).skip(1) {
        let cross = dy * (i as f64 - x0) - dx * (s - y0);
        let dist = cross.abs() / norm;
        // Only count points *below* the chord (concave-up knees): with
        // dx > 0, a point below the chord has dx·(s − chord) < 0, i.e.
        // cross > 0.
        if cross <= 0.0 {
            continue;
        }
        match best {
            Some((_, d)) if d >= dist => {}
            _ => best = Some((i, dist)),
        }
    }
    best.map(|(i, _)| i)
}

/// The size cutoff implied by the knee: the value of the last rank before
/// the knee (everything `≥` this size is in the important set).
///
/// Returns `None` when no knee exists.
pub fn knee_cutoff(sizes_desc: &[f64]) -> Option<f64> {
    knee_index(sizes_desc).map(|i| sizes_desc[i - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharp_knee_is_found() {
        // 5 standouts, then a flat mass.
        let mut sizes = vec![100.0, 90.0, 80.0, 70.0, 60.0];
        sizes.extend(std::iter::repeat_n(10.0, 30));
        let idx = knee_index(&sizes).unwrap();
        assert!(
            (4..=6).contains(&idx),
            "knee at {idx}, expected near rank 5"
        );
        let cutoff = knee_cutoff(&sizes).unwrap();
        assert!((10.0..=60.0).contains(&cutoff));
    }

    #[test]
    fn paper_like_pareto_curve() {
        // Heavy-tailed sizes: a handful of standouts above ~2e7.
        let sizes: Vec<f64> = (1..=40).map(|i| 4.0e7 / (i as f64).powf(1.2)).collect();
        let idx = knee_index(&sizes).unwrap();
        assert!((2..=12).contains(&idx), "knee at {idx}");
    }

    #[test]
    fn flat_curve_has_no_knee() {
        assert_eq!(knee_index(&[5.0; 20]), None);
        assert_eq!(knee_cutoff(&[5.0; 20]), None);
    }

    #[test]
    fn too_short_input() {
        assert_eq!(knee_index(&[]), None);
        assert_eq!(knee_index(&[1.0]), None);
        assert_eq!(knee_index(&[2.0, 1.0]), None);
        assert_eq!(knee_cutoff(&[]), None);
    }

    #[test]
    fn non_finite_sizes_yield_no_knee() {
        // A NaN anywhere (ends or interior) poisons the chord search.
        let mut sizes = vec![100.0, 90.0, 80.0, 70.0, 60.0];
        sizes.extend(std::iter::repeat_n(10.0, 30));
        assert!(knee_index(&sizes).is_some(), "clean curve has a knee");
        for poison in [0usize, 3, sizes.len() - 1] {
            let mut bad = sizes.clone();
            bad[poison] = f64::NAN;
            assert_eq!(knee_index(&bad), None, "NaN at rank {poison}");
            assert_eq!(knee_cutoff(&bad), None);
        }
        let mut inf = sizes.clone();
        inf[0] = f64::INFINITY;
        assert_eq!(knee_index(&inf), None);
    }

    #[test]
    fn negative_sizes_yield_no_knee() {
        let mut sizes = vec![100.0, 90.0, 80.0];
        sizes.extend(std::iter::repeat_n(10.0, 20));
        sizes.push(-5.0);
        assert_eq!(knee_index(&sizes), None);
    }

    #[test]
    fn all_equal_input_has_no_knee() {
        assert_eq!(knee_index(&[7.5; 40]), None);
        assert_eq!(knee_cutoff(&[7.5; 40]), None);
        // Zero is an allowed (non-negative) size; all-zero is flat.
        assert_eq!(knee_index(&[0.0; 10]), None);
    }

    #[test]
    fn linear_decline_has_no_interior_below_chord() {
        let sizes: Vec<f64> = (0..20).map(|i| 100.0 - 5.0 * i as f64).collect();
        // Every interior point lies exactly on the chord; none strictly
        // below it.
        assert_eq!(knee_index(&sizes), None);
    }

    #[test]
    fn convex_bulge_above_chord_is_not_a_knee() {
        // Concave-down curve (slow start, fast drop at the end): points
        // sit above the chord, so there is no knee of the kind the paper
        // uses.
        let sizes: Vec<f64> = (0..30)
            .map(|i| 100.0 * (1.0 - (i as f64 / 29.0).powi(4)))
            .collect();
        assert_eq!(knee_index(&sizes), None);
    }
}
