//! Extracting "true" anomalies from OD-flow data (paper Section 6.2).
//!
//! The paper's validation needs a labelled anomaly set but has no oracle,
//! so it runs two temporal methods over each OD flow's timeseries —
//! bidirectional EWMA and the eight-period Fourier model — and takes the
//! large isolated spikes as ground truth. This module reproduces that
//! procedure. (Our datasets also carry *exact* ground truth, which the
//! paper could not have; the experiments report against both.)

use netanom_traffic::OdSeries;

use crate::ewma::Ewma;
use crate::fourier::FourierModel;

/// Which temporal method labels the anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthMethod {
    /// Bidirectional EWMA with grid-searched α (paper: `0.2 ≤ α ≤ 0.3`).
    Ewma,
    /// Eight-period Fourier model.
    Fourier,
}

/// One extracted anomaly: a spike in one OD flow at one bin, with the
/// temporal method's size estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractedAnomaly {
    /// OD flow index.
    pub flow: usize,
    /// Time bin of the spike.
    pub time: usize,
    /// Estimated spike magnitude in bytes (always positive; the temporal
    /// methods measure `|z − ẑ|`).
    pub size: f64,
}

/// Run the Section 6.2 extraction: compute per-flow spike sizes with the
/// chosen method, take each flow's local maxima, keep the single largest
/// candidate per time bin, and return the `top_k` largest overall,
/// sorted by decreasing size.
///
/// Keeping one candidate per bin mirrors the paper's framing (detection
/// flags *timesteps*; Figure 6 ranks distinct anomalies). Local-maximum
/// filtering removes the shoulders a single spike induces in its
/// neighbours.
pub fn extract_true_anomalies(
    od: &OdSeries,
    method: TruthMethod,
    top_k: usize,
) -> Vec<ExtractedAnomaly> {
    let bins = od.num_bins();
    // Best candidate per time bin.
    let mut best_per_bin: Vec<Option<ExtractedAnomaly>> = vec![None; bins];

    for flow in 0..od.num_flows() {
        let series = od.flow_series(flow);
        let sizes = match method {
            TruthMethod::Ewma => {
                let ewma = Ewma::grid_search(&series);
                ewma.bidirectional_spike_sizes(&series)
            }
            TruthMethod::Fourier => FourierModel::fit_paper_basis(&series).spike_sizes(&series),
        };
        for t in 1..bins.saturating_sub(1) {
            // A non-finite size (a NaN-poisoned flow, e.g. a polling gap
            // encoded as a sentinel) must never become a candidate: NaN
            // comparisons are silently false, so without this guard a
            // NaN bin would pass the local-maximum test whenever its
            // neighbours are NaN too and then poison the size sort.
            if !sizes[t].is_finite() {
                continue;
            }
            // Local maximum in the spike-size series.
            if sizes[t] <= sizes[t - 1] || sizes[t] < sizes[t + 1] {
                continue;
            }
            let cand = ExtractedAnomaly {
                flow,
                time: t,
                size: sizes[t],
            };
            match &best_per_bin[t] {
                Some(prev) if prev.size >= cand.size => {}
                _ => best_per_bin[t] = Some(cand),
            }
        }
    }

    let mut all: Vec<ExtractedAnomaly> = best_per_bin.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.size
            .partial_cmp(&a.size)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    all.truncate(top_k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use netanom_linalg::Matrix;

    /// Two flows with daily structure; known spikes in flow 1.
    fn series_with_spikes() -> OdSeries {
        let bins = 1008;
        let mut m = Matrix::from_fn(bins, 2, |t, f| {
            let base = if f == 0 { 1000.0 } else { 2000.0 };
            base + 100.0 * (std::f64::consts::TAU * t as f64 / 144.0).sin()
        });
        m[(300, 1)] += 5000.0;
        m[(600, 1)] += 3000.0;
        m[(800, 0)] += 4000.0;
        OdSeries::new(m)
    }

    #[test]
    fn fourier_extraction_finds_planted_spikes() {
        let od = series_with_spikes();
        let out = extract_true_anomalies(&od, TruthMethod::Fourier, 3);
        assert_eq!(out.len(), 3);
        let found: Vec<(usize, usize)> = out.iter().map(|a| (a.flow, a.time)).collect();
        assert!(found.contains(&(1, 300)), "found {found:?}");
        assert!(found.contains(&(1, 600)), "found {found:?}");
        assert!(found.contains(&(0, 800)), "found {found:?}");
        // Size ordering: 5000 spike first.
        assert_eq!(out[0].time, 300);
        assert!(out[0].size > 4000.0 && out[0].size < 6000.0);
    }

    #[test]
    fn ewma_extraction_finds_planted_spikes() {
        let od = series_with_spikes();
        let out = extract_true_anomalies(&od, TruthMethod::Ewma, 3);
        let found: Vec<(usize, usize)> = out.iter().map(|a| (a.flow, a.time)).collect();
        assert!(found.contains(&(1, 300)), "found {found:?}");
        assert!(found.contains(&(0, 800)), "found {found:?}");
    }

    #[test]
    fn one_candidate_per_bin() {
        // Spikes in two flows at the same bin: only the bigger survives.
        let bins = 432;
        let mut m = Matrix::from_fn(bins, 2, |_, _| 1000.0);
        m[(200, 0)] += 2000.0;
        m[(200, 1)] += 9000.0;
        let od = OdSeries::new(m);
        let out = extract_true_anomalies(&od, TruthMethod::Fourier, 10);
        let at_200: Vec<&ExtractedAnomaly> = out.iter().filter(|a| a.time == 200).collect();
        assert_eq!(at_200.len(), 1);
        assert_eq!(at_200[0].flow, 1);
    }

    #[test]
    fn top_k_truncates() {
        let od = series_with_spikes();
        let out = extract_true_anomalies(&od, TruthMethod::Fourier, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, 300);
    }

    #[test]
    fn sizes_are_sorted_descending() {
        let od = series_with_spikes();
        let out = extract_true_anomalies(&od, TruthMethod::Fourier, 40);
        for w in out.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
    }

    #[test]
    fn nan_poisoned_flow_never_produces_candidates() {
        // Flow 1 carries a NaN (e.g. a polling gap): the Fourier fit
        // propagates it across the whole flow's size series. The clean
        // flow's planted spike must still come out, and no NaN-sized
        // anomaly may appear.
        let bins = 432;
        let mut m = Matrix::from_fn(bins, 2, |t, f| {
            let base = if f == 0 { 1000.0 } else { 2000.0 };
            base + 100.0 * (std::f64::consts::TAU * t as f64 / 144.0).sin()
        });
        m[(200, 0)] += 4000.0;
        m[(300, 1)] = f64::NAN;
        let od = OdSeries::new(m);
        for method in [TruthMethod::Fourier, TruthMethod::Ewma] {
            let out = extract_true_anomalies(&od, method, 10);
            // No NaN-sized candidate may ever appear (it would poison
            // the descending sort and the downstream knee search).
            assert!(
                out.iter().all(|a| a.size.is_finite()),
                "{method:?}: non-finite size leaked: {out:?}"
            );
            assert!(
                out.iter().any(|a| a.time == 200 && a.flow == 0),
                "{method:?}: clean spike lost: {out:?}"
            );
        }
        // The Fourier fit propagates the NaN across the whole poisoned
        // flow, so flow 1 must contribute nothing at all there. (The
        // bidirectional EWMA estimator legitimately salvages the
        // direction unaffected by the gap, so it may still emit finite
        // flow-1 candidates.)
        let fourier = extract_true_anomalies(&od, TruthMethod::Fourier, 10);
        assert!(
            fourier.iter().all(|a| a.flow == 0),
            "Fourier: poisoned flow leaked: {fourier:?}"
        );
    }
}
