//! Haar-wavelet multiscale residual.
//!
//! Barford et al. [2] detect anomalies by removing the low-frequency part
//! of a signal with a wavelet decomposition and flagging deviations in
//! what remains. This module implements the simplest member of that
//! family — a Haar approximation at a configurable depth — as an ablation
//! comparator; a production wavelet detector would use longer filters,
//! but the Haar pyramid already captures the methodological contrast with
//! the subspace approach (temporal vs. spatial correlation).

/// Haar multiscale filter: the signal's `levels`-deep pairwise-average
/// approximation is treated as "normal"; the residual is the candidate
/// anomaly signal.
#[derive(Debug, Clone, Copy)]
pub struct HaarWavelet {
    /// Decomposition depth. Each level halves the time resolution, so the
    /// approximation at level `L` is piecewise-constant on windows of
    /// `2^L` bins (level 5 ≈ 5.3 hours at 10-minute bins).
    pub levels: usize,
}

impl HaarWavelet {
    /// Create a filter with the given depth.
    ///
    /// # Panics
    /// Panics if `levels == 0` (that would make the residual identically
    /// zero).
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "need at least one decomposition level");
        HaarWavelet { levels }
    }

    /// The low-frequency approximation of the signal (same length).
    ///
    /// Implementation: recursive pairwise averaging; an odd-length tail
    /// at any level keeps its last element; the coarse signal is then
    /// upsampled back by duplication. This is the Haar scaling-function
    /// pyramid without the detail coefficients.
    pub fn approximation(&self, series: &[f64]) -> Vec<f64> {
        if series.is_empty() {
            return Vec::new();
        }
        // Downsample `levels` times, remembering each level's length.
        let mut lengths = Vec::with_capacity(self.levels);
        let mut cur = series.to_vec();
        for _ in 0..self.levels {
            if cur.len() == 1 {
                break;
            }
            lengths.push(cur.len());
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < cur.len() {
                next.push(0.5 * (cur[i] + cur[i + 1]));
                i += 2;
            }
            if i < cur.len() {
                next.push(cur[i]);
            }
            cur = next;
        }
        // Upsample back by duplication: coarse element k covers fine
        // positions 2k and 2k+1 (the odd tail element covers only itself).
        for &len in lengths.iter().rev() {
            let mut up = Vec::with_capacity(len);
            for (k, &v) in cur.iter().enumerate() {
                up.push(v);
                if 2 * k + 1 < len {
                    up.push(v);
                }
            }
            debug_assert_eq!(up.len(), len);
            cur = up;
        }
        cur
    }

    /// Residual `z − approximation(z)`: the high-frequency content where
    /// spikes live.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        self.approximation(series)
            .iter()
            .zip(series)
            .map(|(a, z)| z - a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_has_zero_residual() {
        let w = HaarWavelet::new(4);
        let s = vec![42.0; 64];
        let resid = w.residuals(&s);
        assert!(resid.iter().all(|&r| r.abs() < 1e-12));
    }

    #[test]
    fn approximation_preserves_mean_on_dyadic_length() {
        let w = HaarWavelet::new(3);
        let s: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).sin() * 5.0 + 10.0)
            .collect();
        let a = w.approximation(&s);
        let mean_s = s.iter().sum::<f64>() / 64.0;
        let mean_a = a.iter().sum::<f64>() / 64.0;
        assert!((mean_s - mean_a).abs() < 1e-9);
    }

    #[test]
    fn spike_survives_in_residual() {
        let w = HaarWavelet::new(5);
        let mut s: Vec<f64> = (0..256)
            .map(|i| 100.0 + 30.0 * (i as f64 * std::f64::consts::TAU / 128.0).sin())
            .collect();
        s[100] += 500.0;
        let resid = w.residuals(&s);
        // The spike spreads over the 2^5-wide window but keeps most of
        // its amplitude at the spike bin.
        assert!(resid[100] > 350.0, "spike residual {}", resid[100]);
    }

    #[test]
    fn slow_trend_is_absorbed_by_the_approximation() {
        let w = HaarWavelet::new(5);
        let s: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let resid = w.residuals(&s);
        let max = resid.iter().cloned().fold(0.0_f64, |a, b| a.max(b.abs()));
        // Linear trend error of a 32-wide piecewise-constant fit ≤ 32.
        assert!(max <= 32.0, "trend leak {max}");
    }

    #[test]
    fn non_dyadic_lengths_are_handled() {
        let w = HaarWavelet::new(3);
        for len in [1usize, 2, 3, 7, 100, 1008] {
            let s: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let a = w.approximation(&s);
            assert_eq!(a.len(), len, "length {len}");
            let r = w.residuals(&s);
            assert_eq!(r.len(), len);
        }
    }

    #[test]
    fn empty_input() {
        let w = HaarWavelet::new(2);
        assert!(w.approximation(&[]).is_empty());
        assert!(w.residuals(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_levels_rejected() {
        HaarWavelet::new(0);
    }
}
