//! Haar-wavelet multiscale residual.
//!
//! Barford et al. [2] detect anomalies by removing the low-frequency part
//! of a signal with a wavelet decomposition and flagging deviations in
//! what remains. This module implements the simplest member of that
//! family — a Haar approximation at a configurable depth — as an ablation
//! comparator; a production wavelet detector would use longer filters,
//! but the Haar pyramid already captures the methodological contrast with
//! the subspace approach (temporal vs. spatial correlation).

/// Haar multiscale filter: the signal's `levels`-deep pairwise-average
/// approximation is treated as "normal"; the residual is the candidate
/// anomaly signal.
#[derive(Debug, Clone, Copy)]
pub struct HaarWavelet {
    /// Decomposition depth. Each level halves the time resolution, so the
    /// approximation at level `L` is piecewise-constant on windows of
    /// `2^L` bins (level 5 ≈ 5.3 hours at 10-minute bins).
    pub levels: usize,
}

impl HaarWavelet {
    /// Create a filter with the given depth.
    ///
    /// # Panics
    /// Panics if `levels == 0` (that would make the residual identically
    /// zero).
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "need at least one decomposition level");
        HaarWavelet { levels }
    }

    /// The low-frequency approximation of the signal (same length).
    ///
    /// Implementation: recursive pairwise averaging; an odd-length tail
    /// at any level keeps its last element; the coarse signal is then
    /// upsampled back by duplication. This is the Haar scaling-function
    /// pyramid without the detail coefficients.
    pub fn approximation(&self, series: &[f64]) -> Vec<f64> {
        if series.is_empty() {
            return Vec::new();
        }
        // Downsample `levels` times, remembering each level's length.
        let mut lengths = Vec::with_capacity(self.levels);
        let mut cur = series.to_vec();
        for _ in 0..self.levels {
            if cur.len() == 1 {
                break;
            }
            lengths.push(cur.len());
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < cur.len() {
                next.push(0.5 * (cur[i] + cur[i + 1]));
                i += 2;
            }
            if i < cur.len() {
                next.push(cur[i]);
            }
            cur = next;
        }
        // Upsample back by duplication: coarse element k covers fine
        // positions 2k and 2k+1 (the odd tail element covers only itself).
        for &len in lengths.iter().rev() {
            let mut up = Vec::with_capacity(len);
            for (k, &v) in cur.iter().enumerate() {
                up.push(v);
                if 2 * k + 1 < len {
                    up.push(v);
                }
            }
            debug_assert_eq!(up.len(), len);
            cur = up;
        }
        cur
    }

    /// Residual `z − approximation(z)`: the high-frequency content where
    /// spikes live.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        self.approximation(series)
            .iter()
            .zip(series)
            .map(|(a, z)| z - a)
            .collect()
    }

    /// The streaming-stateful port: buffer arrivals and emit each
    /// completed `2^levels`-bin block's residuals. See [`HaarStream`].
    pub fn stream(&self) -> HaarStream {
        HaarStream {
            filter: *self,
            buf: Vec::with_capacity(1usize << self.levels),
        }
    }
}

/// Incremental Haar filter: the streaming port of [`HaarWavelet`].
///
/// The Haar pyramid is block-structured: on any series, the batch
/// [`HaarWavelet::approximation`] is computed independently within each
/// aligned `2^levels`-bin block (pairwise averaging never crosses an
/// aligned block boundary, and odd tails are kept locally). The stream
/// exploits exactly that: it buffers arrivals and, when a block
/// completes, emits the block's residuals — **bitwise** the values the
/// batch filter produces for those bins, including a final partial
/// block via [`HaarStream::flush`]. Residuals therefore arrive with up
/// to one block of latency, which is inherent to the (non-causal)
/// wavelet smoothing itself.
#[derive(Debug, Clone)]
pub struct HaarStream {
    filter: HaarWavelet,
    buf: Vec<f64>,
}

impl HaarStream {
    /// Create with the given decomposition depth.
    ///
    /// # Panics
    /// Panics if `levels == 0`.
    pub fn new(levels: usize) -> Self {
        HaarWavelet::new(levels).stream()
    }

    /// Bins per emitted block (`2^levels`).
    pub fn block_len(&self) -> usize {
        1usize << self.filter.levels
    }

    /// Arrivals buffered toward the next block.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Buffer one arrival; when it completes a block, return that
    /// block's residuals (oldest first).
    pub fn push(&mut self, z: f64) -> Option<Vec<f64>> {
        self.buf.push(z);
        if self.buf.len() == self.block_len() {
            Some(self.emit())
        } else {
            None
        }
    }

    /// Emit the residuals of the buffered partial block (empty if
    /// nothing is buffered), clearing the buffer — the end-of-stream
    /// counterpart of the batch filter's odd-tail handling.
    pub fn flush(&mut self) -> Vec<f64> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        self.emit()
    }

    fn emit(&mut self) -> Vec<f64> {
        let out = self.filter.residuals(&self.buf);
        self.buf.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_has_zero_residual() {
        let w = HaarWavelet::new(4);
        let s = vec![42.0; 64];
        let resid = w.residuals(&s);
        assert!(resid.iter().all(|&r| r.abs() < 1e-12));
    }

    #[test]
    fn approximation_preserves_mean_on_dyadic_length() {
        let w = HaarWavelet::new(3);
        let s: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).sin() * 5.0 + 10.0)
            .collect();
        let a = w.approximation(&s);
        let mean_s = s.iter().sum::<f64>() / 64.0;
        let mean_a = a.iter().sum::<f64>() / 64.0;
        assert!((mean_s - mean_a).abs() < 1e-9);
    }

    #[test]
    fn spike_survives_in_residual() {
        let w = HaarWavelet::new(5);
        let mut s: Vec<f64> = (0..256)
            .map(|i| 100.0 + 30.0 * (i as f64 * std::f64::consts::TAU / 128.0).sin())
            .collect();
        s[100] += 500.0;
        let resid = w.residuals(&s);
        // The spike spreads over the 2^5-wide window but keeps most of
        // its amplitude at the spike bin.
        assert!(resid[100] > 350.0, "spike residual {}", resid[100]);
    }

    #[test]
    fn slow_trend_is_absorbed_by_the_approximation() {
        let w = HaarWavelet::new(5);
        let s: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let resid = w.residuals(&s);
        let max = resid.iter().cloned().fold(0.0_f64, |a, b| a.max(b.abs()));
        // Linear trend error of a 32-wide piecewise-constant fit ≤ 32.
        assert!(max <= 32.0, "trend leak {max}");
    }

    #[test]
    fn non_dyadic_lengths_are_handled() {
        let w = HaarWavelet::new(3);
        for len in [1usize, 2, 3, 7, 100, 1008] {
            let s: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let a = w.approximation(&s);
            assert_eq!(a.len(), len, "length {len}");
            let r = w.residuals(&s);
            assert_eq!(r.len(), len);
        }
    }

    #[test]
    fn empty_input() {
        let w = HaarWavelet::new(2);
        assert!(w.approximation(&[]).is_empty());
        assert!(w.residuals(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_levels_rejected() {
        HaarWavelet::new(0);
    }

    #[test]
    fn stream_blocks_reproduce_batch_residuals_bitwise() {
        // Dyadic and non-dyadic lengths, several depths: the streamed
        // block residuals concatenated (plus the flush) must equal the
        // batch residuals exactly.
        for levels in [1usize, 3, 5] {
            for len in [1usize, 7, 64, 100, 257] {
                let w = HaarWavelet::new(levels);
                let s: Vec<f64> = (0..len)
                    .map(|i| 100.0 + (i as f64 * 0.37).sin() * 25.0 + ((i * 17) % 5) as f64)
                    .collect();
                let batch = w.residuals(&s);
                let mut stream = w.stream();
                assert_eq!(stream.block_len(), 1 << levels);
                let mut streamed = Vec::new();
                for &z in &s {
                    if let Some(block) = stream.push(z) {
                        streamed.extend(block);
                    }
                }
                streamed.extend(stream.flush());
                assert_eq!(
                    streamed, batch,
                    "levels {levels} len {len}: streamed blocks diverge from batch"
                );
                assert_eq!(stream.pending(), 0);
                assert!(stream.flush().is_empty());
            }
        }
    }
}
