//! The temporal comparators as pluggable detection backends, plus the
//! by-name method registry.
//!
//! This module closes the loop the paper's Section 6/Figure 10
//! comparison opens: the per-link temporal filters — EWMA, Holt–Winters,
//! the eight-period Fourier model, and the Haar wavelet — implement
//! [`DetectionBackend`] (and [`ShardableBackend`]), so every method runs
//! through the *same* streaming and sharded engines as the subspace
//! method. [`MethodBackend`] unites the subspace reference
//! implementation and the temporal family behind one concrete type, and
//! [`MethodName`] is the registry the CLI's `--method` flag resolves
//! against.
//!
//! # Scoring semantics of the temporal backends
//!
//! Each link carries its own streaming forecaster (the incremental
//! `step` ports in this crate). The per-bin score is the squared norm of
//! the per-link one-step residual vector, `‖z_t − ẑ_t‖²` — exactly the
//! residual-energy series Figure 10 plots (for the subspace method the
//! same quantity is the SPE). The detection threshold is calibrated at
//! fit/refit time as the empirical `confidence`-quantile of the training
//! window's residual energies, mirroring the subspace method's
//! `1 − α` false-alarm contract without assuming the Q-statistic's
//! Gaussian residual model (which per-link temporal residuals do not
//! satisfy).
//!
//! # Example
//!
//! Every registered method streams through the same engine:
//!
//! ```
//! use netanom_baselines::methods::MethodName;
//! use netanom_core::{DiagnoserConfig, RefitStrategy, StreamConfig, StreamingEngine};
//! use netanom_linalg::Matrix;
//! use netanom_topology::builtin;
//!
//! let net = builtin::line(3);
//! let rm = &net.routing_matrix;
//! let m = rm.num_links();
//! let gen = |t: usize, l: usize| {
//!     2e6 + 2e5 * (t as f64 * std::f64::consts::TAU / 144.0).sin() * (l + 1) as f64
//!         + ((t * m + l) % 101) as f64
//! };
//! let training = Matrix::from_fn(288, m, &gen);
//! // The next bin continues the diurnal pattern — with a large volume
//! // anomaly injected along flow 0's path.
//! let mut next: Vec<f64> = (0..m).map(|l| gen(288, l)).collect();
//! for (l, a) in rm.column(0).iter().enumerate() {
//!     next[l] += 5e7 * a;
//! }
//! for name in MethodName::ALL {
//!     let backend = name
//!         .fit(&training, rm, DiagnoserConfig::default(), RefitStrategy::FullSvd)
//!         .unwrap();
//!     let mut engine =
//!         StreamingEngine::with_backend(backend, &training, StreamConfig::new(288)).unwrap();
//!     let report = engine.process(&next).unwrap();
//!     assert!(report.detected, "{name}: a 50 MB spike must fire");
//! }
//! ```

use netanom_core::method::{
    assemble_shard_windows, DetectionBackend, MethodState, ShardCtx, ShardScores, ShardableBackend,
    SubspaceBackend,
};
use netanom_core::{
    CoreError, DiagnoserConfig, DiagnosisReport, RefitStrategy, Result, RingWindow,
};
use netanom_linalg::Matrix;
use netanom_topology::{LinkPartition, RoutingMatrix};

use crate::ewma::{Ewma, EwmaStream};
use crate::fourier::{FourierModel, FourierStream};
use crate::holt_winters::{HoltWinters, HoltWintersStream};

/// Default Holt–Winters season length: one day of 10-minute bins
/// (clamped to half the training length when the window is shorter).
pub const DEFAULT_HW_PERIOD: usize = 144;
/// Default Haar decomposition depth (`2^5` bins ≈ 5.3 h at 10-minute
/// bins).
pub const DEFAULT_WAVELET_LEVELS: usize = 5;

/// Which temporal method a [`TemporalBackend`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalKind {
    /// Per-link EWMA with grid-searched α (re-searched at every refit).
    Ewma,
    /// Per-link additive Holt–Winters with the given season length
    /// (clamped to half the training length at fit time).
    HoltWinters {
        /// Requested season length in bins.
        period: usize,
    },
    /// Per-link eight-period Fourier model (periods longer than twice
    /// the training window are dropped, as in the batch fit).
    Fourier,
    /// Per-link Haar pyramid: the prediction for a bin is the previous
    /// completed `2^levels`-block's approximation value.
    Wavelet {
        /// Decomposition depth.
        levels: usize,
    },
}

impl TemporalKind {
    fn name(&self) -> &'static str {
        match self {
            TemporalKind::Ewma => "ewma",
            TemporalKind::HoltWinters { .. } => "holt-winters",
            TemporalKind::Fourier => "fourier",
            TemporalKind::Wavelet { .. } => "wavelet",
        }
    }
}

/// Causal Haar predictor: holds the previous completed block's
/// approximation value; residual = arrival − held value.
#[derive(Debug, Clone)]
struct HaarPredictor {
    levels: usize,
    held: f64,
    buf: Vec<f64>,
}

impl HaarPredictor {
    fn new(levels: usize, initial: f64) -> Self {
        HaarPredictor {
            levels,
            held: initial,
            buf: Vec::with_capacity(1usize << levels),
        }
    }

    fn block_len(&self) -> usize {
        1usize << self.levels
    }

    /// Reduce a full block to its approximation value with the same
    /// pairwise-averaging tree the batch pyramid uses.
    fn pyramid_value(block: &[f64]) -> f64 {
        let mut cur = block.to_vec();
        while cur.len() > 1 {
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < cur.len() {
                next.push(0.5 * (cur[i] + cur[i + 1]));
                i += 2;
            }
            if i < cur.len() {
                next.push(cur[i]);
            }
            cur = next;
        }
        cur[0]
    }

    fn observe(&mut self, z: f64) {
        self.buf.push(z);
        if self.buf.len() == self.block_len() {
            self.held = Self::pyramid_value(&self.buf);
            self.buf.clear();
        }
    }
}

/// One link's streaming forecaster state.
#[derive(Debug, Clone)]
enum LinkState {
    Ewma(EwmaStream),
    Hw(HoltWintersStream),
    Fourier(FourierStream),
    Haar(HaarPredictor),
}

impl LinkState {
    /// One-step-ahead forecast for the next arrival `z` (only a fresh
    /// EWMA state needs `z` itself, for the `out[0] = z` convention).
    fn forecast(&self, z: f64) -> f64 {
        match self {
            LinkState::Ewma(s) => s.forecast_next().unwrap_or(z),
            LinkState::Hw(s) => s.forecast_next(),
            LinkState::Fourier(s) => s.forecast_next(),
            LinkState::Haar(s) => s.held,
        }
    }

    fn advance(&mut self, z: f64) {
        match self {
            LinkState::Ewma(s) => {
                s.step(z);
            }
            LinkState::Hw(s) => {
                s.step(z);
            }
            LinkState::Fourier(s) => {
                s.step(z);
            }
            LinkState::Haar(s) => s.observe(z),
        }
    }
}

/// Empirical `confidence`-quantile of a residual-energy sample — the
/// temporal backends' detection threshold.
fn energy_threshold(energies: &[f64], confidence: f64) -> Result<f64> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(CoreError::InvalidConfidence { value: confidence });
    }
    let mut v: Vec<f64> = energies.iter().copied().filter(|e| e.is_finite()).collect();
    if v.is_empty() {
        return Err(CoreError::TooFewSamples { got: 0, need: 1 });
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("filtered finite"));
    let n = v.len();
    let idx = ((confidence * n as f64).ceil() as usize).clamp(1, n) - 1;
    Ok(v[idx])
}

/// A per-link temporal filter as a [`DetectionBackend`]: EWMA,
/// Holt–Winters, Fourier, or Haar wavelet across every link, scored by
/// per-bin residual energy against a training-calibrated threshold.
///
/// See the [module docs](self) for the scoring semantics. Refits
/// ([`DetectionBackend::refit`]) re-run the full calibration — parameter
/// search, forecaster replay, threshold quantile — on the engine's
/// retained window, which keeps the streaming and sharded deployments
/// bitwise aligned (both calibrate on the identical window matrix).
#[derive(Debug, Clone)]
pub struct TemporalBackend {
    kind: TemporalKind,
    confidence: f64,
    threshold: f64,
    links: Vec<LinkState>,
}

impl TemporalBackend {
    /// Fit on a `t × m` training matrix: per-link parameter search +
    /// forecaster replay, threshold at the `confidence` quantile of the
    /// training residual energies.
    pub fn fit(kind: TemporalKind, training: &Matrix, confidence: f64) -> Result<Self> {
        let (links, threshold) = Self::calibrate(kind, training, confidence)?;
        Ok(TemporalBackend {
            kind,
            confidence,
            threshold,
            links,
        })
    }

    /// Reconstruct a backend over `dim` links from an exported
    /// [`MethodState`] without recalibrating — the restore half of a
    /// service-session checkpoint. The state carries the complete
    /// per-link forecaster states (levels, seasonals, coefficients,
    /// pending wavelet buffers), so scoring after a restore is bitwise
    /// the scoring of the exporting process.
    pub fn from_state(kind: TemporalKind, dim: usize, state: &MethodState) -> Result<Self> {
        // Placeholder per-link states of the right count; import_state
        // replaces them wholesale and only reads their length.
        let mut backend = TemporalBackend {
            kind,
            confidence: 0.0,
            threshold: f64::INFINITY,
            links: vec![LinkState::Ewma(EwmaStream::new(0.5)); dim],
        };
        backend.import_state(state)?;
        Ok(backend)
    }

    /// The temporal method this backend runs.
    pub fn kind(&self) -> TemporalKind {
        self.kind
    }

    /// The confidence level the threshold is calibrated at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Calibrate per-link forecasters and the energy threshold on a
    /// training matrix.
    fn calibrate(
        kind: TemporalKind,
        training: &Matrix,
        confidence: f64,
    ) -> Result<(Vec<LinkState>, f64)> {
        let bins = training.rows();
        let m = training.cols();
        if bins < 2 {
            return Err(CoreError::TooFewSamples { got: bins, need: 2 });
        }
        for t in 0..bins {
            if let Some(link) = training.row(t).iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteMeasurement { link });
            }
        }
        let mut energies = vec![0.0; bins];
        let mut links = Vec::with_capacity(m);
        let warmup;
        match kind {
            TemporalKind::Ewma => {
                // The first bin's forecast is the observation itself.
                warmup = 1;
                for l in 0..m {
                    let col = training.col(l);
                    let alpha = Ewma::grid_search(&col).alpha;
                    let mut stream = EwmaStream::new(alpha);
                    for (t, &z) in col.iter().enumerate() {
                        let r = z - stream.step(z);
                        energies[t] += r * r;
                    }
                    links.push(LinkState::Ewma(stream));
                }
            }
            TemporalKind::HoltWinters { period } => {
                // Clamp the season so two full seasons fit the window.
                let period_eff = period.clamp(1, bins / 2);
                warmup = 2 * period_eff;
                let params = HoltWinters {
                    period: period_eff,
                    ..HoltWinters::daily()
                };
                for l in 0..m {
                    let col = training.col(l);
                    // One replay yields both the fitted stream and the
                    // calibration forecasts (bitwise the batch
                    // `forecasts` of the same column).
                    let (stream, forecasts) = HoltWintersStream::fit_collecting(params, &col);
                    debug_assert_eq!(stream.observed(), bins);
                    for (t, (z, f)) in col.iter().zip(forecasts).enumerate() {
                        let r = z - f;
                        energies[t] += r * r;
                    }
                    links.push(LinkState::Hw(stream));
                }
            }
            TemporalKind::Fourier => {
                warmup = 0;
                // Mirror FourierModel::fit's period-dropping rule to
                // turn its panic into a clean error.
                let usable = crate::fourier::PAPER_PERIODS_BINS
                    .iter()
                    .filter(|&&p| p > 0.0 && p <= 2.0 * bins as f64)
                    .count();
                let ncoef = 1 + 2 * usable;
                if bins < ncoef {
                    return Err(CoreError::TooFewSamples {
                        got: bins,
                        need: ncoef,
                    });
                }
                for l in 0..m {
                    let col = training.col(l);
                    let model = FourierModel::fit_paper_basis(&col);
                    for (t, r) in model.residuals(&col).into_iter().enumerate() {
                        energies[t] += r * r;
                    }
                    links.push(LinkState::Fourier(model.stream(bins)));
                }
            }
            TemporalKind::Wavelet { levels } => {
                if levels == 0 {
                    return Err(CoreError::TooFewSamples { got: 0, need: 1 });
                }
                warmup = 0;
                for l in 0..m {
                    let col = training.col(l);
                    let mut pred = HaarPredictor::new(levels, col[0]);
                    for (t, &z) in col.iter().enumerate() {
                        let r = z - pred.held;
                        energies[t] += r * r;
                        pred.observe(z);
                    }
                    links.push(LinkState::Haar(pred));
                }
            }
        }
        let usable = if warmup < energies.len() {
            &energies[warmup..]
        } else {
            &energies[..]
        };
        let threshold = energy_threshold(usable, confidence)?;
        Ok((links, threshold))
    }

    fn check_vector(&self, y: &[f64]) -> Result<()> {
        if y.len() != self.links.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.links.len(),
                got: y.len(),
            });
        }
        if let Some(link) = y.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteMeasurement { link });
        }
        Ok(())
    }

    /// Residual energy of `y` against the given per-link states (shared
    /// by the streaming and sharded scoring paths; summation is in link
    /// order).
    fn energy_of(states: &[LinkState], y: &[f64]) -> f64 {
        let mut e = 0.0;
        for (state, &z) in states.iter().zip(y) {
            let r = z - state.forecast(z);
            e += r * r;
        }
        e
    }

    fn report(&self, score: f64) -> DiagnosisReport {
        DiagnosisReport {
            time: 0,
            spe: score,
            threshold: self.threshold,
            detected: score > self.threshold,
            identification: None,
            estimated_bytes: None,
        }
    }
}

impl DetectionBackend for TemporalBackend {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn dim(&self) -> usize {
        self.links.len()
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn score_vector(&self, y: &[f64]) -> Result<DiagnosisReport> {
        self.check_vector(y)?;
        Ok(self.report(Self::energy_of(&self.links, y)))
    }

    fn score_matrix(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        if links.cols() != self.links.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.links.len(),
                got: links.cols(),
            });
        }
        // Step a *clone* of the per-link states through the block: the
        // score of row t must see the state after rows < t, exactly as
        // the sequential process path would, without mutating self.
        let mut sim = self.links.clone();
        let mut out = Vec::with_capacity(links.rows());
        for t in 0..links.rows() {
            let row = links.row(t);
            self.check_vector(row)?;
            let mut e = 0.0;
            for (state, &z) in sim.iter_mut().zip(row) {
                let r = z - state.forecast(z);
                e += r * r;
                state.advance(z);
            }
            out.push(self.report(e));
        }
        Ok(out)
    }

    fn observe(&mut self, _evicted: Option<&[f64]>, y: &[f64]) -> Result<()> {
        self.check_vector(y)?;
        for (state, &z) in self.links.iter_mut().zip(y) {
            state.advance(z);
        }
        Ok(())
    }

    fn refit(&mut self, window: &RingWindow) -> Result<()> {
        let training = window.to_matrix();
        let (links, threshold) = Self::calibrate(self.kind, &training, self.confidence)?;
        self.links = links;
        self.threshold = threshold;
        Ok(())
    }

    fn export_state(&self) -> MethodState {
        let m = self.links.len();
        let mut scalars = vec![self.threshold, self.confidence];
        let mut vectors: Vec<Vec<f64>> = Vec::new();
        let mut matrices: Vec<Matrix> = Vec::new();
        match self.kind {
            TemporalKind::Ewma => {
                let mut alphas = Vec::with_capacity(m);
                let mut smoothed = Vec::with_capacity(m);
                for s in &self.links {
                    let LinkState::Ewma(e) = s else {
                        unreachable!()
                    };
                    alphas.push(e.alpha());
                    // NaN encodes "no observation yet".
                    smoothed.push(e.forecast_next().unwrap_or(f64::NAN));
                }
                vectors.push(alphas);
                vectors.push(smoothed);
            }
            TemporalKind::HoltWinters { .. } => {
                let mut period = 0usize;
                let mut t_obs = 0usize;
                let mut levels = Vec::with_capacity(m);
                let mut trends = Vec::with_capacity(m);
                let mut seasonal_rows: Vec<Vec<f64>> = Vec::with_capacity(m);
                for s in &self.links {
                    let LinkState::Hw(h) = s else { unreachable!() };
                    period = h.params().period;
                    t_obs = h.observed();
                    let (lv, tr, se) = h.components();
                    levels.push(lv);
                    trends.push(tr);
                    seasonal_rows.push(se.to_vec());
                }
                scalars.push(period as f64);
                scalars.push(t_obs as f64);
                vectors.push(levels);
                vectors.push(trends);
                matrices.push(Matrix::from_fn(m, period, |i, j| seasonal_rows[i][j]));
            }
            TemporalKind::Fourier => {
                let mut t_next = 0usize;
                let mut periods: Vec<f64> = Vec::new();
                let mut coeff_rows: Vec<Vec<f64>> = Vec::with_capacity(m);
                for s in &self.links {
                    let LinkState::Fourier(f) = s else {
                        unreachable!()
                    };
                    t_next = f.time();
                    periods = f.model().periods().to_vec();
                    coeff_rows.push(f.model().coefficients().to_vec());
                }
                scalars.push(t_next as f64);
                vectors.push(periods);
                let ncoef = coeff_rows.first().map_or(0, Vec::len);
                matrices.push(Matrix::from_fn(m, ncoef, |i, j| coeff_rows[i][j]));
            }
            TemporalKind::Wavelet { levels } => {
                scalars.push(levels as f64);
                let mut held = Vec::with_capacity(m);
                let mut buf_rows: Vec<Vec<f64>> = Vec::with_capacity(m);
                for s in &self.links {
                    let LinkState::Haar(h) = s else {
                        unreachable!()
                    };
                    held.push(h.held);
                    buf_rows.push(h.buf.clone());
                }
                vectors.push(held);
                let pending = buf_rows.first().map_or(0, Vec::len);
                matrices.push(Matrix::from_fn(m, pending, |i, j| buf_rows[i][j]));
            }
        }
        MethodState {
            method: self.kind.name().to_string(),
            scalars,
            vectors,
            matrices,
        }
    }

    fn import_state(&mut self, state: &MethodState) -> Result<()> {
        state.expect_method(self.kind.name())?;
        let m = self.links.len();
        let bad = |reason: &'static str| CoreError::InvalidState { reason };
        let [threshold, confidence, rest @ ..] = &state.scalars[..] else {
            return Err(bad(
                "temporal state needs [threshold, confidence, ...] scalars",
            ));
        };
        let mut links = Vec::with_capacity(m);
        match self.kind {
            TemporalKind::Ewma => {
                let [alphas, smoothed] = &state.vectors[..] else {
                    return Err(bad("ewma state needs [alphas, smoothed] vectors"));
                };
                if alphas.len() != m || smoothed.len() != m {
                    return Err(bad("ewma state has the wrong link count"));
                }
                for l in 0..m {
                    if !(0.0..=1.0).contains(&alphas[l]) {
                        return Err(bad("ewma state carries an alpha outside [0, 1]"));
                    }
                    let mut s = EwmaStream::new(alphas[l]);
                    if smoothed[l].is_finite() {
                        s.set_level(smoothed[l]);
                    }
                    links.push(LinkState::Ewma(s));
                }
            }
            TemporalKind::HoltWinters { .. } => {
                let [period, t_obs] = rest else {
                    return Err(bad("holt-winters state needs [period, observed] scalars"));
                };
                let ([levels, trends], [seasonal]) = (&state.vectors[..], &state.matrices[..])
                else {
                    return Err(bad(
                        "holt-winters state needs [levels, trends] vectors and [seasonal]",
                    ));
                };
                let period = *period as usize;
                if levels.len() != m || trends.len() != m || seasonal.rows() != m {
                    return Err(bad("holt-winters state has the wrong link count"));
                }
                if period == 0 || seasonal.cols() != period {
                    return Err(bad("holt-winters state has an inconsistent period"));
                }
                let params = HoltWinters {
                    period,
                    ..HoltWinters::daily()
                };
                for l in 0..m {
                    links.push(LinkState::Hw(HoltWintersStream::from_components(
                        params,
                        levels[l],
                        trends[l],
                        seasonal.row(l).to_vec(),
                        *t_obs as usize,
                    )));
                }
            }
            TemporalKind::Fourier => {
                let [t_next] = rest else {
                    return Err(bad("fourier state needs a [time] scalar"));
                };
                let ([periods], [coeffs]) = (&state.vectors[..], &state.matrices[..]) else {
                    return Err(bad("fourier state needs [periods] and [coefficients]"));
                };
                if coeffs.rows() != m {
                    return Err(bad("fourier state has the wrong link count"));
                }
                if coeffs.cols() != 1 + 2 * periods.len() {
                    return Err(bad("fourier state coefficients do not match its periods"));
                }
                for l in 0..m {
                    let model =
                        FourierModel::from_coefficients(periods.clone(), coeffs.row(l).to_vec());
                    links.push(LinkState::Fourier(model.stream(*t_next as usize)));
                }
            }
            TemporalKind::Wavelet { levels } => {
                let [state_levels] = rest else {
                    return Err(bad("wavelet state needs a [levels] scalar"));
                };
                // A state exported at a different decomposition depth
                // would import cleanly but complete blocks on the wrong
                // cadence, silently diverging from the exporter.
                if *state_levels as usize != levels {
                    return Err(bad("wavelet state has a different decomposition depth"));
                }
                let ([held], [buf]) = (&state.vectors[..], &state.matrices[..]) else {
                    return Err(bad("wavelet state needs [held] and [buffer]"));
                };
                if held.len() != m || buf.rows() != m {
                    return Err(bad("wavelet state has the wrong link count"));
                }
                if buf.cols() >= (1usize << levels) {
                    return Err(bad("wavelet state buffer exceeds a block"));
                }
                for (l, &h) in held.iter().enumerate() {
                    let mut p = HaarPredictor::new(levels, h);
                    p.buf.extend_from_slice(buf.row(l));
                    links.push(LinkState::Haar(p));
                }
            }
        }
        self.links = links;
        self.threshold = *threshold;
        self.confidence = *confidence;
        Ok(())
    }
}

/// One shard's slice of a temporal backend: the per-link forecaster
/// states of its links, in shard-local order.
#[derive(Debug, Clone)]
pub struct TemporalShard {
    states: Vec<LinkState>,
}

impl ShardableBackend for TemporalBackend {
    type Shard = TemporalShard;
    /// Phase A only cuts the raw column slice; all scoring state is
    /// per-link, so nothing needs the cross-shard merge.
    type Partial = Matrix;
    type Merged = ();

    fn make_shards(
        &self,
        partition: &LinkPartition,
        _training: &Matrix,
    ) -> Result<Vec<Self::Shard>> {
        Ok(partition
            .groups()
            .iter()
            .map(|links| TemporalShard {
                states: links.iter().map(|&l| self.links[l].clone()).collect(),
            })
            .collect())
    }

    fn needs_evicted(&self) -> bool {
        false
    }

    fn wants_residual(&self) -> bool {
        false
    }

    fn shard_phase_a(&self, _shard: &Self::Shard, links: &[usize], block: &Matrix) -> Matrix {
        block.select_columns(links)
    }

    fn partial_raw<'a>(&self, partial: &'a Matrix) -> &'a Matrix {
        partial
    }

    fn merge_partials(&self, _bins: usize, _partials: &[&Matrix]) {}

    fn shard_phase_b(
        &self,
        shard: &mut Self::Shard,
        _links: &[usize],
        partial: &Matrix,
        _merged: &(),
        _block: &Matrix,
        _evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardScores> {
        let mut scores = Vec::with_capacity(partial.rows());
        for t in 0..partial.rows() {
            let row = partial.row(t);
            let mut e = 0.0;
            for (state, &z) in shard.states.iter_mut().zip(row) {
                let r = z - state.forecast(z);
                e += r * r;
                state.advance(z);
            }
            scores.push(e);
        }
        Ok(ShardScores {
            scores,
            residual: None,
        })
    }

    fn finalize(&self, score: f64, _residual: Option<&[f64]>) -> Result<DiagnosisReport> {
        Ok(self.report(score))
    }

    fn refit_shards(&mut self, shards: &mut [Self::Shard], ctx: &[ShardCtx<'_>]) -> Result<()> {
        // Reassemble the global window (bitwise the single-process
        // window), recalibrate globally, then scatter the fresh per-link
        // states back to the shards — so the sharded refit is bitwise
        // the streaming refit.
        let window = assemble_shard_windows(self.dim(), ctx)?;
        let (links, threshold) = Self::calibrate(self.kind, &window, self.confidence)?;
        self.links = links;
        self.threshold = threshold;
        for (shard, c) in shards.iter_mut().zip(ctx) {
            shard.states = c.links.iter().map(|&l| self.links[l].clone()).collect();
        }
        Ok(())
    }
}

/// Registry of every runnable detection method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodName {
    /// The paper's network-wide subspace/Q-statistic method.
    Subspace,
    /// Per-link EWMA residual energy.
    Ewma,
    /// Per-link additive Holt–Winters residual energy.
    HoltWinters,
    /// Per-link eight-period Fourier residual energy.
    Fourier,
    /// Per-link Haar-pyramid residual energy.
    Wavelet,
}

/// The method names accepted by [`MethodName::parse`] (and the CLI's
/// `--method`), in registry order.
pub const METHOD_NAMES: [&str; 5] = ["subspace", "ewma", "holt-winters", "fourier", "wavelet"];

impl MethodName {
    /// Every registered method, in registry order.
    pub const ALL: [MethodName; 5] = [
        MethodName::Subspace,
        MethodName::Ewma,
        MethodName::HoltWinters,
        MethodName::Fourier,
        MethodName::Wavelet,
    ];

    /// The stable name (`"subspace"`, `"ewma"`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            MethodName::Subspace => "subspace",
            MethodName::Ewma => "ewma",
            MethodName::HoltWinters => "holt-winters",
            MethodName::Fourier => "fourier",
            MethodName::Wavelet => "wavelet",
        }
    }

    /// Resolve a user-supplied name; the error lists the valid set.
    pub fn parse(name: &str) -> std::result::Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "unknown method {name:?}; available methods: {}",
                    METHOD_NAMES.join(" ")
                )
            })
    }

    /// Fit this method on a training matrix, ready to drive through the
    /// streaming or sharded engines.
    ///
    /// The routing matrix and refit `strategy` are consumed by the
    /// subspace method (identification needs routing); the temporal
    /// methods ignore them and calibrate from `config.confidence` alone.
    pub fn fit(
        self,
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
    ) -> Result<MethodBackend> {
        Ok(match self {
            MethodName::Subspace => {
                MethodBackend::Subspace(SubspaceBackend::fit(training, rm, config, strategy)?)
            }
            MethodName::Ewma => MethodBackend::Temporal(TemporalBackend::fit(
                TemporalKind::Ewma,
                training,
                config.confidence,
            )?),
            MethodName::HoltWinters => MethodBackend::Temporal(TemporalBackend::fit(
                TemporalKind::HoltWinters {
                    period: DEFAULT_HW_PERIOD,
                },
                training,
                config.confidence,
            )?),
            MethodName::Fourier => MethodBackend::Temporal(TemporalBackend::fit(
                TemporalKind::Fourier,
                training,
                config.confidence,
            )?),
            MethodName::Wavelet => MethodBackend::Temporal(TemporalBackend::fit(
                TemporalKind::Wavelet {
                    levels: DEFAULT_WAVELET_LEVELS,
                },
                training,
                config.confidence,
            )?),
        })
    }

    /// Like [`MethodName::fit`], but for a backend that will drive a
    /// sharded engine: the subspace method skips its global streaming
    /// statistics (per-shard statistics replace them — see
    /// [`SubspaceBackend::fit_sharded`]); the temporal methods are
    /// unchanged.
    pub fn fit_sharded(
        self,
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
    ) -> Result<MethodBackend> {
        match self {
            MethodName::Subspace => Ok(MethodBackend::Subspace(SubspaceBackend::fit_sharded(
                training, rm, config, strategy,
            )?)),
            other => other.fit(training, rm, config, strategy),
        }
    }

    /// The [`TemporalKind`] this name selects (with the registry's
    /// default parameters), or `None` for the subspace method.
    pub fn temporal_kind(self) -> Option<TemporalKind> {
        match self {
            MethodName::Subspace => None,
            MethodName::Ewma => Some(TemporalKind::Ewma),
            MethodName::HoltWinters => Some(TemporalKind::HoltWinters {
                period: DEFAULT_HW_PERIOD,
            }),
            MethodName::Fourier => Some(TemporalKind::Fourier),
            MethodName::Wavelet => Some(TemporalKind::Wavelet {
                levels: DEFAULT_WAVELET_LEVELS,
            }),
        }
    }

    /// Reconstruct a fitted backend from an exported [`MethodState`]
    /// without training data — the restore half of a service-session
    /// checkpoint ([`SubspaceBackend::from_state`] /
    /// [`TemporalBackend::from_state`]).
    ///
    /// `stats` reinstalls the subspace method's sliding sufficient
    /// statistics when `strategy` maintains them; the temporal methods
    /// carry their complete state in the [`MethodState`] itself and
    /// reject a statistics payload as a corrupt checkpoint.
    pub fn backend_from_state(
        self,
        state: &MethodState,
        dim: usize,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
        stats: Option<netanom_core::incremental::IncrementalCovariance>,
    ) -> Result<MethodBackend> {
        match self.temporal_kind() {
            None => Ok(MethodBackend::Subspace(SubspaceBackend::from_state(
                state, rm, config, strategy, stats,
            )?)),
            Some(kind) => {
                if stats.is_some() {
                    return Err(CoreError::InvalidState {
                        reason: "temporal methods carry no covariance statistics",
                    });
                }
                Ok(MethodBackend::Temporal(TemporalBackend::from_state(
                    kind, dim, state,
                )?))
            }
        }
    }
}

/// Fit `cfg`'s method on `training` and assemble the streaming engine —
/// the single construction path behind `netanom stream`, the `serve`
/// sessions, and the eval scenarios.
///
/// The method name is resolved against the registry here (unknown names
/// error with the valid set); every other knob was validated when `cfg`
/// was built.
pub fn build_streaming(
    cfg: &netanom_core::EngineConfig,
    training: &Matrix,
    rm: &RoutingMatrix,
) -> std::result::Result<netanom_core::StreamingEngine<MethodBackend>, String> {
    let method = MethodName::parse(cfg.method())?;
    let backend = method
        .fit(training, rm, cfg.diagnoser_config(), cfg.strategy())
        .map_err(|e| format!("fitting {method} model: {e}"))?;
    netanom_core::StreamingEngine::with_backend(backend, training, cfg.stream_config())
        .map_err(|e| format!("assembling {method} engine: {e}"))
}

/// Fit `cfg`'s method for a sharded deployment and assemble the sharded
/// engine over `partition` — the single construction path behind
/// `netanom shard` (the distributed tracker shares the backend-fitting
/// half).
pub fn build_sharded(
    cfg: &netanom_core::EngineConfig,
    training: &Matrix,
    rm: &RoutingMatrix,
    partition: &LinkPartition,
) -> std::result::Result<netanom_core::ShardedEngine<MethodBackend>, String> {
    let method = MethodName::parse(cfg.method())?;
    let backend = method
        .fit_sharded(training, rm, cfg.diagnoser_config(), cfg.strategy())
        .map_err(|e| format!("fitting {method} model: {e}"))?;
    netanom_core::ShardedEngine::with_backend(backend, training, cfg.stream_config(), partition)
        .map_err(|e| format!("assembling {method} engine: {e}"))
}

impl std::fmt::Display for MethodName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any registered detection method behind one concrete type — what the
/// CLI and the eval scenarios instantiate the engines with
/// (`StreamingEngine<MethodBackend>`, `ShardedEngine<MethodBackend>`).
// The subspace variant is much larger than the temporal one, but a
// process holds a handful of backends (one per engine), never bulk
// collections — boxing would tax every score call for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MethodBackend {
    /// The subspace reference implementation.
    Subspace(SubspaceBackend),
    /// One of the per-link temporal comparators.
    Temporal(TemporalBackend),
}

impl MethodBackend {
    /// The subspace backend, if that is the selected method (the CLI
    /// uses this to reach identification-specific reporting).
    pub fn as_subspace(&self) -> Option<&SubspaceBackend> {
        match self {
            MethodBackend::Subspace(b) => Some(b),
            MethodBackend::Temporal(_) => None,
        }
    }

    /// The subspace method's sliding sufficient statistics, when the
    /// active strategy maintains them — what a service-session
    /// checkpoint serializes alongside
    /// [`DetectionBackend::export_state`]. Temporal backends carry
    /// their whole state in the exported [`MethodState`] and return
    /// `None`.
    pub fn statistics(&self) -> Option<&netanom_core::incremental::IncrementalCovariance> {
        match self {
            MethodBackend::Subspace(b) => b.statistics(),
            MethodBackend::Temporal(_) => None,
        }
    }
}

impl DetectionBackend for MethodBackend {
    fn name(&self) -> &'static str {
        match self {
            MethodBackend::Subspace(b) => b.name(),
            MethodBackend::Temporal(b) => b.name(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            MethodBackend::Subspace(b) => b.dim(),
            MethodBackend::Temporal(b) => b.dim(),
        }
    }

    fn threshold(&self) -> f64 {
        match self {
            MethodBackend::Subspace(b) => b.threshold(),
            MethodBackend::Temporal(b) => b.threshold(),
        }
    }

    fn score_vector(&self, y: &[f64]) -> Result<DiagnosisReport> {
        match self {
            MethodBackend::Subspace(b) => b.score_vector(y),
            MethodBackend::Temporal(b) => b.score_vector(y),
        }
    }

    fn score_matrix(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        match self {
            MethodBackend::Subspace(b) => b.score_matrix(links),
            MethodBackend::Temporal(b) => b.score_matrix(links),
        }
    }

    fn observe(&mut self, evicted: Option<&[f64]>, y: &[f64]) -> Result<()> {
        match self {
            MethodBackend::Subspace(b) => b.observe(evicted, y),
            MethodBackend::Temporal(b) => b.observe(evicted, y),
        }
    }

    fn refit(&mut self, window: &RingWindow) -> Result<()> {
        match self {
            MethodBackend::Subspace(b) => b.refit(window),
            MethodBackend::Temporal(b) => b.refit(window),
        }
    }

    fn export_state(&self) -> MethodState {
        match self {
            MethodBackend::Subspace(b) => b.export_state(),
            MethodBackend::Temporal(b) => b.export_state(),
        }
    }

    fn import_state(&mut self, state: &MethodState) -> Result<()> {
        match self {
            MethodBackend::Subspace(b) => b.import_state(state),
            MethodBackend::Temporal(b) => b.import_state(state),
        }
    }
}

/// Per-shard state of a [`MethodBackend`].
#[derive(Debug, Clone)]
pub enum MethodShard {
    /// Subspace shard state.
    Subspace(<SubspaceBackend as ShardableBackend>::Shard),
    /// Temporal shard state.
    Temporal(TemporalShard),
}

/// Phase-A partial of a [`MethodBackend`].
#[derive(Debug)]
pub enum MethodPartial {
    /// Subspace partial (raw/centered/coefficients).
    Subspace(<SubspaceBackend as ShardableBackend>::Partial),
    /// Temporal partial (raw slice).
    Temporal(Matrix),
}

/// Merged cross-shard context of a [`MethodBackend`].
#[derive(Debug)]
pub enum MethodMerged {
    /// Merged subspace projection coefficients.
    Subspace(Matrix),
    /// Temporal methods need no cross-shard context.
    Temporal,
}

/// Internal invariant: the engine never mixes states across backends.
const MIXED: &str = "sharded state belongs to a different method (engine invariant)";

impl ShardableBackend for MethodBackend {
    type Shard = MethodShard;
    type Partial = MethodPartial;
    type Merged = MethodMerged;

    fn make_shards(
        &self,
        partition: &LinkPartition,
        training: &Matrix,
    ) -> Result<Vec<Self::Shard>> {
        Ok(match self {
            MethodBackend::Subspace(b) => b
                .make_shards(partition, training)?
                .into_iter()
                .map(MethodShard::Subspace)
                .collect(),
            MethodBackend::Temporal(b) => b
                .make_shards(partition, training)?
                .into_iter()
                .map(MethodShard::Temporal)
                .collect(),
        })
    }

    fn needs_evicted(&self) -> bool {
        match self {
            MethodBackend::Subspace(b) => b.needs_evicted(),
            MethodBackend::Temporal(b) => b.needs_evicted(),
        }
    }

    fn wants_residual(&self) -> bool {
        match self {
            MethodBackend::Subspace(b) => b.wants_residual(),
            MethodBackend::Temporal(b) => b.wants_residual(),
        }
    }

    fn shard_phase_a(&self, shard: &Self::Shard, links: &[usize], block: &Matrix) -> MethodPartial {
        match (self, shard) {
            (MethodBackend::Subspace(b), MethodShard::Subspace(s)) => {
                MethodPartial::Subspace(b.shard_phase_a(s, links, block))
            }
            (MethodBackend::Temporal(b), MethodShard::Temporal(s)) => {
                MethodPartial::Temporal(b.shard_phase_a(s, links, block))
            }
            _ => unreachable!("{MIXED}"),
        }
    }

    fn partial_raw<'a>(&self, partial: &'a MethodPartial) -> &'a Matrix {
        match (self, partial) {
            (MethodBackend::Subspace(b), MethodPartial::Subspace(p)) => b.partial_raw(p),
            (MethodBackend::Temporal(b), MethodPartial::Temporal(p)) => b.partial_raw(p),
            _ => unreachable!("{MIXED}"),
        }
    }

    fn merge_partials(&self, bins: usize, partials: &[&MethodPartial]) -> MethodMerged {
        match self {
            MethodBackend::Subspace(b) => {
                let inner: Vec<_> = partials
                    .iter()
                    .map(|p| match p {
                        MethodPartial::Subspace(p) => p,
                        MethodPartial::Temporal(_) => unreachable!("{MIXED}"),
                    })
                    .collect();
                MethodMerged::Subspace(b.merge_partials(bins, &inner))
            }
            MethodBackend::Temporal(_) => MethodMerged::Temporal,
        }
    }

    fn shard_phase_b(
        &self,
        shard: &mut Self::Shard,
        links: &[usize],
        partial: &MethodPartial,
        merged: &MethodMerged,
        block: &Matrix,
        evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardScores> {
        match (self, shard, partial, merged) {
            (
                MethodBackend::Subspace(b),
                MethodShard::Subspace(s),
                MethodPartial::Subspace(p),
                MethodMerged::Subspace(m),
            ) => b.shard_phase_b(s, links, p, m, block, evicted),
            (
                MethodBackend::Temporal(b),
                MethodShard::Temporal(s),
                MethodPartial::Temporal(p),
                MethodMerged::Temporal,
            ) => b.shard_phase_b(s, links, p, &(), block, evicted),
            _ => unreachable!("{MIXED}"),
        }
    }

    fn finalize(&self, score: f64, residual: Option<&[f64]>) -> Result<DiagnosisReport> {
        match self {
            MethodBackend::Subspace(b) => b.finalize(score, residual),
            MethodBackend::Temporal(b) => b.finalize(score, residual),
        }
    }

    fn refit_shards(&mut self, shards: &mut [Self::Shard], ctx: &[ShardCtx<'_>]) -> Result<()> {
        match self {
            MethodBackend::Subspace(b) => {
                let mut inner: Vec<_> = shards
                    .iter()
                    .map(|s| match s {
                        MethodShard::Subspace(s) => s.clone(),
                        MethodShard::Temporal(_) => unreachable!("{MIXED}"),
                    })
                    .collect();
                b.refit_shards(&mut inner, ctx)?;
                for (slot, fresh) in shards.iter_mut().zip(inner) {
                    *slot = MethodShard::Subspace(fresh);
                }
                Ok(())
            }
            MethodBackend::Temporal(b) => {
                let mut inner: Vec<_> = shards
                    .iter()
                    .map(|s| match s {
                        MethodShard::Temporal(s) => s.clone(),
                        MethodShard::Subspace(_) => unreachable!("{MIXED}"),
                    })
                    .collect();
                b.refit_shards(&mut inner, ctx)?;
                for (slot, fresh) in shards.iter_mut().zip(inner) {
                    *slot = MethodShard::Temporal(fresh);
                }
                Ok(())
            }
        }
    }
}
