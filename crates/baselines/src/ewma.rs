//! Exponentially weighted moving average forecasting.

/// EWMA (exponential smoothing) forecaster.
///
/// The prediction for time `t+1` is
/// `ẑ_{t+1} = α·z_t + (1 − α)·ẑ_t` (paper Section 6.2). Anomaly sizes are
/// measured as `|z_t − ẑ_t|`; because a moving average "often mistakenly
/// marks the time after a spike as an additional spike" (footnote 4), the
/// paper runs EWMA in both directions and takes the minimum of the two
/// estimates — implemented here as
/// [`Ewma::bidirectional_spike_sizes`].
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    /// Smoothing weight `α ∈ [0, 1]`: the weight on the most recent
    /// observation. The paper's grid search found `0.2 ≤ α ≤ 0.3` works
    /// well on its traffic.
    pub alpha: f64,
}

impl Ewma {
    /// Create a forecaster.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha.is_finite(),
            "alpha {alpha} outside [0, 1]"
        );
        Ewma { alpha }
    }

    /// One-step-ahead forecasts: `out[t]` predicts `series[t]` from
    /// `series[..t]`. `out[0] = series[0]` by convention (no prior data).
    pub fn forecasts(&self, series: &[f64]) -> Vec<f64> {
        if series.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(series.len());
        let mut smoothed = series[0];
        out.push(series[0]);
        for &z in &series[..series.len() - 1] {
            smoothed = self.alpha * z + (1.0 - self.alpha) * smoothed;
            out.push(smoothed);
        }
        out
    }

    /// Forecast residuals `z_t − ẑ_t`.
    pub fn residuals(&self, series: &[f64]) -> Vec<f64> {
        self.forecasts(series)
            .iter()
            .zip(series)
            .map(|(f, z)| z - f)
            .collect()
    }

    /// Absolute spike-size estimates from forward and backward passes,
    /// taking the per-bin minimum (paper footnote 4).
    pub fn bidirectional_spike_sizes(&self, series: &[f64]) -> Vec<f64> {
        let fwd = self.residuals(series);
        let mut rev: Vec<f64> = series.to_vec();
        rev.reverse();
        let mut bwd = self.residuals(&rev);
        bwd.reverse();
        fwd.iter()
            .zip(&bwd)
            .map(|(f, b)| f.abs().min(b.abs()))
            .collect()
    }

    /// One-step-ahead mean squared forecast error (skipping the first
    /// bin, which has no real forecast).
    pub fn forecast_mse(&self, series: &[f64]) -> f64 {
        if series.len() < 2 {
            return 0.0;
        }
        let resid = self.residuals(series);
        resid[1..].iter().map(|r| r * r).sum::<f64>() / (resid.len() - 1) as f64
    }

    /// The streaming-stateful port of this forecaster, starting with no
    /// history: the first [`EwmaStream::step`] returns its own input
    /// (the `out[0] = series[0]` convention), and stepping a whole
    /// series reproduces [`Ewma::forecasts`] bitwise.
    pub fn stream(&self) -> EwmaStream {
        EwmaStream {
            alpha: self.alpha,
            smoothed: None,
        }
    }

    /// Multi-grid search for α minimizing the one-step forecast MSE on a
    /// training series (the paper cites the multi-grid parameter search of
    /// Krishnamurthy et al. \[19\]).
    ///
    /// Searches a coarse grid, then refines around the best point twice.
    /// Returns `Ewma` with the winning α.
    pub fn grid_search(series: &[f64]) -> Ewma {
        let mut lo = 0.02_f64;
        let mut hi = 0.98_f64;
        let mut best = (0.2, f64::INFINITY);
        for _round in 0..3 {
            let step = (hi - lo) / 12.0;
            let mut a = lo;
            while a <= hi + 1e-12 {
                let mse = Ewma { alpha: a }.forecast_mse(series);
                if mse < best.1 {
                    best = (a, mse);
                }
                a += step;
            }
            // Refine around the current best.
            lo = (best.0 - step).max(0.01);
            hi = (best.0 + step).min(0.99);
        }
        Ewma { alpha: best.0 }
    }
}

/// Incremental EWMA state: the streaming port of [`Ewma`].
///
/// [`EwmaStream::step`] returns the one-step-ahead forecast of its
/// argument *before* folding it into the smoothed level, so driving a
/// series through `step` reproduces [`Ewma::forecasts`] **bitwise**
/// (the update is the identical arithmetic expression) — pinned by the
/// property tests, including restarts mid-series via
/// [`EwmaStream::resume`].
#[derive(Debug, Clone, Copy)]
pub struct EwmaStream {
    alpha: f64,
    /// Smoothed level; `None` until the first observation.
    smoothed: Option<f64>,
}

impl EwmaStream {
    /// Create with no history; equivalent to `Ewma::new(alpha).stream()`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        Ewma::new(alpha).stream()
    }

    /// Create mid-series: replay `history` so subsequent steps continue
    /// exactly where a single stream over `history ++ future` would be.
    pub fn resume(alpha: f64, history: &[f64]) -> Self {
        let mut s = Self::new(alpha);
        for &z in history {
            s.step(z);
        }
        s
    }

    /// The smoothing weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The forecast the next [`EwmaStream::step`] will return, or `None`
    /// before any observation.
    pub fn forecast_next(&self) -> Option<f64> {
        self.smoothed
    }

    /// Overwrite the smoothed level — the state-import path (e.g. a
    /// broadcast method state) restoring a mid-stream snapshot.
    pub fn set_level(&mut self, level: f64) {
        self.smoothed = Some(level);
    }

    /// Observe `z`: returns the forecast `ẑ` for it (the smoothed level
    /// before `z`; `z` itself on the very first step), then updates the
    /// level to `α·z + (1 − α)·ẑ_prev`.
    pub fn step(&mut self, z: f64) -> f64 {
        let prev = self.smoothed.unwrap_or(z);
        self.smoothed = Some(self.alpha * z + (1.0 - self.alpha) * prev);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_forecast_exactly() {
        let e = Ewma::new(0.3);
        let s = vec![5.0; 20];
        assert_eq!(e.forecasts(&s), s);
        assert!(e.residuals(&s).iter().all(|&r| r == 0.0));
        assert_eq!(e.forecast_mse(&s), 0.0);
    }

    #[test]
    fn alpha_one_is_naive_forecast() {
        let e = Ewma::new(1.0);
        let s = [1.0, 2.0, 4.0, 8.0];
        // ẑ_t = z_{t-1}.
        assert_eq!(e.forecasts(&s), vec![1.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn alpha_zero_freezes_initial_level() {
        let e = Ewma::new(0.0);
        let s = [3.0, 9.0, 27.0];
        assert_eq!(e.forecasts(&s), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn spike_appears_in_forward_residual() {
        let e = Ewma::new(0.25);
        let mut s = vec![100.0; 50];
        s[25] = 500.0;
        let resid = e.residuals(&s);
        assert!(resid[25] > 350.0, "spike residual {}", resid[25]);
    }

    #[test]
    fn forward_pass_smears_spike_into_next_bin() {
        // The pathology footnote 4 talks about: after the spike, the
        // forecast is inflated, so bin 26 looks like a (negative) anomaly.
        let e = Ewma::new(0.25);
        let mut s = vec![100.0; 50];
        s[25] = 500.0;
        let resid = e.residuals(&s);
        assert!(
            resid[26].abs() > 50.0,
            "expected post-spike smear, got {}",
            resid[26]
        );
    }

    #[test]
    fn bidirectional_estimate_removes_the_smear() {
        let e = Ewma::new(0.25);
        let mut s = vec![100.0; 50];
        s[25] = 500.0;
        let sizes = e.bidirectional_spike_sizes(&s);
        assert!(sizes[25] > 350.0, "spike size {}", sizes[25]);
        assert!(
            sizes[26] < 5.0,
            "smear not removed: size[26] = {}",
            sizes[26]
        );
        assert!(sizes[24] < 5.0);
    }

    #[test]
    fn bidirectional_estimate_is_symmetric() {
        let e = Ewma::new(0.3);
        let s: Vec<f64> = (0..60)
            .map(|i| 100.0 + (i as f64 * 0.5).sin() * 10.0)
            .collect();
        let mut rs = s.clone();
        rs.reverse();
        let a = e.bidirectional_spike_sizes(&s);
        let mut b = e.bidirectional_spike_sizes(&rs);
        b.reverse();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_search_prefers_smooth_tracking_for_trendy_data() {
        // A slow sinusoid: larger alpha tracks better than tiny alpha.
        let s: Vec<f64> = (0..500)
            .map(|i| 1000.0 + 200.0 * (i as f64 * std::f64::consts::TAU / 144.0).sin())
            .collect();
        let best = Ewma::grid_search(&s);
        assert!(best.alpha > 0.5, "alpha {}", best.alpha);
    }

    #[test]
    fn grid_search_prefers_heavy_smoothing_for_white_noise() {
        // Pure noise around a level: small alpha wins (forecast the mean).
        let s: Vec<f64> = (0..500)
            .map(|i: usize| 1000.0 + ((i.wrapping_mul(2654435761) % 1024) as f64 - 512.0))
            .collect();
        let best = Ewma::grid_search(&s);
        assert!(best.alpha < 0.3, "alpha {}", best.alpha);
    }

    #[test]
    fn empty_and_single_inputs() {
        let e = Ewma::new(0.2);
        assert!(e.forecasts(&[]).is_empty());
        assert_eq!(e.forecasts(&[7.0]), vec![7.0]);
        assert_eq!(e.forecast_mse(&[7.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_alpha_rejected() {
        Ewma::new(1.5);
    }

    #[test]
    fn stream_steps_reproduce_batch_forecasts_bitwise() {
        let e = Ewma::new(0.27);
        let s: Vec<f64> = (0..200)
            .map(|i| 1000.0 + ((i * 37) % 101) as f64 + (i as f64 * 0.11).sin() * 40.0)
            .collect();
        let batch = e.forecasts(&s);
        let mut stream = e.stream();
        assert_eq!(stream.forecast_next(), None);
        for (t, &z) in s.iter().enumerate() {
            assert_eq!(stream.step(z), batch[t], "bin {t}");
        }
    }

    #[test]
    fn stream_resume_continues_bitwise() {
        let s: Vec<f64> = (0..120).map(|i| 50.0 + ((i * 13) % 17) as f64).collect();
        let batch = Ewma::new(0.4).forecasts(&s);
        let mut resumed = EwmaStream::resume(0.4, &s[..70]);
        for (t, &z) in s.iter().enumerate().skip(70) {
            assert_eq!(resumed.step(z), batch[t], "bin {t}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn stream_rejects_invalid_alpha() {
        EwmaStream::new(f64::NAN);
    }
}
