//! Temporal baseline detectors and ground-truth extraction.
//!
//! The paper validates the subspace method against "true" anomalies
//! extracted from OD-flow data by two *temporal* methods — exponentially
//! weighted moving averages ([`Ewma`]) and an eight-period Fourier model
//! ([`FourierModel`]) — and contrasts the subspace method against the same
//! temporal filters applied per link (Figure 10). This crate implements
//! those methods, plus two related-work comparators used in ablation
//! benches ([`HoltWinters`], [`HaarWavelet`]).
//!
//! Contents:
//!
//! * [`Ewma`] — exponential smoothing with the paper's bidirectional
//!   minimum-spike estimator (footnote 4) and multi-grid α search.
//! * [`FourierModel`] — least-squares fit on the paper's basis periods
//!   (7 d, 5 d, 3 d, 24 h, 12 h, 6 h, 3 h, 1.5 h).
//! * [`HoltWinters`] — additive seasonal forecasting (referenced via
//!   Brutlag \[5\]).
//! * [`HaarWavelet`] — a multiscale approximation residual in the spirit
//!   of Barford et al. \[2\].
//! * [`ground_truth`] — the Section 6.2 procedure: run a temporal method
//!   over every OD flow, rank spike sizes, find the knee, emit the set of
//!   "true" anomalies.
//! * [`link_residual`] — per-link temporal filtering of the measurement
//!   matrix for the Figure 10 comparison.
//! * [`methods`] — every temporal comparator as a pluggable
//!   [`DetectionBackend`](netanom_core::DetectionBackend) (streaming
//!   `step` ports per link, residual-energy scoring), plus the
//!   [`MethodBackend`](methods::MethodBackend) enum and by-name
//!   registry uniting them with the subspace reference implementation
//!   behind the same engines.
//!
//! # Example
//!
//! The EWMA forecaster with the paper's bidirectional spike estimator
//! (footnote 4): a spike's size is recovered, and the bin after it is
//! not marked as a second spike.
//!
//! ```
//! use netanom_baselines::Ewma;
//!
//! let mut series = vec![100.0; 32];
//! series[16] += 50.0; // a one-bin spike
//! let sizes = Ewma::new(0.25).bidirectional_spike_sizes(&series);
//! assert!(sizes[16] > 40.0);           // the spike is seen...
//! assert!(sizes[17] < sizes[16] / 4.0); // ...and not echoed after
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod ewma;
mod fourier;
pub mod ground_truth;
mod holt_winters;
pub mod knee;
pub mod link_residual;
pub mod methods;
mod wavelet;

pub use ewma::{Ewma, EwmaStream};
pub use fourier::{FourierModel, FourierStream};
pub use ground_truth::{extract_true_anomalies, ExtractedAnomaly, TruthMethod};
pub use holt_winters::{HoltWinters, HoltWintersStream};
pub use wavelet::{HaarStream, HaarWavelet};
