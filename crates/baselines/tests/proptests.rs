//! Property-based tests of the temporal baselines.

use netanom_baselines::{Ewma, EwmaStream, FourierModel, HaarWavelet, HoltWinters};
use proptest::prelude::*;

fn series(len: usize, seed: u64, level: f64, amp: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = (i + seed as usize).wrapping_mul(2654435761) % 4096;
            level
                + amp * (i as f64 * std::f64::consts::TAU / 144.0).sin()
                + (h as f64 - 2048.0) * 0.01
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// EWMA forecasts are bounded by the range of the data seen so far —
    /// exponential smoothing is a convex combination of past values.
    #[test]
    fn ewma_forecasts_stay_in_convex_hull(
        alpha in 0.0..=1.0f64,
        seed in 0u64..500,
        len in 2usize..200,
    ) {
        let s = series(len, seed, 1000.0, 50.0);
        let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for f in Ewma::new(alpha).forecasts(&s) {
            prop_assert!(f >= lo - 1e-9 && f <= hi + 1e-9);
        }
    }

    /// Adding a constant to the series adds the same constant to EWMA
    /// forecasts (shift equivariance).
    #[test]
    fn ewma_is_shift_equivariant(alpha in 0.0..=1.0f64, shift in -1e5..1e5f64, seed in 0u64..200) {
        let s = series(100, seed, 500.0, 30.0);
        let shifted: Vec<f64> = s.iter().map(|v| v + shift).collect();
        let f1 = Ewma::new(alpha).forecasts(&s);
        let f2 = Ewma::new(alpha).forecasts(&shifted);
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((b - a - shift).abs() < 1e-6);
        }
    }

    /// The bidirectional spike estimate never exceeds either directional
    /// residual (it is their pointwise minimum in magnitude).
    #[test]
    fn ewma_bidirectional_is_a_lower_envelope(alpha in 0.05..0.95f64, seed in 0u64..200) {
        let mut s = series(150, seed, 1000.0, 40.0);
        s[75] += 5000.0;
        let e = Ewma::new(alpha);
        let fwd = e.residuals(&s);
        let both = e.bidirectional_spike_sizes(&s);
        for (b, f) in both.iter().zip(&fwd) {
            prop_assert!(*b <= f.abs() + 1e-9);
        }
    }

    /// The Fourier fit's residuals are orthogonal to the DC column: they
    /// sum to ~zero (least squares with an intercept).
    #[test]
    fn fourier_residuals_are_centered(seed in 0u64..300, len in 200usize..600) {
        let s = series(len, seed, 2000.0, 100.0);
        let m = FourierModel::fit_paper_basis(&s);
        let resid_sum: f64 = m.residuals(&s).iter().sum();
        prop_assert!(resid_sum.abs() < 1e-6 * len as f64);
    }

    /// Fitting never increases energy: ‖residual‖² ≤ ‖centered series‖²
    /// (the projection property of least squares).
    #[test]
    fn fourier_fit_reduces_energy(seed in 0u64..300) {
        let s = series(432, seed, 1500.0, 80.0);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let centered_energy: f64 = s.iter().map(|v| (v - mean) * (v - mean)).sum();
        let m = FourierModel::fit_paper_basis(&s);
        let resid_energy: f64 = m.residuals(&s).iter().map(|r| r * r).sum();
        prop_assert!(resid_energy <= centered_energy * (1.0 + 1e-9));
    }

    /// Haar approximation is idempotent-ish on block-constant signals: a
    /// signal constant on 2^L blocks is reproduced exactly.
    #[test]
    fn haar_reproduces_block_constant_signals(levels in 1usize..5, seed in 0u64..200) {
        let span = 1usize << levels;
        let blocks = 16;
        let signal: Vec<f64> = (0..blocks * span)
            .map(|i| {
                let b = i / span;
                ((b + seed as usize).wrapping_mul(2654435761) % 1000) as f64
            })
            .collect();
        let w = HaarWavelet::new(levels);
        for (a, s) in w.approximation(&signal).iter().zip(&signal) {
            prop_assert!((a - s).abs() < 1e-9);
        }
    }

    /// Holt-Winters residuals on a noise-free seasonal+linear signal decay
    /// after burn-in regardless of (reasonable) smoothing constants.
    #[test]
    fn holt_winters_converges_on_clean_signal(
        alpha in 0.1..0.5f64,
        gamma in 0.05..0.4f64,
    ) {
        let period = 24;
        let s: Vec<f64> = (0..20 * period)
            .map(|i| {
                200.0 + 0.5 * i as f64
                    + 30.0 * (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin()
            })
            .collect();
        let hw = HoltWinters { alpha, beta: 0.05, gamma, period };
        let resid = hw.residuals(&s);
        let tail = &resid[15 * period..];
        let rms = (tail.iter().map(|r| r * r).sum::<f64>() / tail.len() as f64).sqrt();
        prop_assert!(rms < 5.0, "rms {rms} after burn-in (alpha={alpha}, gamma={gamma})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming EWMA state, stepped over a whole series, reproduces
    /// the batch forecasts within 1e-12 (in fact bitwise: the update is
    /// the identical expression).
    #[test]
    fn ewma_stream_matches_batch_forecasts(
        alpha in 0.0..=1.0f64,
        seed in 0u64..300,
        len in 2usize..250,
    ) {
        let s = series(len, seed, 1000.0, 60.0);
        let batch = Ewma::new(alpha).forecasts(&s);
        let mut stream = Ewma::new(alpha).stream();
        for (t, &z) in s.iter().enumerate() {
            let f = stream.step(z);
            prop_assert!(
                (f - batch[t]).abs() <= 1e-12 * batch[t].abs().max(1.0),
                "bin {t}: stream {f} vs batch {}", batch[t]
            );
            prop_assert_eq!(f, batch[t], "bin {}: not bitwise", t);
        }
    }

    /// Restart-mid-series: resuming a fresh EWMA stream from the prefix
    /// continues bitwise where the batch forecasts are.
    #[test]
    fn ewma_stream_restart_mid_series_is_bitwise(
        alpha in 0.05..0.95f64,
        seed in 0u64..300,
        len in 10usize..250,
        cut_ppm in 0usize..1_000_000,
    ) {
        let s = series(len, seed, 800.0, 40.0);
        let cut = 1 + cut_ppm * (len - 2) / 1_000_000; // 1..len-1
        let batch = Ewma::new(alpha).forecasts(&s);
        let mut resumed = EwmaStream::resume(alpha, &s[..cut]);
        for (t, &z) in s.iter().enumerate().skip(cut) {
            prop_assert_eq!(resumed.step(z), batch[t], "bin {} after restart at {}", t, cut);
        }
    }

    /// The streaming Holt-Winters state, initialized from a training
    /// prefix, continues the batch forecasts within 1e-12 (bitwise, in
    /// fact) — including restarts at arbitrary points past the two
    /// initialization seasons.
    #[test]
    fn holt_winters_stream_restart_mid_series_matches_batch(
        alpha in 0.05..0.6f64,
        beta in 0.0..0.2f64,
        gamma in 0.05..0.5f64,
        seed in 0u64..200,
        cut_ppm in 0usize..1_000_000,
    ) {
        let period = 24;
        let len = 10 * period;
        let s = series(len, seed, 1200.0, 80.0);
        let hw = HoltWinters { alpha, beta, gamma, period };
        let batch = hw.forecasts(&s);
        // Restart anywhere in [2*period, len-1].
        let cut = 2 * period + cut_ppm * (len - 1 - 2 * period) / 1_000_000;
        let mut stream = hw.stream(&s[..cut]);
        prop_assert_eq!(stream.observed(), cut);
        for (t, &z) in s.iter().enumerate().skip(cut) {
            let f = stream.step(z);
            prop_assert!(
                (f - batch[t]).abs() <= 1e-12 * batch[t].abs().max(1.0),
                "bin {t}: stream {f} vs batch {}", batch[t]
            );
            prop_assert_eq!(f, batch[t], "bin {}: not bitwise after restart at {}", t, cut);
        }
    }

    /// The streaming Haar filter's emitted blocks (plus flush) equal the
    /// batch residuals bitwise for arbitrary lengths and depths.
    #[test]
    fn haar_stream_matches_batch_residuals(
        levels in 1usize..6,
        seed in 0u64..200,
        len in 1usize..300,
    ) {
        let s = series(len, seed, 500.0, 30.0);
        let w = HaarWavelet::new(levels);
        let batch = w.residuals(&s);
        let mut stream = w.stream();
        let mut streamed = Vec::new();
        for &z in &s {
            if let Some(block) = stream.push(z) {
                streamed.extend(block);
            }
        }
        streamed.extend(stream.flush());
        prop_assert_eq!(streamed, batch);
    }
}
