//! Parity of the pluggable-method layer:
//!
//! * the `MethodBackend::Subspace` route through the generic engines is
//!   **bitwise** the plain subspace engines (the enum adds dispatch,
//!   never arithmetic);
//! * every temporal backend's batched scoring equals its sequential
//!   scoring, across refit boundaries;
//! * every temporal backend's sharded deployment matches its streaming
//!   deployment (bitwise for `K = 1`, decisions + `1e-9` scores beyond,
//!   thresholds bitwise after refits — both sides recalibrate on the
//!   identical reassembled window);
//! * exported method state reproduces the exporter's scoring when
//!   imported into a backend fitted on different data.

use netanom_baselines::methods::{MethodName, TemporalBackend, TemporalKind};
use netanom_core::method::DetectionBackend;
use netanom_core::shard::ShardedEngine;
use netanom_core::stream::{RefitStrategy, StreamConfig, StreamingEngine};
use netanom_core::{DiagnoserConfig, PcaMethod, SeparationPolicy};
use netanom_linalg::{vector, Matrix};
use netanom_topology::{builtin, LinkPartition, Network};

fn training(m: usize, bins: usize, seed: usize) -> Matrix {
    Matrix::from_fn(bins, m, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
        let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    })
}

fn config() -> DiagnoserConfig {
    DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(2),
        pca_method: PcaMethod::Svd,
        confidence: 0.999,
    }
}

/// Arrivals continuing the training pattern, with large anomalies staged
/// on a few flows.
fn staged_stream(net: &Network, t0: usize, bins: usize) -> Matrix {
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let mut stream = Matrix::from_fn(bins, m, |i, l| {
        let t = t0 + i;
        let phase = t as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
        let noise = (((t * m + l).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    });
    let mut k = 0usize;
    let mut t = 15;
    while t < bins {
        let flow = (k * 7 + 2) % rm.num_flows();
        let mut row = stream.row(t).to_vec();
        vector::axpy(4e7, &rm.column(flow), &mut row);
        stream.set_row(t, &row);
        k += 1;
        t += 22;
    }
    stream
}

fn temporal_kinds() -> Vec<TemporalKind> {
    vec![
        TemporalKind::Ewma,
        TemporalKind::HoltWinters { period: 48 },
        TemporalKind::Fourier,
        TemporalKind::Wavelet { levels: 4 },
    ]
}

#[test]
fn method_enum_subspace_is_bitwise_to_plain_engines() {
    let net = builtin::line(3);
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let train = training(m, 250, 0);
    let stream_cfg = StreamConfig::new(250)
        .refit_every(40)
        .strategy(RefitStrategy::Incremental);
    let arrivals = staged_stream(&net, 250, 100);

    // Streaming: plain vs enum-wrapped, batched entry point.
    let mut plain = StreamingEngine::new(&train, rm, config(), stream_cfg).unwrap();
    let backend = MethodName::Subspace
        .fit(&train, rm, config(), RefitStrategy::Incremental)
        .unwrap();
    let mut wrapped = StreamingEngine::with_backend(backend, &train, stream_cfg).unwrap();
    let a = plain.process_batch(&arrivals).unwrap();
    let b = wrapped.process_batch(&arrivals).unwrap();
    assert_eq!(a, b, "streaming enum route must be bitwise");
    assert!(a.iter().any(|r| r.detected), "staged anomalies fire");

    // Sharded: plain vs enum-wrapped.
    let partition = LinkPartition::round_robin(m, 3).unwrap();
    let mut plain = ShardedEngine::new(&train, rm, config(), stream_cfg, &partition).unwrap();
    let backend = MethodName::Subspace
        .fit(&train, rm, config(), RefitStrategy::Incremental)
        .unwrap();
    let mut wrapped = ShardedEngine::with_backend(backend, &train, stream_cfg, &partition).unwrap();
    let a = plain.process_batch(&arrivals).unwrap();
    let b = wrapped.process_batch(&arrivals).unwrap();
    assert_eq!(a, b, "sharded enum route must be bitwise");
}

#[test]
fn temporal_batched_scoring_equals_sequential_across_refits() {
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let train = training(m, 240, 0);
    let arrivals = staged_stream(&net, 240, 110);

    for kind in temporal_kinds() {
        let stream_cfg = StreamConfig::new(240).refit_every(45);
        let mk = || {
            let backend = TemporalBackend::fit(kind, &train, 0.999).unwrap();
            StreamingEngine::with_backend(backend, &train, stream_cfg).unwrap()
        };
        let mut seq = mk();
        let mut bat = mk();
        let seq_reports: Vec<_> = (0..arrivals.rows())
            .map(|t| seq.process(arrivals.row(t)).unwrap())
            .collect();
        let bat_reports = bat.process_batch(&arrivals).unwrap();
        assert_eq!(
            seq_reports, bat_reports,
            "{kind:?}: batched scoring must equal sequential bitwise"
        );
        assert_eq!(seq.refits(), bat.refits());
        assert!(seq.refits() >= 2, "{kind:?}: stream must cross refits");
        assert!(
            seq_reports.iter().any(|r| r.detected),
            "{kind:?}: staged 40 MB anomalies must fire"
        );
    }
}

#[test]
fn temporal_sharded_k1_is_bitwise_streaming() {
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let train = training(m, 240, 0);
    let arrivals = staged_stream(&net, 240, 100);
    let partition = LinkPartition::round_robin(m, 1).unwrap();

    for kind in temporal_kinds() {
        let stream_cfg = StreamConfig::new(240).refit_every(40);
        let backend = TemporalBackend::fit(kind, &train, 0.999).unwrap();
        let mut streaming =
            StreamingEngine::with_backend(backend.clone(), &train, stream_cfg).unwrap();
        let mut sharded =
            ShardedEngine::with_backend(backend, &train, stream_cfg, &partition).unwrap();
        let a = streaming.process_batch(&arrivals).unwrap();
        let b = sharded.process_batch(&arrivals).unwrap();
        // One shard owning every link in order: identical summation
        // order, so even the scores are bitwise.
        assert_eq!(a, b, "{kind:?}: K=1 sharding must be bitwise");
    }
}

#[test]
fn temporal_sharded_matches_streaming_decisions() {
    let net = builtin::sprint_europe();
    let m = net.routing_matrix.num_links();
    let train = training(m, 200, 0);
    let arrivals = staged_stream(&net, 200, 90);

    for kind in [TemporalKind::Ewma, TemporalKind::Wavelet { levels: 4 }] {
        for k in [2usize, 4] {
            let partition = LinkPartition::round_robin(m, k).unwrap();
            let stream_cfg = StreamConfig::new(200).refit_every(35);
            let backend = TemporalBackend::fit(kind, &train, 0.999).unwrap();
            let mut streaming =
                StreamingEngine::with_backend(backend.clone(), &train, stream_cfg).unwrap();
            let mut sharded =
                ShardedEngine::with_backend(backend, &train, stream_cfg, &partition).unwrap();
            let a = streaming.process_batch(&arrivals).unwrap();
            let b = sharded.process_batch(&arrivals).unwrap();
            assert_eq!(a.len(), b.len());
            let mut fired = 0usize;
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.time, y.time);
                assert_eq!(
                    x.detected, y.detected,
                    "{kind:?} k={k}: decision diverged at bin {}",
                    x.time
                );
                assert_eq!(
                    x.threshold, y.threshold,
                    "{kind:?} k={k}: thresholds must be bitwise (same window calibration)"
                );
                let rel = (x.spe - y.spe).abs() / x.spe.max(1.0);
                assert!(rel <= 1e-9, "{kind:?} k={k}: score rel {rel:.2e}");
                fired += usize::from(x.detected);
            }
            assert!(fired >= 2, "{kind:?} k={k}: staged anomalies must fire");
            assert_eq!(streaming.refits(), sharded.refits());
            assert!(streaming.refits() >= 2);
        }
    }
}

#[test]
fn every_method_state_roundtrips_scoring() {
    let net = builtin::line(3);
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let train = training(m, 240, 0);
    let other_train = training(m, 240, 7777);
    let probe = staged_stream(&net, 240, 25);

    for name in MethodName::ALL {
        let exporter = name
            .fit(&train, rm, config(), RefitStrategy::FullSvd)
            .unwrap();
        let state = exporter.export_state();
        assert_eq!(state.method, name.as_str());
        let bytes = state.to_bytes();
        let decoded = netanom_core::MethodState::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, state);

        let mut importer = name
            .fit(&other_train, rm, config(), RefitStrategy::FullSvd)
            .unwrap();
        importer.import_state(&decoded).unwrap();
        assert_eq!(
            importer.threshold(),
            exporter.threshold(),
            "{name}: threshold must survive the roundtrip bitwise"
        );
        for t in 0..probe.rows() {
            let a = exporter.score_vector(probe.row(t)).unwrap();
            let b = importer.score_vector(probe.row(t)).unwrap();
            assert_eq!(a, b, "{name}: scoring diverged after import at bin {t}");
        }

        // Cross-method state is rejected.
        let mut wrong = decoded.clone();
        wrong.method = if name == MethodName::Ewma {
            "fourier".to_string()
        } else {
            "ewma".to_string()
        };
        assert!(importer.import_state(&wrong).is_err(), "{name}");
    }
}

#[test]
fn wavelet_state_with_different_depth_is_rejected() {
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let train = training(m, 200, 0);
    let exporter =
        TemporalBackend::fit(TemporalKind::Wavelet { levels: 4 }, &train, 0.999).unwrap();
    let state = exporter.export_state();
    let mut importer =
        TemporalBackend::fit(TemporalKind::Wavelet { levels: 5 }, &train, 0.999).unwrap();
    // Same method name, different decomposition depth: importing would
    // silently complete blocks on the wrong cadence, so it must error.
    assert!(
        importer.import_state(&state).is_err(),
        "depth-4 state must not import into a depth-5 backend"
    );
}

#[test]
fn unknown_method_parse_lists_the_valid_set() {
    let err = MethodName::parse("kalman").unwrap_err();
    for known in netanom_baselines::methods::METHOD_NAMES {
        assert!(err.contains(known), "error must list {known}: {err}");
    }
    assert_eq!(MethodName::parse("wavelet"), Ok(MethodName::Wavelet));
    assert_eq!(MethodName::parse("subspace"), Ok(MethodName::Subspace));
}

#[test]
fn multiway_engine_runs_any_backend() {
    // The multiway consensus engine is generic too: bytes + packets in
    // lockstep under the EWMA backend.
    use netanom_core::MultiwayEngine;
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let bytes_train = training(m, 200, 0);
    let pkts_train = bytes_train.scaled(1.0 / 1500.0);
    let mk = |train: &Matrix| {
        let backend = TemporalBackend::fit(TemporalKind::Ewma, train, 0.999).unwrap();
        StreamingEngine::with_backend(backend, train, StreamConfig::new(200)).unwrap()
    };
    let mut multi = MultiwayEngine::new(vec![
        ("bytes".to_string(), mk(&bytes_train)),
        ("packets".to_string(), mk(&pkts_train)),
    ])
    .unwrap();
    let fresh = staged_stream(&net, 200, 40);
    let mut consensus = 0usize;
    for t in 0..fresh.rows() {
        let row = fresh.row(t).to_vec();
        let pkts = vector::scaled(&row, 1.0 / 1500.0);
        let rep = multi.process(&[&row, &pkts]).unwrap();
        consensus += usize::from(rep.consensus(2));
    }
    assert!(consensus >= 1, "staged anomalies reach 2-way consensus");
}
