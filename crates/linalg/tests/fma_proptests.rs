//! Property tests pinning the FMA kernel tier explicitly, whatever
//! backend the host dispatches.
//!
//! `kernel_proptests.rs` pins the *dispatched* products against a
//! backend-matched naive reference; this file requests
//! [`KernelBackend::Fma`] by name through the `*_with` entry points and
//! asserts the FMA tier's own contract:
//!
//! * **Bitwise vs the fused naive loops.** Every orientation
//!   (`matmul`, `matmul_nt`, `matmul_tn`, `gram`) equals the textbook
//!   `i j k` triple loop with `f64::mul_add` per step — single
//!   accumulator per element, strictly ascending `k`, one fused
//!   rounding per term. Both routing regimes are covered: packed
//!   shapes that exercise the 6 × 8 AVX2 micro-kernel (including
//!   `k > KC` so the tile accumulators are spilled and reloaded
//!   across KC panels) and ragged/degenerate shapes that fall through
//!   to the fused reference kernel.
//! * **≤ 1e-12 relative vs the portable tier.** The documented
//!   cross-backend floor: fusing only removes intermediate roundings.
//! * **No zero-skip.** A `0 × NaN` pairing poisons the FMA product
//!   exactly as it does the naive fused loop.
//!
//! Every test gates on `KernelBackend::Fma.is_supported()` and passes
//! vacuously on hosts without AVX2+FMA — CI's x86-64 runners exercise
//! the real assertions. The determinism job reruns this file under
//! `RAYON_NUM_THREADS` 1 and 8: the packed shapes here sit past the
//! parallel fan-out crossover, so bitwise-vs-serial-naive also proves
//! thread-count invariance of the FMA path.

use netanom_linalg::kernel::{
    gram_with, matmul_nt_with, matmul_tn_with, matmul_with, KernelBackend,
};
use netanom_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random value in `[-1, 1)`.
fn hash_unit(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn hashed(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| hash_unit(seed + i * cols + j))
}

/// Textbook `i j k` product with one fused rounding per term: the FMA
/// tier's reference semantics, written independently of the crate.
fn naive_matmul_fused(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0_f64;
            for k in 0..a.cols() {
                acc = a[(i, k)].mul_add(b[(k, j)], acc);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Largest relative elementwise difference between two same-shape
/// matrices, with a unit floor on the denominator.
fn max_rel_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0_f64, f64::max)
}

fn fma_available() -> bool {
    KernelBackend::Fma.is_supported()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed-path shapes match the fused naive loops bitwise on every
    /// orientation, and sit within 1e-12 relative of the portable tier.
    #[test]
    fn fma_packed_family_matches_fused_naive(
        m in 33usize..70,
        k in 33usize..70,
        n in 33usize..70,
        seed in 0usize..1000,
    ) {
        if fma_available() {
            let a = hashed(m, k, seed);
            let b = hashed(k, n, seed + 1_000_000);
            let nn = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
            prop_assert_eq!(bits(&nn), bits(&naive_matmul_fused(&a, &b)));
            let portable = matmul_with(KernelBackend::Portable, &a, &b).unwrap();
            prop_assert!(max_rel_diff(&nn, &portable) <= 1e-12);

            let bt = hashed(n, k, seed + 2_000_000);
            let nt = matmul_nt_with(KernelBackend::Fma, &a, &bt).unwrap();
            prop_assert_eq!(bits(&nt), bits(&naive_matmul_fused(&a, &bt.transpose())));

            let at = hashed(k, m, seed + 3_000_000);
            let tn = matmul_tn_with(KernelBackend::Fma, &at, &b).unwrap();
            prop_assert_eq!(bits(&tn), bits(&naive_matmul_fused(&at.transpose(), &b)));
        }
    }

    /// FMA gram (upper triangle + mirror) matches fused naive `AᵀA`
    /// bitwise and stays within the cross-backend floor of portable.
    #[test]
    fn fma_gram_matches_fused_naive(
        rows in 40usize..90,
        cols in 33usize..60,
        seed in 0usize..1000,
    ) {
        if fma_available() {
            let a = hashed(rows, cols, seed);
            let g = gram_with(KernelBackend::Fma, &a);
            prop_assert_eq!(bits(&g), bits(&naive_matmul_fused(&a.transpose(), &a)));
            let portable = gram_with(KernelBackend::Portable, &a);
            prop_assert!(max_rel_diff(&g, &portable) <= 1e-12);
        }
    }

    /// Ragged and degenerate shapes — below one 6 × 8 tile, `1 × n`,
    /// `n × 1`, empty dimensions — route through the fused reference
    /// kernel and still match the fused naive loops bitwise.
    #[test]
    fn fma_ragged_shapes_match_fused_naive(
        m in 0usize..12,
        k in 0usize..12,
        n in 0usize..12,
        seed in 0usize..1000,
    ) {
        if fma_available() {
            let a = hashed(m, k, seed);
            let b = hashed(k, n, seed + 1_000_000);
            let nn = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
            prop_assert_eq!(bits(&nn), bits(&naive_matmul_fused(&a, &b)));

            let bt = hashed(n, k, seed + 2_000_000);
            let nt = matmul_nt_with(KernelBackend::Fma, &a, &bt).unwrap();
            prop_assert_eq!(bits(&nt), bits(&naive_matmul_fused(&a, &bt.transpose())));

            let g = gram_with(KernelBackend::Fma, &a);
            prop_assert_eq!(bits(&g), bits(&naive_matmul_fused(&a.transpose(), &a)));
        }
    }
}

/// `k` far beyond `KC = 256` forces the KC loop to spill the 6 × 8 tile
/// accumulators to C and extend them on the next panel; the chain must
/// still be bitwise the single ascending-`k` fused loop. The odd shape
/// also leaves partial tiles on both edges.
#[test]
fn fma_kc_crossing_accumulation_is_bitwise() {
    if !fma_available() {
        return;
    }
    let a = hashed(37, 531, 17);
    let b = hashed(531, 29, 23);
    let got = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
    assert_eq!(bits(&got), bits(&naive_matmul_fused(&a, &b)));
}

/// The packed FMA path must be bit-identical regardless of the thread
/// count the row fan-out picks. The serial naive loop is
/// env-independent; the CI determinism job reruns this test at
/// `RAYON_NUM_THREADS` 1 and 8, so any thread-count dependence fails
/// at least one leg. The shape is far past the fan-out crossover.
#[test]
fn fma_packed_products_are_thread_count_invariant() {
    if !fma_available() {
        return;
    }
    let a = hashed(257, 131, 7);
    let b = hashed(131, 197, 99);
    let got = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
    assert_eq!(bits(&got), bits(&naive_matmul_fused(&a, &b)));
    let g = gram_with(KernelBackend::Fma, &a);
    assert_eq!(bits(&g), bits(&naive_matmul_fused(&a.transpose(), &a)));
}

/// Regression mirroring the portable suite: a `0 × NaN` pairing must
/// poison the FMA product identically to the fused naive loop — the
/// micro-kernel never skips "zero" terms.
#[test]
fn fma_zero_times_nan_propagates_identically() {
    if !fma_available() {
        return;
    }
    let m = 48;
    let mut a = hashed(m, m, 11);
    let mut b = hashed(m, m, 13);
    for i in 0..m {
        a[(i, 3)] = 0.0;
    }
    for j in 0..m {
        b[(3, j)] = f64::NAN;
    }
    let packed = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
    let naive = naive_matmul_fused(&a, &b);
    assert!(packed.as_slice().iter().all(|v| v.is_nan()));
    assert_eq!(bits(&packed), bits(&naive));

    let a_small = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
    let b_small = Matrix::from_rows(&[vec![f64::NAN, 4.0], vec![5.0, 6.0]]);
    let small = matmul_with(KernelBackend::Fma, &a_small, &b_small).unwrap();
    assert!(small[(0, 0)].is_nan(), "0 × NaN must poison the entry");
    assert_eq!(bits(&small), bits(&naive_matmul_fused(&a_small, &b_small)));
}
