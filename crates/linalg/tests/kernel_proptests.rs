//! Property tests pinning the packed GEMM kernel layer against an
//! independent naive triple-loop reference.
//!
//! The kernel layer's contract (see `netanom_linalg::kernel`) is that
//! every product — packed or not, parallel or not — accumulates each
//! output element in strictly ascending shared-dimension order into a
//! single accumulator, with the per-step rounding fixed by the active
//! backend: separate multiply and add on `Portable`, one fused
//! rounding per term on the `Fma` and `Avx512` hardware tiers. That
//! makes the dispatched products **bitwise** equal to the textbook
//! `i j k` loops written out below with the matching per-step op,
//! which is what these tests assert (strictly stronger than the
//! `≤ 1e-12` relative tolerance the crate documents as the cross-tier
//! floor). The naive reference below follows
//! `kernel::active_backend()`, so this file pins whichever tier the
//! host (or `NETANOM_KERNEL`) selects; the CI matrix runs it under
//! every supported value, and `kernel_tier_proptests.rs` pins each
//! supported tier explicitly. The fused SPE kernel is the exception: it is pinned to
//! the portable tier by design (detection scores must not move across
//! hosts), so its reference is always mul-then-add. Shapes cover both
//! routing regimes: large operands that take the packed path —
//! deliberately not multiples of the micro-tile — and
//! ragged/degenerate ones (`1 × n`, `n × 1`, empty) that fall through
//! to the reference kernels.
//!
//! The CI determinism job reruns this file under `RAYON_NUM_THREADS`
//! 1 and 8; `packed_products_are_thread_count_invariant` additionally
//! forces explicit 1- and 8-thread pools so the invariance holds even
//! in a single CI environment.

use netanom_linalg::kernel::active_backend;
use netanom_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random value in `[-1, 1)`.
fn hash_unit(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn hashed(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| hash_unit(seed + i * cols + j))
}

/// Textbook `i j k` product: single accumulator per element, ascending
/// `k`, per-step rounding matching the active backend's contract
/// (mul-then-add on `Portable`, `f64::mul_add` on the hardware
/// tiers). Written independently of the crate's kernels on purpose.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let fused = active_backend().is_fused();
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0_f64;
            for k in 0..a.cols() {
                if fused {
                    acc = a[(i, k)].mul_add(b[(k, j)], acc);
                } else {
                    acc += a[(i, k)] * b[(k, j)];
                }
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Always-portable naive product (mul-then-add whatever the backend):
/// the reference for the scoring kernels (`project_rows_split`, the
/// fused SPE), which are pinned to `KernelBackend::Portable` by design.
fn naive_matmul_portable(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0_f64;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed-path shapes (≥ one micro-tile in every dimension, past the
    /// flop crossover, never tile-multiples) match the naive loops
    /// bitwise, for all three orientations.
    #[test]
    fn packed_matmul_family_matches_naive(
        m in 33usize..70,
        k in 33usize..70,
        n in 33usize..70,
        seed in 0usize..1000,
    ) {
        let a = hashed(m, k, seed);
        let b = hashed(k, n, seed + 1_000_000);
        let nn = a.matmul(&b).unwrap();
        prop_assert_eq!(bits(&nn), bits(&naive_matmul(&a, &b)));

        let bt = hashed(n, k, seed + 2_000_000);
        let nt = a.matmul_nt(&bt).unwrap();
        prop_assert_eq!(bits(&nt), bits(&naive_matmul(&a, &bt.transpose())));

        let at = hashed(k, m, seed + 3_000_000);
        let tn = at.matmul_tn(&b).unwrap();
        prop_assert_eq!(bits(&tn), bits(&naive_matmul(&at.transpose(), &b)));
    }

    /// Packed gram (upper triangle + mirror) matches naive `AᵀA`.
    /// Bitwise on the upper triangle; the mirrored lower triangle agrees
    /// because multiplication commutes term by term.
    #[test]
    fn packed_gram_matches_naive(
        rows in 40usize..90,
        cols in 33usize..60,
        seed in 0usize..1000,
    ) {
        let a = hashed(rows, cols, seed);
        let g = a.gram();
        let naive = naive_matmul(&a.transpose(), &a);
        prop_assert_eq!(bits(&g), bits(&naive));
    }

    /// Ragged and degenerate shapes — below one tile, `1 × n`, `n × 1`,
    /// empty dimensions — route through the reference kernels and still
    /// match the naive loops bitwise.
    #[test]
    fn ragged_shapes_match_naive(
        m in 0usize..12,
        k in 0usize..12,
        n in 0usize..12,
        seed in 0usize..1000,
    ) {
        let a = hashed(m, k, seed);
        let b = hashed(k, n, seed + 1_000_000);
        let nn = a.matmul(&b).unwrap();
        prop_assert_eq!(bits(&nn), bits(&naive_matmul(&a, &b)));

        let bt = hashed(n, k, seed + 2_000_000);
        let nt = a.matmul_nt(&bt).unwrap();
        prop_assert_eq!(bits(&nt), bits(&naive_matmul(&a, &bt.transpose())));

        let g = a.gram();
        prop_assert_eq!(bits(&g), bits(&naive_matmul(&a.transpose(), &a)));
    }

    /// The batched projection splits rows exactly as the naive
    /// `modeled = A·P·Pᵀ`, `residual = A − modeled` products do — with
    /// *portable* rounding on every backend, since the projection is a
    /// scoring kernel pinned to `KernelBackend::Portable`.
    #[test]
    fn project_rows_split_matches_naive(
        rows in 20usize..70,
        cols in 16usize..50,
        r in 0usize..10,
        seed in 0usize..1000,
    ) {
        let a = hashed(rows, cols, seed);
        let basis = hashed(cols, r, seed + 1_000_000);
        let (modeled, residual) = a.project_rows_split(&basis).unwrap();
        let coeffs = naive_matmul_portable(&a, &basis);
        let want_modeled = naive_matmul_portable(&coeffs, &basis.transpose());
        prop_assert_eq!(bits(&modeled), bits(&want_modeled));
        prop_assert_eq!(bits(&residual), bits(&a.sub(&want_modeled).unwrap()));
    }

    /// The fused SPE kernel is bitwise the exact per-vector route:
    /// center, project coefficients, reconstruct, subtract, norm — all
    /// in naive ascending order with *portable* (mul-then-add)
    /// rounding, whatever backend is dispatched: the SPE path is
    /// pinned to `KernelBackend::Portable` so detection scores are
    /// identical on every host.
    #[test]
    fn centered_residual_norms_match_naive(
        rows in 8usize..80,
        cols in 8usize..50,
        r in 0usize..10,
        seed in 0usize..1000,
    ) {
        let a = hashed(rows, cols, seed);
        let basis = hashed(cols, r, seed + 1_000_000);
        let mean: Vec<f64> = (0..cols).map(|j| hash_unit(seed + 2_000_000 + j)).collect();
        let spes = a.centered_residual_norms_sq(&mean, &basis).unwrap();
        for (i, &got) in spes.iter().enumerate() {
            let z: Vec<f64> = a.row(i).iter().zip(&mean).map(|(&y, &mu)| y - mu).collect();
            let mut want = 0.0_f64;
            for l in 0..cols {
                let mut mm = 0.0_f64;
                for kk in 0..r {
                    mm += basis[(l, kk)] * naive_coeff(&z, &basis, kk);
                }
                let rv = z[l] - mm;
                want += rv * rv;
            }
            prop_assert_eq!(got.to_bits(), want.to_bits(), "row {}", i);
        }
    }
}

/// Coefficient `k` of `Pᵀz` in naive ascending-row order.
fn naive_coeff(z: &[f64], basis: &Matrix, k: usize) -> f64 {
    let mut c = 0.0_f64;
    for (j, &zv) in z.iter().enumerate() {
        c += zv * basis[(j, k)];
    }
    c
}

/// The packed path must produce bit-identical output regardless of the
/// thread count the row fan-out picks. The workspace's `rayon` shim
/// reads `RAYON_NUM_THREADS` at call time and the CI determinism job
/// reruns this test at 1 and 8 threads; pinning the parallel result
/// against the env-independent serial naive loops makes any
/// thread-count dependence a failure in at least one of those runs.
/// The shape is far past the fan-out crossover, so multi-thread runs
/// genuinely split the output.
#[test]
fn packed_products_are_thread_count_invariant() {
    let a = hashed(257, 131, 7);
    let b = hashed(131, 197, 99);
    assert_eq!(bits(&a.matmul(&b).unwrap()), bits(&naive_matmul(&a, &b)));
    assert_eq!(bits(&a.gram()), bits(&naive_matmul(&a.transpose(), &a)));
}

/// Regression for the removed `aik == 0.0` skip: a `0 × NaN` pairing
/// must poison the product identically on the packed and naive paths —
/// the old kernels silently dropped the NaN.
#[test]
fn zero_times_nan_propagates_identically() {
    // Large enough that matmul takes the packed path.
    let m = 48;
    let mut a = hashed(m, m, 11);
    let mut b = hashed(m, m, 13);
    for i in 0..m {
        a[(i, 3)] = 0.0; // zero column of A …
    }
    for j in 0..m {
        b[(3, j)] = f64::NAN; // … against a NaN row of B.
    }
    let packed = a.matmul(&b).unwrap();
    let naive = naive_matmul(&a, &b);
    assert!(packed.as_slice().iter().all(|v| v.is_nan()));
    assert_eq!(bits(&packed), bits(&naive));

    // Below the packing crossover, the reference kernel must do the same.
    let a_small = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
    let b_small = Matrix::from_rows(&[vec![f64::NAN, 4.0], vec![5.0, 6.0]]);
    let small = a_small.matmul(&b_small).unwrap();
    assert!(small[(0, 0)].is_nan(), "0 × NaN must poison the entry");
    assert_eq!(bits(&small), bits(&naive_matmul(&a_small, &b_small)));
}
