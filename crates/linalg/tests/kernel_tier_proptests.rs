//! Property tests pinning **every supported kernel tier** explicitly,
//! whatever backend the host dispatches.
//!
//! `kernel_proptests.rs` pins the *dispatched* products against a
//! backend-matched naive reference; this file (grown from the old
//! `fma_proptests.rs` when the AVX-512 tier landed) enumerates
//! `supported_backends()` and requests each tier by name through the
//! `*_with` entry points, asserting per tier:
//!
//! * **Bitwise vs its own naive loops.** Every orientation (`matmul`,
//!   `matmul_nt`, `matmul_tn`, `gram`) equals the textbook `i j k`
//!   triple loop with the tier's per-step rounding — mul-then-add for
//!   `Portable`, one fused [`f64::mul_add`] per term for the `Fma` and
//!   `Avx512` hardware tiers — single accumulator per element,
//!   strictly ascending `k`. Both routing regimes are covered: packed
//!   shapes that exercise the real micro-kernels (including `k > KC`
//!   so the tile accumulators are spilled and reloaded across KC
//!   panels) and ragged/degenerate shapes that fall through to the
//!   tier's reference kernel.
//! * **≤ 1e-12 relative vs the portable tier.** The documented
//!   cross-tier floor: fusing only removes intermediate roundings.
//! * **Hardware tiers agree bitwise.** `Fma` and `Avx512` share the
//!   fused ascending-`k` contract, so where both are supported their
//!   products must be byte-identical — lane width is invisible to a
//!   per-lane fused chain.
//! * **No zero-skip.** A `0 × NaN` pairing poisons every tier's
//!   product exactly as it does the matching naive loop.
//!
//! Hardware tiers absent from the host are skipped by construction
//! (`supported_backends()` only lists what can run) — on a bare
//! x86-64 the file still pins `Portable`. The CI determinism job
//! reruns this file under `RAYON_NUM_THREADS` 1 and 8: the packed
//! shapes here sit past the parallel fan-out crossover (and the large
//! deterministic shapes past the parallel *packing* crossover), so
//! bitwise-vs-serial-naive also proves thread-count invariance of
//! every tier, micro-kernels and panel packing both.

use netanom_linalg::kernel::{
    gram_with, matmul_nt_with, matmul_tn_with, matmul_with, supported_backends, KernelBackend,
};
use netanom_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random value in `[-1, 1)`.
fn hash_unit(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn hashed(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| hash_unit(seed + i * cols + j))
}

/// Textbook `i j k` product with the given tier's per-step rounding:
/// one [`f64::mul_add`] per term for fused tiers, separate multiply
/// and add for `Portable`. Written independently of the crate's
/// kernels on purpose.
fn naive_matmul_for(tier: KernelBackend, a: &Matrix, b: &Matrix) -> Matrix {
    let fused = tier.is_fused();
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0_f64;
            for k in 0..a.cols() {
                if fused {
                    acc = a[(i, k)].mul_add(b[(k, j)], acc);
                } else {
                    acc += a[(i, k)] * b[(k, j)];
                }
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Largest relative elementwise difference between two same-shape
/// matrices, with a unit floor on the denominator.
fn max_rel_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0_f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packed-path shapes match each supported tier's naive loops
    /// bitwise on every orientation, and every hardware tier sits
    /// within 1e-12 relative of the portable tier.
    #[test]
    fn every_tier_packed_family_matches_its_naive(
        m in 33usize..70,
        k in 33usize..70,
        n in 33usize..70,
        seed in 0usize..1000,
    ) {
        let a = hashed(m, k, seed);
        let b = hashed(k, n, seed + 1_000_000);
        let bt = hashed(n, k, seed + 2_000_000);
        let at = hashed(k, m, seed + 3_000_000);
        let portable = matmul_with(KernelBackend::Portable, &a, &b).unwrap();
        for tier in supported_backends() {
            let nn = matmul_with(tier, &a, &b).unwrap();
            prop_assert_eq!(bits(&nn), bits(&naive_matmul_for(tier, &a, &b)), "{} matmul", tier.name());
            prop_assert!(max_rel_diff(&nn, &portable) <= 1e-12, "{} vs portable", tier.name());

            let nt = matmul_nt_with(tier, &a, &bt).unwrap();
            prop_assert_eq!(bits(&nt), bits(&naive_matmul_for(tier, &a, &bt.transpose())), "{} matmul_nt", tier.name());

            let tn = matmul_tn_with(tier, &at, &b).unwrap();
            prop_assert_eq!(bits(&tn), bits(&naive_matmul_for(tier, &at.transpose(), &b)), "{} matmul_tn", tier.name());
        }
    }

    /// Each tier's gram (upper triangle + mirror) matches its naive
    /// `AᵀA` bitwise and stays within the cross-tier floor of portable.
    #[test]
    fn every_tier_gram_matches_its_naive(
        rows in 40usize..90,
        cols in 33usize..60,
        seed in 0usize..1000,
    ) {
        let a = hashed(rows, cols, seed);
        let portable = gram_with(KernelBackend::Portable, &a);
        for tier in supported_backends() {
            let g = gram_with(tier, &a);
            prop_assert_eq!(bits(&g), bits(&naive_matmul_for(tier, &a.transpose(), &a)), "{} gram", tier.name());
            prop_assert!(max_rel_diff(&g, &portable) <= 1e-12, "{} gram vs portable", tier.name());
        }
    }

    /// Ragged and degenerate shapes — below one micro-tile, `1 × n`,
    /// `n × 1`, empty dimensions — route through each tier's reference
    /// kernel and still match its naive loops bitwise.
    #[test]
    fn every_tier_ragged_shapes_match_its_naive(
        m in 0usize..12,
        k in 0usize..12,
        n in 0usize..12,
        seed in 0usize..1000,
    ) {
        let a = hashed(m, k, seed);
        let b = hashed(k, n, seed + 1_000_000);
        let bt = hashed(n, k, seed + 2_000_000);
        for tier in supported_backends() {
            let nn = matmul_with(tier, &a, &b).unwrap();
            prop_assert_eq!(bits(&nn), bits(&naive_matmul_for(tier, &a, &b)), "{} matmul", tier.name());

            let nt = matmul_nt_with(tier, &a, &bt).unwrap();
            prop_assert_eq!(bits(&nt), bits(&naive_matmul_for(tier, &a, &bt.transpose())), "{} matmul_nt", tier.name());

            let g = gram_with(tier, &a);
            prop_assert_eq!(bits(&g), bits(&naive_matmul_for(tier, &a.transpose(), &a)), "{} gram", tier.name());
        }
    }
}

/// `k` far beyond `KC = 256` forces the KC loop to spill each tier's
/// tile accumulators to C and extend them on the next panel; the chain
/// must still be bitwise the single ascending-`k` naive loop. The odd
/// shape also leaves partial tiles on both edges of every tile
/// geometry (6×8, 8×8, portable).
#[test]
fn every_tier_kc_crossing_accumulation_is_bitwise() {
    let a = hashed(37, 531, 17);
    let b = hashed(531, 29, 23);
    for tier in supported_backends() {
        let got = matmul_with(tier, &a, &b).unwrap();
        assert_eq!(
            bits(&got),
            bits(&naive_matmul_for(tier, &a, &b)),
            "{}",
            tier.name()
        );
    }
}

/// Each tier's packed path must be bit-identical regardless of the
/// thread count the row fan-out *and the panel-packing fan-out* pick.
/// The serial naive loop is env-independent; the CI determinism job
/// reruns this test at `RAYON_NUM_THREADS` 1 and 8, so any
/// thread-count dependence fails at least one leg. The larger shape
/// sits past the parallel-packing crossover (its packed `B` block is
/// ≥ 2 × 64 Ki elements), so the placement-only packing fan-out is
/// exercised, not just the row fan-out.
#[test]
fn every_tier_packed_products_are_thread_count_invariant() {
    let a = hashed(257, 300, 7);
    let b = hashed(300, 600, 99);
    for tier in supported_backends() {
        let got = matmul_with(tier, &a, &b).unwrap();
        assert_eq!(
            bits(&got),
            bits(&naive_matmul_for(tier, &a, &b)),
            "{} matmul",
            tier.name()
        );
        let g = gram_with(tier, &a);
        assert_eq!(
            bits(&g),
            bits(&naive_matmul_for(tier, &a.transpose(), &a)),
            "{} gram",
            tier.name()
        );
    }
}

/// The two hardware tiers share one numeric contract (fused
/// ascending-`k`), so on a host supporting both their products must be
/// **byte-identical** — the cross-tier guarantee that lets a mixed
/// AVX-512/AVX2 fleet reproduce each other's models exactly.
#[test]
fn hardware_tiers_agree_bitwise_where_both_run() {
    if !(KernelBackend::Fma.is_supported() && KernelBackend::Avx512.is_supported()) {
        return;
    }
    let a = hashed(83, 310, 31);
    let b = hashed(310, 61, 37);
    let fma = matmul_with(KernelBackend::Fma, &a, &b).unwrap();
    let avx512 = matmul_with(KernelBackend::Avx512, &a, &b).unwrap();
    assert_eq!(bits(&fma), bits(&avx512));
    assert_eq!(
        bits(&gram_with(KernelBackend::Fma, &a)),
        bits(&gram_with(KernelBackend::Avx512, &a))
    );
    let bt = hashed(61, 310, 41);
    assert_eq!(
        bits(&matmul_nt_with(KernelBackend::Fma, &a, &bt).unwrap()),
        bits(&matmul_nt_with(KernelBackend::Avx512, &a, &bt).unwrap())
    );
    let at = hashed(310, 83, 43);
    assert_eq!(
        bits(&matmul_tn_with(KernelBackend::Fma, &at, &b).unwrap()),
        bits(&matmul_tn_with(KernelBackend::Avx512, &at, &b).unwrap())
    );
}

/// Regression shared by all tiers: a `0 × NaN` pairing must poison the
/// product identically to the tier's naive loop — no micro-kernel ever
/// skips "zero" terms.
#[test]
fn every_tier_zero_times_nan_propagates_identically() {
    let m = 48;
    let mut a = hashed(m, m, 11);
    let mut b = hashed(m, m, 13);
    for i in 0..m {
        a[(i, 3)] = 0.0;
    }
    for j in 0..m {
        b[(3, j)] = f64::NAN;
    }
    let a_small = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
    let b_small = Matrix::from_rows(&[vec![f64::NAN, 4.0], vec![5.0, 6.0]]);
    for tier in supported_backends() {
        let packed = matmul_with(tier, &a, &b).unwrap();
        let naive = naive_matmul_for(tier, &a, &b);
        assert!(
            packed.as_slice().iter().all(|v| v.is_nan()),
            "{}",
            tier.name()
        );
        assert_eq!(bits(&packed), bits(&naive), "{}", tier.name());

        let small = matmul_with(tier, &a_small, &b_small).unwrap();
        assert!(
            small[(0, 0)].is_nan(),
            "{}: 0 × NaN must poison the entry",
            tier.name()
        );
        assert_eq!(
            bits(&small),
            bits(&naive_matmul_for(tier, &a_small, &b_small)),
            "{}",
            tier.name()
        );
    }
}
