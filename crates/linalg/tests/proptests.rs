//! Property-based tests for the linear-algebra substrate.
//!
//! Matrices are generated with bounded entries so that tolerance choices
//! scale predictably; shapes are kept in the workspace's realistic range.

use netanom_linalg::decomposition::{
    power_traces, Cholesky, Qr, Svd, SymmetricEigen, TruncatedEigen,
};
use netanom_linalg::{stats, vector, Matrix};
use proptest::prelude::*;

/// Strategy: matrix with given shape and entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: arbitrary small shape (tall or square).
fn tall_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..12, 1usize..12).prop_map(|(a, b)| {
        let rows = a.max(b);
        let cols = a.min(b);
        (rows, cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in tall_shape().prop_flat_map(|(r, c)| matrix(r, c))) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_associates_with_identity(m in tall_shape().prop_flat_map(|(r, c)| matrix(r, c))) {
        let left = Matrix::identity(m.rows()).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(m.cols())).unwrap();
        prop_assert!(left.approx_eq(&m, 1e-12));
        prop_assert!(right.approx_eq(&m, 1e-12));
    }

    #[test]
    fn gram_equals_explicit_transpose_product(
        m in tall_shape().prop_flat_map(|(r, c)| matrix(r, c))
    ) {
        let explicit = m.transpose().matmul(&m).unwrap();
        prop_assert!(m.gram().approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn mean_centering_zeroes_column_means(
        m in (2usize..20, 1usize..8).prop_flat_map(|(r, c)| matrix(r, c))
    ) {
        let (centered, _) = m.mean_centered_columns();
        for mean in centered.column_means() {
            prop_assert!(mean.abs() < 1e-10);
        }
    }

    #[test]
    fn svd_reconstructs(shape in tall_shape(), seed in 0u64..1000) {
        let (r, c) = shape;
        let m = Matrix::from_fn(r, c, |i, j| {
            let h = (i * 31 + j * 17 + seed as usize).wrapping_mul(2654435761) % 2048;
            h as f64 / 1024.0 - 1.0
        });
        let svd = Svd::new(&m).unwrap();
        let tol = 1e-9 * m.frobenius_norm().max(1.0);
        prop_assert!(svd.reconstruct().approx_eq(&m, tol));
    }

    #[test]
    fn svd_values_match_gram_eigenvalues(shape in tall_shape(), seed in 0u64..1000) {
        let (r, c) = shape;
        let m = Matrix::from_fn(r, c, |i, j| {
            let h = (i * 13 + j * 7 + seed as usize).wrapping_mul(0x9E3779B9) % 4096;
            h as f64 / 2048.0 - 1.0
        });
        let svd = Svd::new(&m).unwrap();
        let eig = SymmetricEigen::new(&m.gram()).unwrap();
        for k in 0..c {
            let expected = eig.eigenvalues[k].max(0.0).sqrt();
            prop_assert!(
                (svd.sigma[k] - expected).abs() < 1e-7 * svd.sigma[0].max(1.0),
                "sigma[{}]={} vs sqrt(lambda)={}", k, svd.sigma[k], expected
            );
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(n in 1usize..10, seed in 0u64..1000) {
        let base = Matrix::from_fn(n, n, |i, j| {
            let h = (i * 23 + j * 41 + seed as usize).wrapping_mul(2654435761) % 1024;
            h as f64 / 512.0 - 1.0
        });
        let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (base[(i, j)] + base[(j, i)]));
        let eig = SymmetricEigen::new(&sym).unwrap();
        let tol = 1e-9 * sym.frobenius_norm().max(1.0);
        prop_assert!(eig.reconstruct().approx_eq(&sym, tol));
        // Eigenvalues sorted decreasing.
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigenvector_matrix_is_orthogonal(n in 1usize..10, seed in 0u64..500) {
        let base = Matrix::from_fn(n, n, |i, j| {
            ((i * 7 + j * 3 + seed as usize) as f64 * 0.7).sin()
        });
        let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (base[(i, j)] + base[(j, i)]));
        let eig = SymmetricEigen::new(&sym).unwrap();
        prop_assert!(eig.eigenvectors.gram().approx_eq(&Matrix::identity(n), 1e-9));
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        shape in tall_shape(), seed in 0u64..500
    ) {
        let (r, c) = shape;
        // Full-rank-ish random matrix plus diagonal boost for conditioning.
        let m = Matrix::from_fn(r, c, |i, j| {
            let h = (i * 19 + j * 29 + seed as usize).wrapping_mul(0x85EBCA6B) % 2048;
            let v = h as f64 / 1024.0 - 1.0;
            if i == j { v + 3.0 } else { v }
        });
        let b: Vec<f64> = (0..r).map(|i| ((i + seed as usize) as f64 * 0.37).cos()).collect();
        if let Ok(x) = Qr::new(&m).unwrap().solve_least_squares(&b) {
            let resid = vector::sub(&b, &m.matvec(&x).unwrap());
            let at_r = m.matvec_t(&resid).unwrap();
            prop_assert!(vector::norm_inf(&at_r) < 1e-7 * m.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn cholesky_solve_inverts(n in 1usize..8, seed in 0u64..500) {
        // Build an SPD matrix as G = B Bᵀ + I.
        let b = Matrix::from_fn(n, n + 2, |i, j| {
            let h = (i * 11 + j * 5 + seed as usize).wrapping_mul(2654435761) % 512;
            h as f64 / 256.0 - 1.0
        });
        let spd = b.matmul(&b.transpose()).unwrap()
            .add(&Matrix::identity(n)).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let rhs = spd.matvec(&x_true).unwrap();
        let x = Cholesky::new(&spd).unwrap().solve(&rhs).unwrap();
        prop_assert!(vector::approx_eq(&x, &x_true, 1e-8));
    }

    #[test]
    fn quantile_within_range(xs in proptest::collection::vec(-100.0..100.0f64, 1..50),
                             q in 0.0..=1.0f64) {
        let v = stats::quantile(&xs, q).unwrap();
        let (lo, hi) = stats::min_max(&xs).unwrap();
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn normal_cdf_quantile_roundtrip(p in 0.0001..0.9999f64) {
        let x = stats::inverse_normal_cdf(p).unwrap();
        prop_assert!((stats::normal_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn histogram_total_counts_everything(
        xs in proptest::collection::vec(-2.0..2.0f64, 0..100)
    ) {
        let mut h = stats::Histogram::new(0.0, 1.0, 10).unwrap();
        let counted = h.add_all(&xs);
        prop_assert_eq!(counted, xs.len());
        prop_assert_eq!(h.total(), xs.len());
    }

    #[test]
    fn vector_norm_triangle_inequality(
        a in proptest::collection::vec(-10.0..10.0f64, 1..20),
        b in proptest::collection::vec(-10.0..10.0f64, 1..20)
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sum = vector::add(a, b);
        prop_assert!(vector::norm(&sum) <= vector::norm(a) + vector::norm(b) + 1e-9);
    }

    #[test]
    fn projector_from_svd_is_idempotent(seed in 0u64..200) {
        // Build P = V_r V_rᵀ from the top singular directions and verify
        // the residual projector (I − P) is idempotent — the core algebraic
        // fact behind the subspace method.
        let m = Matrix::from_fn(20, 6, |i, j| {
            let h = (i * 3 + j * 37 + seed as usize).wrapping_mul(2654435761) % 1024;
            h as f64 / 512.0 - 1.0
        });
        let svd = Svd::new(&m).unwrap();
        let vr = svd.v.select_columns(&[0, 1]);
        let p = vr.matmul(&vr.transpose()).unwrap();
        let c_tilde = Matrix::identity(6).sub(&p).unwrap();
        let c2 = c_tilde.matmul(&c_tilde).unwrap();
        prop_assert!(c2.approx_eq(&c_tilde, 1e-10));
    }
}

/// Deterministic pseudo-random value in `[-1, 1)` for spectral fixtures.
fn hash_unit(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// A symmetric matrix with a prescribed spectrum: `A = V Λ Vᵀ` over a
/// hash-seeded orthonormal basis (modified Gram–Schmidt, two passes).
fn spectral_matrix(lambdas: &[f64], seed: u64) -> Matrix {
    let m = lambdas.len();
    let mut v = Matrix::from_fn(m, m, |i, j| hash_unit(seed as usize * m * m + i * m + j));
    for j in 0..m {
        for _pass in 0..2 {
            for prev in 0..j {
                let mut dot = 0.0;
                for i in 0..m {
                    dot += v[(i, prev)] * v[(i, j)];
                }
                for i in 0..m {
                    let sub = dot * v[(i, prev)];
                    v[(i, j)] -= sub;
                }
            }
        }
        let norm: f64 = (0..m).map(|i| v[(i, j)] * v[(i, j)]).sum::<f64>().sqrt();
        for i in 0..m {
            v[(i, j)] /= norm;
        }
    }
    let mut a = Matrix::zeros(m, m);
    for (j, &l) in lambdas.iter().enumerate() {
        for r in 0..m {
            for c in 0..m {
                a[(r, c)] += l * v[(r, j)] * v[(c, j)];
            }
        }
    }
    Matrix::from_fn(m, m, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Well-separated spectra: the truncated solver must reproduce the
    /// full Jacobi solve's top-k eigenpairs — values and sign-fixed
    /// vectors — to 1e-9 of the leading eigenvalue.
    #[test]
    fn truncated_matches_jacobi_on_separated_spectra(
        seed in 0u64..500,
        m in 18usize..40,
        k in 1usize..5,
        ratio in 0.25..0.75f64,
    ) {
        let lambdas: Vec<f64> = (0..m).map(|i| 1e8 * ratio.powi(i as i32)).collect();
        let a = spectral_matrix(&lambdas, seed);
        let full = SymmetricEigen::new(&a).unwrap();
        let top = TruncatedEigen::top_k(&a, k, 1e-12).unwrap();
        let scale = full.eigenvalues[0];
        for i in 0..k {
            prop_assert!(
                (top.eigenvalues[i] - full.eigenvalues[i]).abs() <= 1e-9 * scale,
                "eigenvalue {} differs: {} vs {}", i, top.eigenvalues[i], full.eigenvalues[i]
            );
            let tv = top.eigenvectors.col(i);
            let fv = full.eigenvectors.col(i);
            let dot: f64 = tv.iter().zip(&fv).map(|(x, y)| x * y).sum();
            let sign = if dot >= 0.0 { 1.0 } else { -1.0 };
            for (x, y) in tv.iter().zip(&fv) {
                prop_assert!((x - sign * y).abs() <= 1e-9, "eigenvector {} differs", i);
            }
        }
    }

    /// Near-degenerate spectra: clustered eigenvalues make individual
    /// eigenvectors ill-defined, but the computed *values* must still
    /// match Jacobi to 1e-9, every returned pair must satisfy the
    /// eigen-equation to the requested residual, and the basis must be
    /// orthonormal.
    #[test]
    fn truncated_survives_near_degenerate_spectra(
        seed in 0u64..300,
        m in 16usize..32,
        gap in 1e-12..1e-6f64,
    ) {
        let mut lambdas: Vec<f64> = (0..m).map(|i| 1e8 * 0.5f64.powi(i as i32)).collect();
        // Collapse λ₂ onto λ₁ and λ₄ onto λ₃ to within `gap` relative.
        lambdas[1] = lambdas[0] * (1.0 - gap);
        lambdas[3] = lambdas[2] * (1.0 - gap);
        let a = spectral_matrix(&lambdas, seed);
        let full = SymmetricEigen::new(&a).unwrap();
        let k = 5;
        let tol = 1e-11;
        let top = TruncatedEigen::top_k(&a, k, tol).unwrap();
        let scale = full.eigenvalues[0];
        for i in 0..k {
            prop_assert!(
                (top.eigenvalues[i] - full.eigenvalues[i]).abs() <= 1e-9 * scale,
                "clustered eigenvalue {} differs", i
            );
            let v = top.eigenvectors.col(i);
            let av = a.matvec(&v).unwrap();
            let mut res = 0.0f64;
            for (x, y) in av.iter().zip(&v) {
                let d = x - top.eigenvalues[i] * y;
                res += d * d;
            }
            // Rayleigh-quotient residual honored (room for the lock
            // threshold plus roundoff of this recomputation).
            prop_assert!(res.sqrt() <= 10.0 * tol * scale, "pair {} residual {:e}", i, res.sqrt());
        }
        let g = top.eigenvectors.gram();
        prop_assert!(g.approx_eq(&Matrix::identity(k), 1e-9));
    }

    /// The power traces equal the spectrum's power sums — the identity
    /// the truncated refit's exact threshold rests on.
    #[test]
    fn power_traces_equal_spectrum_power_sums(seed in 0u64..300, m in 4usize..24) {
        let lambdas: Vec<f64> = (0..m)
            .map(|i| 1e6 * (1.0 + hash_unit(seed as usize * 31 + i)).max(1e-3))
            .collect();
        let a = spectral_matrix(&lambdas, seed);
        let (t1, t2, t3) = power_traces(&a).unwrap();
        let s1: f64 = lambdas.iter().sum();
        let s2: f64 = lambdas.iter().map(|l| l * l).sum();
        let s3: f64 = lambdas.iter().map(|l| l * l * l).sum();
        prop_assert!((t1 - s1).abs() <= 1e-9 * s1.abs().max(1.0));
        prop_assert!((t2 - s2).abs() <= 1e-9 * s2.abs().max(1.0));
        prop_assert!((t3 - s3).abs() <= 1e-8 * s3.abs().max(1.0));
    }
}
