//! Standard normal CDF and inverse CDF.

use crate::{LinalgError, Result};

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Computed through the complementary error function, which is in turn
/// evaluated via the regularized incomplete gamma function
/// `erfc(z) = Q(1/2, z²)` (series expansion for small arguments, Lentz
/// continued fraction for large ones). This gives near-machine-precision
/// accuracy across the full range, including deep tails.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q_half(x * x)
    } else {
        1.0 + gamma_p_half(x * x)
    }
}

/// `ln Γ(1/2) = ln √π`.
const LN_GAMMA_HALF: f64 = 0.5723649429247001;

/// Regularized lower incomplete gamma `P(1/2, x)` for `x ≥ 0`.
fn gamma_p_half(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < 1.5 {
        gamma_p_series(x)
    } else {
        1.0 - gamma_q_cf(x)
    }
}

/// Regularized upper incomplete gamma `Q(1/2, x)` for `x ≥ 0`.
fn gamma_q_half(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if x < 1.5 {
        1.0 - gamma_p_series(x)
    } else {
        gamma_q_cf(x)
    }
}

/// Series expansion of `P(1/2, x)`, efficient for small `x`.
fn gamma_p_series(x: f64) -> f64 {
    const A: f64 = 0.5;
    let mut ap = A;
    let mut sum = 1.0 / A;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + A * x.ln() - LN_GAMMA_HALF).exp()
}

/// Modified Lentz continued fraction for `Q(1/2, x)`, efficient for
/// large `x`.
fn gamma_q_cf(x: f64) -> f64 {
    const A: f64 = 0.5;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - A;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - A);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + A * x.ln() - LN_GAMMA_HALF).exp() * h
}

/// Inverse of the standard normal CDF (the quantile function `Φ⁻¹(p)`).
///
/// This supplies `c_α`, the `1 − α` percentile used by the
/// Jackson–Mudholkar Q-statistic: at the paper's 99.9% confidence level,
/// `c_α = Φ⁻¹(0.999) ≈ 3.0902`.
///
/// Implementation: Peter Acklam's rational approximation followed by one
/// step of Halley refinement against [`normal_cdf`], giving ~1e-9 absolute
/// accuracy across the whole open interval.
///
/// Returns [`LinalgError::DomainError`] unless `0 < p < 1`.
pub fn inverse_normal_cdf(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(LinalgError::DomainError {
            op: "inverse_normal_cdf",
            value: p,
        });
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x -= e/(φ(x) + e·x/2) where e = Φ(x) − p.
    let e = normal_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let u = e / pdf.max(f64::MIN_POSITIVE);
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-12);
        assert!((normal_cdf(-1.0) - 0.158_655_253_931_457).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((normal_cdf(2.0) - 0.977_249_868_051_821).abs() < 1e-12);
    }

    #[test]
    fn cdf_tails() {
        assert!(normal_cdf(-10.0) < 1e-20);
        assert!(normal_cdf(-10.0) > 0.0);
        assert!(normal_cdf(10.0) >= 1.0 - 1e-15);
        // Deep-tail relative accuracy: Φ(−8) ≈ 6.22096e-16.
        let tail = normal_cdf(-8.0);
        assert!((tail / 6.220_960_574_271_78e-16 - 1.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = normal_cdf(x);
            assert!(v >= prev);
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn quantile_known_values() {
        // Reference values from standard normal tables.
        assert!((inverse_normal_cdf(0.5).unwrap()).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((inverse_normal_cdf(0.995).unwrap() - 2.575_829_303_548_901).abs() < 1e-7);
        assert!((inverse_normal_cdf(0.999).unwrap() - 3.090_232_306_167_813).abs() < 1e-7);
        assert!((inverse_normal_cdf(0.001).unwrap() + 3.090_232_306_167_813).abs() < 1e-7);
    }

    #[test]
    fn quantile_roundtrip() {
        for &p in &[
            1e-6,
            0.001,
            0.01,
            0.1,
            0.3,
            0.5,
            0.7,
            0.9,
            0.995,
            0.999,
            1.0 - 1e-6,
        ] {
            let x = inverse_normal_cdf(p).unwrap();
            assert!(
                (normal_cdf(x) - p).abs() < 1e-7,
                "roundtrip failed at p={p}: x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_domain_errors() {
        assert!(inverse_normal_cdf(0.0).is_err());
        assert!(inverse_normal_cdf(1.0).is_err());
        assert!(inverse_normal_cdf(-0.1).is_err());
        assert!(inverse_normal_cdf(1.1).is_err());
        assert!(inverse_normal_cdf(f64::NAN).is_err());
    }

    #[test]
    fn quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            let lo = inverse_normal_cdf(p).unwrap();
            let hi = inverse_normal_cdf(1.0 - p).unwrap();
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn paper_confidence_levels() {
        // The two confidence levels used in Figure 5 / Table 2.
        let c_999 = inverse_normal_cdf(0.999).unwrap();
        let c_995 = inverse_normal_cdf(0.995).unwrap();
        assert!(c_999 > c_995, "99.9% threshold must exceed 99.5%");
        assert!((c_999 - 3.0902).abs() < 1e-3);
        assert!((c_995 - 2.5758).abs() < 1e-3);
    }
}
