//! Fixed-bin histograms.

use crate::{LinalgError, Result};

/// A histogram over `[lo, hi)` with equal-width bins.
///
/// Used by the evaluation crate for Figure 7 (the distribution of per-flow
/// detection rates under synthetic injections). Values below `lo` are
/// clamped into the first bin and values at or above `hi` into the last, so
/// a histogram over `[0, 1)` of rates that can legitimately reach `1.0`
/// still counts everything.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns [`LinalgError::DomainError`] if `bins == 0`, `lo >= hi`, or
    /// either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(LinalgError::DomainError {
                op: "histogram bins",
                value: 0.0,
            });
        }
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less)
            || !lo.is_finite()
            || !hi.is_finite()
        {
            return Err(LinalgError::DomainError {
                op: "histogram range",
                value: lo,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Add one observation. NaNs are ignored and reported as `false`.
    pub fn add(&mut self, x: f64) -> bool {
        if x.is_nan() {
            return false;
        }
        let idx = ((x - self.lo) / self.bin_width()).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        true
    }

    /// Add every observation in a slice, returning how many were counted.
    pub fn add_all(&mut self, xs: &[f64]) -> usize {
        xs.iter().filter(|&&x| self.add(x)).count()
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of counted observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// `(bin_center, count)` pairs, handy for rendering.
    pub fn series(&self) -> Vec<(f64, usize)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add_all(&[0.1, 0.3, 0.6, 0.9, 0.26]);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-5.0);
        h.add(5.0);
        h.add(1.0); // exactly hi clamps into the last bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert!(!h.add(f64::NAN));
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
        assert_eq!(h.series().len(), 4);
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }
}
