//! Descriptive statistics, histograms and the standard normal distribution.
//!
//! The Q-statistic threshold of Jackson & Mudholkar needs the `1 − α`
//! percentile of the standard normal ([`inverse_normal_cdf`]); the subspace
//! separation rule needs per-series means and standard deviations; the
//! evaluation harness needs quantiles and histograms. All of it lives here,
//! dependency-free.

mod gaussian;
mod histogram;

pub use gaussian::{inverse_normal_cdf, normal_cdf};
pub use histogram::Histogram;

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    crate::vector::mean(xs)
}

/// Sample variance (denominator `n − 1`); `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)
}

/// Population variance (denominator `n`); `0.0` for empty input.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical quantile with linear interpolation between order statistics.
///
/// `q` must be in `[0, 1]`; `q = 0` gives the minimum, `q = 1` the maximum.
/// Returns `None` for empty input or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile); `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Minimum and maximum; `None` for empty input. NaNs are skipped.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut it = xs.iter().filter(|x| !x.is_nan());
    let first = *it.next()?;
    let mut lo = first;
    let mut hi = first;
    for &x in it {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `None` for series shorter than 2 or with zero variance.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Mean absolute relative error `mean(|est − truth| / |truth|)` over pairs
/// where `truth` is nonzero; `None` if no valid pairs exist.
///
/// This is the paper's quantification-accuracy metric (Section 6.1).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mean_abs_relative_error(estimates: &[f64], truths: &[f64]) -> Option<f64> {
    assert_eq!(estimates.len(), truths.len(), "mare: length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (&e, &t) in estimates.iter().zip(truths) {
        if t != 0.0 {
            total += ((e - t) / t).abs();
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&xs, 1.5), None);
    }

    #[test]
    fn min_max_skips_nan() {
        assert_eq!(min_max(&[f64::NAN, 2.0, -1.0]), Some((-1.0, 2.0)));
        assert_eq!(min_max(&[f64::NAN]), None);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [-2.0, -4.0, -6.0];
        assert!((pearson(&xs, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn mare_matches_hand_computation() {
        let est = [110.0, 90.0];
        let truth = [100.0, 100.0];
        assert!((mean_abs_relative_error(&est, &truth).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mare_skips_zero_truth() {
        assert_eq!(mean_abs_relative_error(&[1.0], &[0.0]), None);
        let v = mean_abs_relative_error(&[1.0, 150.0], &[0.0, 100.0]).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
    }
}
