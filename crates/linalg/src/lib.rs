//! Dense linear algebra and statistics substrate for the `netanom` workspace.
//!
//! The PCA subspace method of Lakhina et al. operates on small dense
//! matrices: a week of 10-minute link measurements is a 1008 × 49 matrix at
//! most, and every decomposition the method needs (symmetric
//! eigendecomposition of the covariance, thin SVD of the data matrix, least
//! squares for the Fourier baseline) is comfortably in the regime where
//! Jacobi-style algorithms are both simple and numerically excellent.
//!
//! This crate is dependency-free and provides:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the operations the
//!   workspace needs (products, transposes, column statistics,
//!   mean-centering, norms).
//! * [`kernel`] — the packed, cache-blocked GEMM layer every matrix
//!   product routes through: panel packing, a register-blocked
//!   micro-kernel, and naive reference kernels the packed path is pinned
//!   against (bitwise — see the module docs for the accumulation-order
//!   contract).
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms,
//!   elementwise arithmetic) so that callers can stay allocation-light.
//! * [`decomposition`] — cyclic Jacobi symmetric eigendecomposition,
//!   one-sided Jacobi (Hestenes) SVD, Householder QR with least-squares
//!   solving, and Cholesky factorization.
//! * [`stats`] — descriptive statistics, histograms, and the standard normal
//!   CDF / inverse CDF needed by the Jackson–Mudholkar Q-statistic.
//!
//! # Conventions
//!
//! * Matrices are row-major; `a[(i, j)]` is row `i`, column `j`.
//! * All decompositions return results ordered by decreasing
//!   eigen/singular value.
//! * Fallible operations return [`LinalgError`] rather than panicking,
//!   except for indexing (which panics like slice indexing does).
//!
//! # Example
//!
//! ```
//! use netanom_linalg::{Matrix, decomposition::SymmetricEigen};
//!
//! // Covariance-style PCA on a tiny data matrix.
//! let data = Matrix::from_rows(&[
//!     vec![2.0, 0.1],
//!     vec![-2.0, -0.1],
//!     vec![1.9, 0.0],
//!     vec![-1.9, 0.0],
//! ]);
//! let centered = data.mean_centered_columns().0;
//! let cov = centered.gram().scaled(1.0 / (data.rows() as f64 - 1.0));
//! let eig = SymmetricEigen::new(&cov).unwrap();
//! assert!(eig.eigenvalues[0] > eig.eigenvalues[1]);
//! ```

#![deny(missing_docs)]
// Indexed loops in numerical kernels mirror the published algorithms;
// iterator chains would obscure the math without changing the codegen.
#![allow(clippy::needless_range_loop)]
// Unsafe is denied everywhere except the single AVX2+FMA micro-kernel
// module (`kernel::fma`), which scopes an `allow` around the
// `std::arch` intrinsics and documents the safety argument in place.
#![deny(unsafe_code)]

pub mod decomposition;
mod error;
pub mod kernel;
pub mod matrix;
pub mod parallel;
pub mod stats;
pub mod vector;

pub use error::LinalgError;
pub use matrix::{BlockPlacement, Matrix};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
