//! Row-chunk parallelism for the dense kernels.
//!
//! Every batched kernel in this crate parallelizes the same way: the
//! output matrix is split into contiguous blocks of whole rows, and each
//! block is computed by an independent worker. Because a block's rows
//! are produced by exactly the same scalar loop regardless of how many
//! blocks exist, results are **bitwise independent of the thread
//! count** — the split only changes *who* computes a row, never the
//! order of floating-point operations within it. The packed
//! [`crate::kernel`] layer preserves this by accumulating every output
//! element in the same ascending-`k` order on all paths, so the
//! fan-out composes with packing without weakening the guarantee.

/// Minimum number of fused multiply-add operations before spawning
/// threads pays for itself. Below this the kernels stay serial; the
/// crossover was measured on the Abilene-week shapes (1008 × 121) the
/// workspace cares about.
pub(crate) const MIN_PARALLEL_FLOPS: usize = 400_000;

/// Worker count for a kernel performing `flops` multiply-adds over
/// `rows` independent output rows: 1 (serial) when the work is small,
/// then scaling with the amount of work — one extra worker per
/// threshold's worth of flops — so a product just past the crossover
/// doesn't fan out to every hardware thread for microseconds of work
/// each. Capped by the hardware thread count and the row count.
pub(crate) fn workers_for(flops: usize, rows: usize) -> usize {
    if flops < 2 * MIN_PARALLEL_FLOPS || rows < 2 {
        1
    } else {
        (flops / MIN_PARALLEL_FLOPS)
            .min(rayon::current_num_threads())
            .min(rows)
            .max(1)
    }
}

/// Boundaries `[0, …, rows]` splitting `rows` into at most `chunks`
/// contiguous ranges of approximately equal total `weight` (per-row cost
/// estimate). Used by triangular kernels whose later rows are cheaper.
pub(crate) fn balanced_boundaries(
    rows: usize,
    chunks: usize,
    weight: impl Fn(usize) -> f64,
) -> Vec<usize> {
    let chunks = chunks.clamp(1, rows.max(1));
    let total: f64 = (0..rows).map(&weight).sum();
    let mut boundaries = vec![0];
    if total <= 0.0 {
        // Degenerate weights: fall back to an even split.
        for c in 1..chunks {
            boundaries.push(c * rows / chunks);
        }
    } else {
        let per_chunk = total / chunks as f64;
        let mut acc = 0.0;
        for (row, w) in (0..rows).map(|r| (r, weight(r))) {
            if acc >= per_chunk && boundaries.len() < chunks && *boundaries.last().unwrap() < row {
                boundaries.push(row);
                acc = 0.0;
            }
            acc += w;
        }
    }
    boundaries.push(rows);
    boundaries.dedup();
    boundaries
}

/// Split the row-major buffer `data` (`rows × cols`) at `boundaries`
/// (ascending, starting at 0 and ending at `rows`) and run
/// `f(first_row, block)` on every block — in parallel when there is more
/// than one block.
pub(crate) fn for_row_blocks<F>(data: &mut [f64], cols: usize, boundaries: &[usize], f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
    if boundaries.len() <= 2 {
        f(0, data);
        return;
    }
    rayon::scope(|s| {
        let mut rest = data;
        // Spawn all blocks but the last; the caller's thread works the
        // last one instead of idling at the scope join.
        for w in boundaries[..boundaries.len() - 1].windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let (block, tail) = rest.split_at_mut((hi - lo) * cols);
            rest = tail;
            let f = &f;
            s.spawn(move |_| f(lo, block));
        }
        f(boundaries[boundaries.len() - 2], rest);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_boundaries_cover_and_ascend() {
        for rows in [0usize, 1, 5, 100] {
            for chunks in [1usize, 2, 7, 200] {
                let b = balanced_boundaries(rows, chunks, |_| 1.0);
                assert_eq!(*b.first().unwrap(), 0);
                assert_eq!(*b.last().unwrap(), rows);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
                assert!(b.len() <= chunks + 1);
            }
        }
    }

    #[test]
    fn balanced_boundaries_equalize_triangular_weights() {
        // weight(r) = rows - r (a gram-style triangle): the first chunk
        // must take fewer rows than the last.
        let rows = 100;
        let b = balanced_boundaries(rows, 4, |r| (rows - r) as f64);
        assert_eq!(b.len(), 5);
        let first = b[1] - b[0];
        let last = b[4] - b[3];
        assert!(first < last, "boundaries {b:?}");
    }

    #[test]
    fn for_row_blocks_visits_every_row_once() {
        let rows = 13;
        let cols = 3;
        let mut data = vec![0.0; rows * cols];
        let boundaries = balanced_boundaries(rows, 4, |_| 1.0);
        for_row_blocks(&mut data, cols, &boundaries, |first_row, block| {
            for (li, row) in block.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + li) as f64;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(data[r * cols + c], r as f64);
            }
        }
    }

    #[test]
    fn workers_respect_threshold() {
        assert_eq!(workers_for(10, 1000), 1);
        assert_eq!(workers_for(MIN_PARALLEL_FLOPS, 1), 1);
        assert!(workers_for(MIN_PARALLEL_FLOPS, 1000) >= 1);
    }
}
