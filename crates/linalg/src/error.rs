use std::fmt;

/// Errors produced by linear-algebra routines.
///
/// The crate prefers returning errors over panicking for every condition
/// that depends on runtime data (shapes, conditioning, convergence).
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation required a non-empty matrix or slice.
    Empty {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// An iterative algorithm did not converge within its sweep budget.
    NonConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot at which the factorization broke down.
        pivot: usize,
    },
    /// A matrix expected to be symmetric was not (within tolerance).
    NotSymmetric {
        /// Row/column position of the worst asymmetry.
        at: (usize, usize),
    },
    /// A system was singular or numerically rank-deficient.
    Singular {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// Two block placements targeted the same cell of an assembled
    /// matrix (`Matrix::assemble_blocks`), which would silently drop one
    /// of the values being merged.
    DuplicateTarget {
        /// Row/column position claimed twice.
        at: (usize, usize),
    },
    /// An argument was outside its mathematical domain
    /// (for example a probability outside `(0, 1)`).
    DomainError {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Empty { op } => write!(f, "{op} requires non-empty input"),
            LinalgError::NonConvergence {
                algorithm,
                iterations,
            } => write!(f, "{algorithm} did not converge after {iterations} sweeps"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotSymmetric { at } => {
                write!(f, "matrix is not symmetric (worst at {},{})", at.0, at.1)
            }
            LinalgError::Singular { op } => write!(f, "singular system in {op}"),
            LinalgError::DuplicateTarget { at } => {
                write!(f, "block placements overlap at ({}, {})", at.0, at.1)
            }
            LinalgError::DomainError { op, value } => {
                write!(f, "argument {value} outside the domain of {op}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in matmul: 2x3 vs 4x5");
    }

    #[test]
    fn display_non_convergence() {
        let e = LinalgError::NonConvergence {
            algorithm: "jacobi",
            iterations: 64,
        };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn display_domain_error() {
        let e = LinalgError::DomainError {
            op: "inverse_normal_cdf",
            value: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Empty { op: "mean" });
        assert!(e.to_string().contains("mean"));
    }
}
