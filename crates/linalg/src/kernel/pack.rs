//! Panel packing: copy one cache block of an operand into the
//! contiguous, zero-padded layout the micro-kernel consumes.
//!
//! Packed `A` blocks are stored panel-major: `⌈mc/mr⌉` panels, each a
//! `kc × mr` slab laid out k-major (`buf[panel][k*mr + i]` holds
//! `A[row0 + panel*mr + i][k0 + k]`), where `mr`/`nr` are the
//! micro-tile dimensions of the backend being packed for (the three
//! tiers use different tile heights). Packed `B` blocks mirror
//! that with `nr`-wide panels (`buf[panel][k*nr + j]` holds
//! `B[k0 + k][col0 + panel*nr + j]`). Rows/columns past the operand's
//! edge are padded with `0.0`, which contributes only to output lanes
//! the macro kernel discards — real elements see exactly their own
//! `a·b` terms.
//!
//! Each orientation gets its own loop nest so the *source* is always
//! walked along contiguous rows; the strided side of the copy lands in
//! the packed buffer, which is small enough to stay cache-resident
//! while being filled.
//!
//! # Parallel packing
//!
//! Packing is pure data movement, and a large block (a `KC × NC`
//! packed `B` is up to 2 MiB) serializes the calling thread on memcpy
//! before any flops run. Both entry points therefore fan the *panel
//! range* out across rayon workers once a block is past
//! [`MIN_PACK_ELEMS_PER_WORKER`] ×2: panels are disjoint,
//! fixed-length slices of the destination buffer, so the fan-out is
//! **placement-only** — each panel's bytes are produced by exactly
//! the same copies whichever worker owns it, making the packed block
//! bitwise identical to the serial pack (and therefore invisible to
//! every numeric contract above). Below the threshold (and on 1-thread
//! hosts) the loop nests run serially on the caller, unchanged.

use super::Operand;
use crate::parallel;

/// Elements of packed output per additional packing worker. Packing
/// moves ~2 passes of memory per element (read + packed write), so a
/// worker's share should amortize an OS-thread spawn under the
/// `rayon` stub (~tens of µs): 64 Ki elements ≈ 512 KiB ≈ 50+ µs of
/// memcpy. Blocks under twice this stay serial.
const MIN_PACK_ELEMS_PER_WORKER: usize = 64 * 1024;

/// Worker count for packing `elems` elements into `panels` panels:
/// 1 (serial) below the crossover, then one worker per
/// [`MIN_PACK_ELEMS_PER_WORKER`], capped by the hardware thread count
/// and the panel count (a panel is the placement unit).
fn pack_workers(elems: usize, panels: usize) -> usize {
    if elems < 2 * MIN_PACK_ELEMS_PER_WORKER || panels < 2 {
        1
    } else {
        (elems / MIN_PACK_ELEMS_PER_WORKER)
            .min(rayon::current_num_threads())
            .min(panels)
            .max(1)
    }
}

/// Run `pack_range(p0, p1, chunk)` over the panel range `0..panels`,
/// serially or fanned across workers ([`pack_workers`]); `chunk` is
/// the sub-slice of `buf` holding panels `p0..p1`. The range split is
/// the only thing parallelism changes — every panel's contents are
/// computed by the same single-threaded loop nest either way.
fn for_panel_ranges(
    buf: &mut [f64],
    panel_len: usize,
    panels: usize,
    pack_range: impl Fn(usize, usize, &mut [f64]) + Sync,
) {
    let used = &mut buf[..panels * panel_len];
    let workers = pack_workers(used.len(), panels);
    if workers <= 1 {
        pack_range(0, panels, used);
        return;
    }
    let boundaries = parallel::balanced_boundaries(panels, workers, |_| 1.0);
    parallel::for_row_blocks(used, panel_len, &boundaries, |p0, chunk| {
        pack_range(p0, p0 + chunk.len() / panel_len, chunk);
    });
}

/// Pack `mc` logical rows of `a` starting at `row0`, depth `k0..k0+kc`,
/// into `mr`-row panels (`mr` is the micro-tile height of the active
/// backend). `buf` must hold at least `⌈mc/mr⌉·mr·kc` elements; only
/// that prefix is written. Large blocks fan the panel range across
/// rayon workers (see the module docs); the packed bytes are bitwise
/// identical either way.
pub(crate) fn pack_a(
    a: &Operand,
    row0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    buf: &mut [f64],
) {
    let panels = mc.div_ceil(mr);
    for_panel_ranges(buf, kc * mr, panels, |p0, p1, chunk| {
        pack_a_range(a, row0, mc, k0, kc, mr, p0, p1, chunk);
    });
}

/// The serial `A`-packing loop nests, restricted to panels `p0..p1`
/// (`chunk` holds exactly those panels). Each orientation walks its
/// *source* along contiguous rows within the range.
#[allow(clippy::too_many_arguments)]
fn pack_a_range(
    a: &Operand,
    row0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    p0: usize,
    p1: usize,
    chunk: &mut [f64],
) {
    match a {
        // Rows of `a` are logical rows: walk each source row once,
        // scattering into its panel's k-major slots.
        Operand::N(m) => {
            for p in p0..p1 {
                let panel = &mut chunk[(p - p0) * kc * mr..(p - p0 + 1) * kc * mr];
                for i in 0..mr {
                    let r = p * mr + i;
                    if r < mc {
                        let src = &m.row(row0 + r)[k0..k0 + kc];
                        for (k, &v) in src.iter().enumerate() {
                            panel[k * mr + i] = v;
                        }
                    } else {
                        for k in 0..kc {
                            panel[k * mr + i] = 0.0;
                        }
                    }
                }
            }
        }
        // `a` is the transpose of `m`: logical row `r` at depth `k` is
        // `m[k][r]`, so each source row yields one contiguous mr-slice
        // per panel — the natural layout for `Aᵀ` packing (gram,
        // matmul_tn).
        Operand::T(m) => {
            for (k, srow) in (k0..k0 + kc).enumerate() {
                let src = m.row(srow);
                for p in p0..p1 {
                    let base = (p - p0) * kc * mr;
                    let dst = &mut chunk[base + k * mr..base + (k + 1) * mr];
                    let c0 = row0 + p * mr;
                    let take = mr.min(mc - p * mr);
                    dst[..take].copy_from_slice(&src[c0..c0 + take]);
                    dst[take..].fill(0.0);
                }
            }
        }
    }
}

/// Pack `nc` logical columns of `b` starting at `col0`, depth
/// `k0..k0+kc`, into `nr`-column panels (`nr` is the micro-tile width
/// of the active backend). `buf` must hold at least `⌈nc/nr⌉·nr·kc`
/// elements; only that prefix is written. Large blocks fan the panel
/// range across rayon workers (see the module docs); the packed bytes
/// are bitwise identical either way.
pub(crate) fn pack_b(
    b: &Operand,
    k0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
    nr: usize,
    buf: &mut [f64],
) {
    let panels = nc.div_ceil(nr);
    for_panel_ranges(buf, kc * nr, panels, |p0, p1, chunk| {
        pack_b_range(b, k0, kc, col0, nc, nr, p0, p1, chunk);
    });
}

/// The serial `B`-packing loop nests, restricted to panels `p0..p1`.
#[allow(clippy::too_many_arguments)]
fn pack_b_range(
    b: &Operand,
    k0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
    nr: usize,
    p0: usize,
    p1: usize,
    chunk: &mut [f64],
) {
    match b {
        // Row-major `b`: each source row k yields contiguous nr-slices
        // for every panel.
        Operand::N(m) => {
            for (k, srow) in (k0..k0 + kc).enumerate() {
                let src = m.row(srow);
                for p in p0..p1 {
                    let base = (p - p0) * kc * nr;
                    let dst = &mut chunk[base + k * nr..base + (k + 1) * nr];
                    let c0 = col0 + p * nr;
                    let take = nr.min(nc - p * nr);
                    dst[..take].copy_from_slice(&src[c0..c0 + take]);
                    dst[take..].fill(0.0);
                }
            }
        }
        // `b` is the transpose of `m` (matmul_nt): logical column `j`
        // is `m`'s row `j`, walked contiguously along k.
        Operand::T(m) => {
            for p in p0..p1 {
                let panel = &mut chunk[(p - p0) * kc * nr..(p - p0 + 1) * kc * nr];
                for j in 0..nr {
                    let c = p * nr + j;
                    if c < nc {
                        let src = &m.row(col0 + c)[k0..k0 + kc];
                        for (k, &v) in src.iter().enumerate() {
                            panel[k * nr + j] = v;
                        }
                    } else {
                        for k in 0..kc {
                            panel[k * nr + j] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::micro::{MR, NR};
    use crate::Matrix;

    fn numbered(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64 + 1.0)
    }

    #[test]
    fn pack_a_normal_lays_out_k_major_panels() {
        let m = numbered(MR + 2, 5);
        let kc = 3;
        let mc = MR + 2; // one full panel + one padded panel
        let mut buf = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        pack_a(&Operand::normal(&m), 0, mc, 1, kc, MR, &mut buf);
        // Panel 0, k-slice 0 holds column 1 of rows 0..MR.
        for i in 0..MR {
            assert_eq!(buf[i], m[(i, 1)]);
        }
        // Second panel's real lanes, then zero padding.
        let p1 = &buf[kc * MR..];
        assert_eq!(p1[0], m[(MR, 1)]);
        assert_eq!(p1[1], m[(MR + 1, 1)]);
        for i in 2..MR {
            assert_eq!(p1[i], 0.0);
        }
    }

    #[test]
    fn pack_a_transposed_matches_normal_of_transpose() {
        let m = numbered(7, MR * 2 + 1);
        let t = m.transpose();
        let (mc, kc) = (MR * 2 + 1, 6);
        let mut from_t = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        let mut from_n = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        pack_a(&Operand::transposed(&m), 0, mc, 1, kc, MR, &mut from_t);
        pack_a(&Operand::normal(&t), 0, mc, 1, kc, MR, &mut from_n);
        assert_eq!(from_t, from_n);
    }

    #[test]
    fn pack_b_transposed_matches_normal_of_transpose() {
        let m = numbered(NR + 3, 9);
        let t = m.transpose();
        let (nc, kc) = (NR + 3, 7);
        let mut from_t = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        let mut from_n = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        pack_b(&Operand::transposed(&m), 2, kc, 0, nc, NR, &mut from_t);
        pack_b(&Operand::normal(&t), 2, kc, 0, nc, NR, &mut from_n);
        assert_eq!(from_t, from_n);
    }

    #[test]
    fn pack_b_normal_pads_partial_panels_with_zeros() {
        let m = numbered(4, NR + 2);
        let (nc, kc) = (NR + 2, 4);
        let mut buf = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        pack_b(&Operand::normal(&m), 0, kc, 0, nc, NR, &mut buf);
        // First panel k-slice 0 is row 0's first NR entries.
        assert_eq!(&buf[..NR], &m.row(0)[..NR]);
        // Second panel: 2 real lanes then zeros, for every k.
        let p1 = &buf[kc * NR..];
        for k in 0..kc {
            assert_eq!(p1[k * NR], m[(k, NR)]);
            assert_eq!(p1[k * NR + 1], m[(k, NR + 1)]);
            for j in 2..NR {
                assert_eq!(p1[k * NR + j], 0.0, "k={k} j={j}");
            }
        }
    }

    /// A block big enough to fan out (≥ 2 × [`MIN_PACK_ELEMS_PER_WORKER`]
    /// elements) must pack bitwise identically to the serial panel
    /// ranges — packing parallelism is placement-only. The workspace
    /// `rayon` stub reads `RAYON_NUM_THREADS` at call time and the CI
    /// determinism job reruns this suite at 1 and 8 threads, so both
    /// regimes are pinned whatever this host's core count.
    #[test]
    fn parallel_pack_is_bitwise_the_serial_pack() {
        let nr = 8usize;
        let kc = 192usize;
        let nc = 1000usize; // 125 panels ≥ 192k elements: past the crossover
        let panels = nc.div_ceil(nr);
        let m = Matrix::from_fn(kc + 3, nc + 5, |i, j| {
            let h = (i * (nc + 5) + j).wrapping_mul(2654435761) % 8192;
            h as f64 / 4096.0 - 1.0
        });
        let mut fanned = vec![f64::NAN; panels * nr * kc];
        pack_b(&Operand::normal(&m), 2, kc, 3, nc, nr, &mut fanned);
        assert!(pack_workers(fanned.len(), panels) >= 1);
        // Serial reference: the same loop nest over the full range.
        let mut serial = vec![f64::NAN; panels * nr * kc];
        pack_b_range(
            &Operand::normal(&m),
            2,
            kc,
            3,
            nc,
            nr,
            0,
            panels,
            &mut serial,
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fanned), bits(&serial));

        // Same for an A block (transposed orientation, ragged edge).
        let mr = 8usize;
        let mc = 999usize;
        let apanels = mc.div_ceil(mr);
        let mut a_fanned = vec![f64::NAN; apanels * mr * kc];
        pack_a(&Operand::transposed(&m), 1, mc, 0, kc, mr, &mut a_fanned);
        let mut a_serial = vec![f64::NAN; apanels * mr * kc];
        pack_a_range(
            &Operand::transposed(&m),
            1,
            mc,
            0,
            kc,
            mr,
            0,
            apanels,
            &mut a_serial,
        );
        assert_eq!(bits(&a_fanned), bits(&a_serial));
    }

    #[test]
    fn pack_workers_stay_serial_below_the_crossover() {
        assert_eq!(pack_workers(MIN_PACK_ELEMS_PER_WORKER, 64), 1);
        assert_eq!(pack_workers(10 * MIN_PACK_ELEMS_PER_WORKER, 1), 1);
        let w = pack_workers(4 * MIN_PACK_ELEMS_PER_WORKER, 64);
        assert!((1..=4).contains(&w));
    }
}
