//! Panel packing: copy one cache block of an operand into the
//! contiguous, zero-padded layout the micro-kernel consumes.
//!
//! Packed `A` blocks are stored panel-major: `⌈mc/mr⌉` panels, each a
//! `kc × mr` slab laid out k-major (`buf[panel][k*mr + i]` holds
//! `A[row0 + panel*mr + i][k0 + k]`), where `mr`/`nr` are the
//! micro-tile dimensions of the backend being packed for (the portable
//! and FMA tiers use different tile heights). Packed `B` blocks mirror
//! that with `nr`-wide panels (`buf[panel][k*nr + j]` holds
//! `B[k0 + k][col0 + panel*nr + j]`). Rows/columns past the operand's
//! edge are padded with `0.0`, which contributes only to output lanes
//! the macro kernel discards — real elements see exactly their own
//! `a·b` terms.
//!
//! Each orientation gets its own loop nest so the *source* is always
//! walked along contiguous rows; the strided side of the copy lands in
//! the packed buffer, which is small enough to stay cache-resident
//! while being filled.

use super::Operand;

/// Pack `mc` logical rows of `a` starting at `row0`, depth `k0..k0+kc`,
/// into `mr`-row panels (`mr` is the micro-tile height of the active
/// backend). `buf` must hold at least `⌈mc/mr⌉·mr·kc` elements; only
/// that prefix is written.
pub(crate) fn pack_a(
    a: &Operand,
    row0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    buf: &mut [f64],
) {
    let panels = mc.div_ceil(mr);
    match a {
        // Rows of `a` are logical rows: walk each source row once,
        // scattering into its panel's k-major slots.
        Operand::N(m) => {
            for p in 0..panels {
                let panel = &mut buf[p * kc * mr..(p + 1) * kc * mr];
                for i in 0..mr {
                    let r = p * mr + i;
                    if r < mc {
                        let src = &m.row(row0 + r)[k0..k0 + kc];
                        for (k, &v) in src.iter().enumerate() {
                            panel[k * mr + i] = v;
                        }
                    } else {
                        for k in 0..kc {
                            panel[k * mr + i] = 0.0;
                        }
                    }
                }
            }
        }
        // `a` is the transpose of `m`: logical row `r` at depth `k` is
        // `m[k][r]`, so each source row yields one contiguous mr-slice
        // per panel — the natural layout for `Aᵀ` packing (gram,
        // matmul_tn).
        Operand::T(m) => {
            for (k, srow) in (k0..k0 + kc).enumerate() {
                let src = m.row(srow);
                for p in 0..panels {
                    let dst = &mut buf[p * kc * mr + k * mr..p * kc * mr + (k + 1) * mr];
                    let c0 = row0 + p * mr;
                    let take = mr.min(mc - p * mr);
                    dst[..take].copy_from_slice(&src[c0..c0 + take]);
                    dst[take..].fill(0.0);
                }
            }
        }
    }
}

/// Pack `nc` logical columns of `b` starting at `col0`, depth
/// `k0..k0+kc`, into `nr`-column panels (`nr` is the micro-tile width
/// of the active backend). `buf` must hold at least `⌈nc/nr⌉·nr·kc`
/// elements; only that prefix is written.
pub(crate) fn pack_b(
    b: &Operand,
    k0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
    nr: usize,
    buf: &mut [f64],
) {
    let panels = nc.div_ceil(nr);
    match b {
        // Row-major `b`: each source row k yields contiguous nr-slices
        // for every panel.
        Operand::N(m) => {
            for (k, srow) in (k0..k0 + kc).enumerate() {
                let src = m.row(srow);
                for p in 0..panels {
                    let dst = &mut buf[p * kc * nr + k * nr..p * kc * nr + (k + 1) * nr];
                    let c0 = col0 + p * nr;
                    let take = nr.min(nc - p * nr);
                    dst[..take].copy_from_slice(&src[c0..c0 + take]);
                    dst[take..].fill(0.0);
                }
            }
        }
        // `b` is the transpose of `m` (matmul_nt): logical column `j`
        // is `m`'s row `j`, walked contiguously along k.
        Operand::T(m) => {
            for p in 0..panels {
                let panel = &mut buf[p * kc * nr..(p + 1) * kc * nr];
                for j in 0..nr {
                    let c = p * nr + j;
                    if c < nc {
                        let src = &m.row(col0 + c)[k0..k0 + kc];
                        for (k, &v) in src.iter().enumerate() {
                            panel[k * nr + j] = v;
                        }
                    } else {
                        for k in 0..kc {
                            panel[k * nr + j] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::micro::{MR, NR};
    use crate::Matrix;

    fn numbered(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64 + 1.0)
    }

    #[test]
    fn pack_a_normal_lays_out_k_major_panels() {
        let m = numbered(MR + 2, 5);
        let kc = 3;
        let mc = MR + 2; // one full panel + one padded panel
        let mut buf = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        pack_a(&Operand::normal(&m), 0, mc, 1, kc, MR, &mut buf);
        // Panel 0, k-slice 0 holds column 1 of rows 0..MR.
        for i in 0..MR {
            assert_eq!(buf[i], m[(i, 1)]);
        }
        // Second panel's real lanes, then zero padding.
        let p1 = &buf[kc * MR..];
        assert_eq!(p1[0], m[(MR, 1)]);
        assert_eq!(p1[1], m[(MR + 1, 1)]);
        for i in 2..MR {
            assert_eq!(p1[i], 0.0);
        }
    }

    #[test]
    fn pack_a_transposed_matches_normal_of_transpose() {
        let m = numbered(7, MR * 2 + 1);
        let t = m.transpose();
        let (mc, kc) = (MR * 2 + 1, 6);
        let mut from_t = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        let mut from_n = vec![f64::NAN; mc.div_ceil(MR) * MR * kc];
        pack_a(&Operand::transposed(&m), 0, mc, 1, kc, MR, &mut from_t);
        pack_a(&Operand::normal(&t), 0, mc, 1, kc, MR, &mut from_n);
        assert_eq!(from_t, from_n);
    }

    #[test]
    fn pack_b_transposed_matches_normal_of_transpose() {
        let m = numbered(NR + 3, 9);
        let t = m.transpose();
        let (nc, kc) = (NR + 3, 7);
        let mut from_t = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        let mut from_n = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        pack_b(&Operand::transposed(&m), 2, kc, 0, nc, NR, &mut from_t);
        pack_b(&Operand::normal(&t), 2, kc, 0, nc, NR, &mut from_n);
        assert_eq!(from_t, from_n);
    }

    #[test]
    fn pack_b_normal_pads_partial_panels_with_zeros() {
        let m = numbered(4, NR + 2);
        let (nc, kc) = (NR + 2, 4);
        let mut buf = vec![f64::NAN; nc.div_ceil(NR) * NR * kc];
        pack_b(&Operand::normal(&m), 0, kc, 0, nc, NR, &mut buf);
        // First panel k-slice 0 is row 0's first NR entries.
        assert_eq!(&buf[..NR], &m.row(0)[..NR]);
        // Second panel: 2 real lanes then zeros, for every k.
        let p1 = &buf[kc * NR..];
        for k in 0..kc {
            assert_eq!(p1[k * NR], m[(k, NR)]);
            assert_eq!(p1[k * NR + 1], m[(k, NR + 1)]);
            for j in 2..NR {
                assert_eq!(p1[k * NR + j], 0.0, "k={k} j={j}");
            }
        }
    }
}
