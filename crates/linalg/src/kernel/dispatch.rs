//! Runtime kernel-backend selection.
//!
//! The packed GEMM layer has two micro-kernel tiers with *different
//! numeric contracts* (see the module docs of [`crate::kernel`]):
//!
//! * [`KernelBackend::Portable`] — the autovectorized tier, bitwise
//!   identical to the naive mul-then-add ascending-`k` triple loop.
//! * [`KernelBackend::Fma`] — explicit AVX2+FMA intrinsics, bitwise
//!   identical to the [`f64::mul_add`] ascending-`k` triple loop.
//!
//! The backend is chosen **once per process** the first time any
//! dispatched product runs, from two inputs:
//!
//! 1. the `NETANOM_KERNEL` environment variable (`portable` | `fma`),
//!    an explicit override for testing, debugging, and reproducing
//!    portable-tier results on FMA-capable hosts;
//! 2. failing that, CPU feature detection via
//!    `is_x86_feature_detected!`: `avx2` **and** `fma` present selects
//!    [`KernelBackend::Fma`], anything else (including every
//!    non-x86_64 target) falls back to [`KernelBackend::Portable`].
//!
//! An override requesting `fma` on a CPU without the features is
//! *ignored* (with the reason recorded in [`backend_diagnostics`])
//! rather than honored: the FMA tier's entry points refuse to run
//! without hardware support, so honoring the override could only
//! abort. Unrecognized values are likewise ignored in favor of
//! detection. The selection never errors and never silently changes
//! mid-process, which is what makes "one run = one backend = one
//! numeric contract" a usable testing contract ([`active_backend`] is
//! cached in a [`OnceLock`]).

use std::sync::OnceLock;

/// The micro-kernel tier every dispatched product routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Autovectorized portable tile (`super::micro`): bitwise equal
    /// to the naive mul-then-add ascending-`k` loop on every target.
    Portable,
    /// Explicit AVX2+FMA tile (`super::fma`): bitwise equal to the
    /// [`f64::mul_add`] ascending-`k` loop; requires `avx2` + `fma`.
    Fma,
}

impl KernelBackend {
    /// Stable lowercase name, matching the `NETANOM_KERNEL` values.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Portable => "portable",
            KernelBackend::Fma => "fma",
        }
    }

    /// `true` when this backend can run on the current CPU. `Portable`
    /// always can; `Fma` needs runtime-detected `avx2` and `fma`.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Portable => true,
            KernelBackend::Fma => fma_supported(),
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn fma_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn fma_supported() -> bool {
    false
}

/// How the active backend came to be selected — kept alongside the
/// choice so diagnostics can explain *why*, not just *what*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// CPU feature detection picked the tier (no override present).
    Detected,
    /// `NETANOM_KERNEL` forced the tier.
    Override,
    /// `NETANOM_KERNEL` asked for an unsupported tier; detection chose.
    OverrideUnsupported,
    /// `NETANOM_KERNEL` held an unrecognized value; detection chose.
    OverrideInvalid,
}

/// Pure selection logic, separated from process state (environment,
/// CPUID) so every branch is unit-testable on any host.
fn select(env: Option<&str>, fma_supported: bool) -> (KernelBackend, Provenance) {
    let detected = if fma_supported {
        KernelBackend::Fma
    } else {
        KernelBackend::Portable
    };
    match env.map(str::trim) {
        Some("portable") => (KernelBackend::Portable, Provenance::Override),
        Some("fma") if fma_supported => (KernelBackend::Fma, Provenance::Override),
        Some("fma") => (detected, Provenance::OverrideUnsupported),
        Some(_) => (detected, Provenance::OverrideInvalid),
        None => (detected, Provenance::Detected),
    }
}

fn selection() -> (KernelBackend, Provenance) {
    static ACTIVE: OnceLock<(KernelBackend, Provenance)> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let env = std::env::var("NETANOM_KERNEL").ok();
        select(env.as_deref(), fma_supported())
    })
}

/// The backend every dispatched product in this process uses.
///
/// Selected on first call (see the module docs for the rules) and
/// constant for the lifetime of the process, so all products computed
/// by one run share one numeric contract.
pub fn active_backend() -> KernelBackend {
    selection().0
}

/// One-line, human-readable account of the active backend and how it
/// was chosen, e.g. `fma (runtime-detected avx2+fma)` — surfaced by
/// `netanom --version` so deployments can confirm which tier their
/// numbers came from.
pub fn backend_diagnostics() -> String {
    let (backend, provenance) = selection();
    let why = match (backend, provenance) {
        (KernelBackend::Fma, Provenance::Detected) => "runtime-detected avx2+fma".to_string(),
        (KernelBackend::Portable, Provenance::Detected) => {
            "avx2+fma not detected; autovectorized fallback".to_string()
        }
        (_, Provenance::Override) => format!("NETANOM_KERNEL={} override", backend.name()),
        (_, Provenance::OverrideUnsupported) => {
            "NETANOM_KERNEL=fma requested but avx2+fma not detected; using portable".to_string()
        }
        (_, Provenance::OverrideInvalid) => format!(
            "unrecognized NETANOM_KERNEL value ignored (expected portable|fma); \
             runtime detection chose {}",
            backend.name()
        ),
    };
    format!("{} ({why})", backend.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_without_override_follows_cpu_support() {
        assert_eq!(
            select(None, true),
            (KernelBackend::Fma, Provenance::Detected)
        );
        assert_eq!(
            select(None, false),
            (KernelBackend::Portable, Provenance::Detected)
        );
    }

    #[test]
    fn portable_override_wins_even_on_fma_hardware() {
        assert_eq!(
            select(Some("portable"), true),
            (KernelBackend::Portable, Provenance::Override)
        );
        assert_eq!(
            select(Some("portable"), false),
            (KernelBackend::Portable, Provenance::Override)
        );
    }

    #[test]
    fn fma_override_requires_hardware_support() {
        assert_eq!(
            select(Some("fma"), true),
            (KernelBackend::Fma, Provenance::Override)
        );
        assert_eq!(
            select(Some("fma"), false),
            (KernelBackend::Portable, Provenance::OverrideUnsupported)
        );
    }

    #[test]
    fn invalid_override_falls_back_to_detection() {
        assert_eq!(
            select(Some("avx512"), true),
            (KernelBackend::Fma, Provenance::OverrideInvalid)
        );
        assert_eq!(
            select(Some(""), false),
            (KernelBackend::Portable, Provenance::OverrideInvalid)
        );
    }

    #[test]
    fn override_values_are_trimmed() {
        assert_eq!(
            select(Some(" portable\n"), true),
            (KernelBackend::Portable, Provenance::Override)
        );
    }

    #[test]
    fn portable_is_always_supported_and_named_stably() {
        assert!(KernelBackend::Portable.is_supported());
        assert_eq!(KernelBackend::Portable.name(), "portable");
        assert_eq!(KernelBackend::Fma.name(), "fma");
    }

    #[test]
    fn active_backend_is_stable_and_supported() {
        let first = active_backend();
        assert!(first.is_supported());
        assert_eq!(active_backend(), first);
        assert!(backend_diagnostics().starts_with(first.name()));
    }
}
