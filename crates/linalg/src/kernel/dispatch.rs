//! Runtime kernel-backend selection.
//!
//! The packed GEMM layer has three micro-kernel tiers spanning *two
//! numeric contracts* (see the module docs of [`crate::kernel`]):
//!
//! * [`KernelBackend::Portable`] — the autovectorized tier, bitwise
//!   identical to the naive mul-then-add ascending-`k` triple loop.
//! * [`KernelBackend::Fma`] — explicit AVX2+FMA intrinsics, bitwise
//!   identical to the [`f64::mul_add`] ascending-`k` triple loop.
//! * [`KernelBackend::Avx512`] — explicit AVX-512 intrinsics on zmm
//!   registers, sharing the **same** fused contract as the FMA tier
//!   (one `mul_add` rounding per `k`-term, ascending `k`), so the two
//!   hardware tiers are bitwise identical to each other.
//!
//! The backend is chosen **once per process** the first time any
//! dispatched product runs, from two inputs:
//!
//! 1. the `NETANOM_KERNEL` environment variable
//!    (`portable` | `fma` | `avx512`), an explicit override for
//!    testing, debugging, and reproducing one tier's results on a
//!    host that would dispatch another;
//! 2. failing that, CPU feature detection via
//!    `is_x86_feature_detected!`, widest tier first: `avx512f` **and**
//!    `avx512vl` select [`KernelBackend::Avx512`], else `avx2` **and**
//!    `fma` select [`KernelBackend::Fma`], anything else (including
//!    every non-x86_64 target) falls back to
//!    [`KernelBackend::Portable`].
//!
//! An override requesting a hardware tier the CPU lacks is *ignored*
//! (with the requested tier recorded in [`backend_diagnostics`])
//! rather than honored: the hardware tiers' entry points refuse to run
//! without their features, so honoring the override could only abort.
//! Unrecognized values are likewise ignored in favor of detection. The
//! selection never errors and never silently changes mid-process,
//! which is what makes "one run = one backend = one numeric contract"
//! a usable testing contract ([`active_backend`] is cached in a
//! [`OnceLock`]).

use std::sync::OnceLock;

/// The micro-kernel tier every dispatched product routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Autovectorized portable tile (`super::micro`): bitwise equal
    /// to the naive mul-then-add ascending-`k` loop on every target.
    Portable,
    /// Explicit AVX2+FMA tile (`super::fma`): bitwise equal to the
    /// [`f64::mul_add`] ascending-`k` loop; requires `avx2` + `fma`.
    Fma,
    /// Explicit AVX-512 tile (`super::avx512`): same fused contract as
    /// [`KernelBackend::Fma`] — bitwise equal to the [`f64::mul_add`]
    /// ascending-`k` loop — on 8-lane zmm registers; requires
    /// `avx512f` + `avx512vl`.
    Avx512,
}

/// Every tier, widest first — the order detection prefers them. Used
/// by tier-generic tests and benches to enumerate what the host can
/// run (filtered through [`KernelBackend::is_supported`]).
pub const ALL_BACKENDS: [KernelBackend; 3] = [
    KernelBackend::Avx512,
    KernelBackend::Fma,
    KernelBackend::Portable,
];

impl KernelBackend {
    /// Stable lowercase name, matching the `NETANOM_KERNEL` values.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Portable => "portable",
            KernelBackend::Fma => "fma",
            KernelBackend::Avx512 => "avx512",
        }
    }

    /// The CPU features this tier needs at runtime, as the
    /// `+`-separated string diagnostics print; `Portable` needs none.
    pub fn required_features(self) -> &'static str {
        match self {
            KernelBackend::Portable => "",
            KernelBackend::Fma => "avx2+fma",
            KernelBackend::Avx512 => "avx512f+avx512vl",
        }
    }

    /// `true` when this backend can run on the current CPU. `Portable`
    /// always can; the hardware tiers need their runtime-detected
    /// features (see [`KernelBackend::required_features`]).
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Portable => true,
            KernelBackend::Fma => fma_supported(),
            KernelBackend::Avx512 => avx512_supported(),
        }
    }

    /// `true` when this tier accumulates with one fused rounding per
    /// `k`-term ([`f64::mul_add`] semantics); `false` for the
    /// mul-then-add portable contract. Both hardware tiers are fused,
    /// which is why they are bitwise identical to each other.
    pub fn is_fused(self) -> bool {
        !matches!(self, KernelBackend::Portable)
    }
}

/// Every tier the current CPU can execute, widest first.
pub fn supported_backends() -> Vec<KernelBackend> {
    ALL_BACKENDS
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
}

#[cfg(target_arch = "x86_64")]
fn fma_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn fma_supported() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_supported() -> bool {
    false
}

/// How the active backend came to be selected — kept alongside the
/// choice so diagnostics can explain *why*, not just *what*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// CPU feature detection picked the tier (no override present).
    Detected,
    /// `NETANOM_KERNEL` forced the tier.
    Override,
    /// `NETANOM_KERNEL` asked for this tier, which the CPU cannot run;
    /// detection chose instead.
    OverrideUnsupported(KernelBackend),
    /// `NETANOM_KERNEL` held an unrecognized value; detection chose.
    OverrideInvalid,
}

/// Pure selection logic, separated from process state (environment,
/// CPUID) so every branch is unit-testable on any host. Detection
/// prefers the widest supported tier.
fn select(
    env: Option<&str>,
    fma_supported: bool,
    avx512_supported: bool,
) -> (KernelBackend, Provenance) {
    let detected = if avx512_supported {
        KernelBackend::Avx512
    } else if fma_supported {
        KernelBackend::Fma
    } else {
        KernelBackend::Portable
    };
    match env.map(str::trim) {
        Some("portable") => (KernelBackend::Portable, Provenance::Override),
        Some("fma") if fma_supported => (KernelBackend::Fma, Provenance::Override),
        Some("fma") => (
            detected,
            Provenance::OverrideUnsupported(KernelBackend::Fma),
        ),
        Some("avx512") if avx512_supported => (KernelBackend::Avx512, Provenance::Override),
        Some("avx512") => (
            detected,
            Provenance::OverrideUnsupported(KernelBackend::Avx512),
        ),
        Some(_) => (detected, Provenance::OverrideInvalid),
        None => (detected, Provenance::Detected),
    }
}

fn selection() -> (KernelBackend, Provenance) {
    static ACTIVE: OnceLock<(KernelBackend, Provenance)> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let env = std::env::var("NETANOM_KERNEL").ok();
        select(env.as_deref(), fma_supported(), avx512_supported())
    })
}

/// The backend every dispatched product in this process uses.
///
/// Selected on first call (see the module docs for the rules) and
/// constant for the lifetime of the process, so all products computed
/// by one run share one numeric contract.
pub fn active_backend() -> KernelBackend {
    selection().0
}

/// One-line, human-readable account of the active backend and how it
/// was chosen, e.g. `avx512 (runtime-detected avx512f+avx512vl)` —
/// surfaced by `netanom --version` so deployments can confirm which
/// tier their numbers came from.
pub fn backend_diagnostics() -> String {
    let (backend, provenance) = selection();
    let why = match (backend, provenance) {
        (KernelBackend::Portable, Provenance::Detected) => {
            "no simd tier detected; autovectorized fallback".to_string()
        }
        (hw, Provenance::Detected) => {
            format!("runtime-detected {}", hw.required_features())
        }
        (_, Provenance::Override) => format!("NETANOM_KERNEL={} override", backend.name()),
        (_, Provenance::OverrideUnsupported(requested)) => format!(
            "NETANOM_KERNEL={} requested but {} not detected; using {}",
            requested.name(),
            requested.required_features(),
            backend.name()
        ),
        (_, Provenance::OverrideInvalid) => format!(
            "unrecognized NETANOM_KERNEL value ignored (expected portable|fma|avx512); \
             runtime detection chose {}",
            backend.name()
        ),
    };
    format!("{} ({why})", backend.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_without_override_prefers_the_widest_tier() {
        assert_eq!(
            select(None, true, true),
            (KernelBackend::Avx512, Provenance::Detected)
        );
        assert_eq!(
            select(None, true, false),
            (KernelBackend::Fma, Provenance::Detected)
        );
        // AVX-512 without AVX2+FMA cannot occur on real CPUs, but the
        // selection must still be well-defined: widest supported wins.
        assert_eq!(
            select(None, false, true),
            (KernelBackend::Avx512, Provenance::Detected)
        );
        assert_eq!(
            select(None, false, false),
            (KernelBackend::Portable, Provenance::Detected)
        );
    }

    #[test]
    fn portable_override_wins_even_on_simd_hardware() {
        assert_eq!(
            select(Some("portable"), true, true),
            (KernelBackend::Portable, Provenance::Override)
        );
        assert_eq!(
            select(Some("portable"), false, false),
            (KernelBackend::Portable, Provenance::Override)
        );
    }

    #[test]
    fn fma_override_requires_hardware_support() {
        assert_eq!(
            select(Some("fma"), true, true),
            (KernelBackend::Fma, Provenance::Override)
        );
        assert_eq!(
            select(Some("fma"), false, false),
            (
                KernelBackend::Portable,
                Provenance::OverrideUnsupported(KernelBackend::Fma)
            )
        );
    }

    #[test]
    fn avx512_override_requires_hardware_support() {
        assert_eq!(
            select(Some("avx512"), true, true),
            (KernelBackend::Avx512, Provenance::Override)
        );
        // Unsupported avx512 override on an FMA host: detection picks
        // Fma, and the provenance records which tier was *requested*.
        assert_eq!(
            select(Some("avx512"), true, false),
            (
                KernelBackend::Fma,
                Provenance::OverrideUnsupported(KernelBackend::Avx512)
            )
        );
        assert_eq!(
            select(Some("avx512"), false, false),
            (
                KernelBackend::Portable,
                Provenance::OverrideUnsupported(KernelBackend::Avx512)
            )
        );
    }

    #[test]
    fn invalid_override_falls_back_to_detection() {
        assert_eq!(
            select(Some("avx9000"), true, true),
            (KernelBackend::Avx512, Provenance::OverrideInvalid)
        );
        assert_eq!(
            select(Some(""), false, false),
            (KernelBackend::Portable, Provenance::OverrideInvalid)
        );
    }

    #[test]
    fn override_values_are_trimmed() {
        assert_eq!(
            select(Some(" portable\n"), true, false),
            (KernelBackend::Portable, Provenance::Override)
        );
        assert_eq!(
            select(Some(" avx512 "), false, true),
            (KernelBackend::Avx512, Provenance::Override)
        );
    }

    #[test]
    fn portable_is_always_supported_and_named_stably() {
        assert!(KernelBackend::Portable.is_supported());
        assert_eq!(KernelBackend::Portable.name(), "portable");
        assert_eq!(KernelBackend::Fma.name(), "fma");
        assert_eq!(KernelBackend::Avx512.name(), "avx512");
    }

    #[test]
    fn fused_contract_covers_exactly_the_hardware_tiers() {
        assert!(!KernelBackend::Portable.is_fused());
        assert!(KernelBackend::Fma.is_fused());
        assert!(KernelBackend::Avx512.is_fused());
    }

    #[test]
    fn supported_backends_always_includes_portable_last() {
        let tiers = supported_backends();
        assert_eq!(tiers.last(), Some(&KernelBackend::Portable));
        for t in &tiers {
            assert!(t.is_supported());
        }
    }

    #[test]
    fn active_backend_is_stable_and_supported() {
        let first = active_backend();
        assert!(first.is_supported());
        assert_eq!(active_backend(), first);
        assert!(backend_diagnostics().starts_with(first.name()));
    }
}
