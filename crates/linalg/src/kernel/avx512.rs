//! The AVX-512 micro-kernel tier: one `8 × 8` tile of `C` in eight
//! ZMM accumulators, extended by explicit `_mm512_fmadd_pd` steps.
//!
//! # Numeric contract
//!
//! Identical to the FMA tier's (`super::fma`): per output element,
//! exactly one fused multiply-add per `k`-term, in strictly ascending
//! `k` order, into a single accumulator lane — bitwise the
//! [`f64::mul_add`] ascending-`k` triple loop. Because fused rounding
//! is deterministic and lane position never changes a lane's value,
//! the AVX-512 and AVX2+FMA tiers are **bitwise identical to each
//! other** on every input; they differ only in how many lanes run per
//! instruction. The sub-crossover fallback is therefore shared:
//! `super::fma::gemm_reference_fma` serves both hardware tiers.
//! Everything that carries the contract carries over unchanged — the
//! `KC` loop stays outside the tiles (`C` is loaded, extended,
//! stored), vectorization is across output lanes (never across `k`),
//! and edge tiles stage through the shared stack-scratch helpers in
//! `super::micro` so `fma(0, x, acc)` lands only in discarded padding
//! lanes. Against the portable tier the result differs by at most one
//! rounding per `k`-term, bounded at `≤ 1e-12` relative by the
//! property tests.
//!
//! # Tile shape and unrolling
//!
//! `MR = 8`, `NR = 8`: each of the 8 accumulator rows is exactly one
//! 8-lane ZMM register, so the accumulator block uses 8 of the 32 ZMM
//! registers and a full `k` step is one ZMM `B` load plus eight
//! broadcast-FMA pairs — the densest 64-flop step the 512-bit FMA
//! units can retire with a single `B` stream. Eight independent
//! accumulator chains cover the 4-cycle FMA latency at 2 issues per
//! cycle on the dual-port server cores this tier targets. The `k`
//! loop is unrolled ×4 to amortize loop control; the unroll only
//! repeats whole `k` steps, so it cannot reorder any per-element
//! accumulation.
//!
//! # Safety
//!
//! Mirrors `super::fma` (the crate root carries `#![deny(unsafe_code)]`;
//! the allow below scopes the exception). The intrinsics require
//! `avx512f`+`avx512vl` at runtime; the safe entry point
//! [`kernel_update`] asserts
//! [`super::dispatch::KernelBackend::is_supported`] (a cached CPUID
//! check) before entering the `#[target_feature]` function, so the
//! unsafe call is sound on every path — including a caller that
//! bypasses the dispatcher. All pointer arithmetic stays inside the
//! bounds-checked slices the safe wrapper receives; the packed-panel
//! length preconditions are `debug_assert`ed and guaranteed by
//! [`super::pack`].
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
use super::dispatch::KernelBackend;
#[cfg(target_arch = "x86_64")]
use super::micro::{load_edge_tile, store_edge_tile};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{
    _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd, _mm512_setzero_pd, _mm512_storeu_pd,
};

/// Micro-tile rows (`A` panel height) of the AVX-512 tier.
pub(crate) const MR: usize = 8;
/// Micro-tile columns (`B` panel width) of the AVX-512 tier.
pub(crate) const NR: usize = 8;

/// Load the `mr_eff × nr_eff` valid corner of the `C` tile, extend it
/// by `kc` fused rank-1 updates, and store the valid corner back —
/// the AVX-512 counterpart of [`super::micro::kernel_update`], same
/// signature so the macro loop dispatches over plain function values.
///
/// # Panics
///
/// Panics if the CPU lacks `avx512f`+`avx512vl`; the dispatcher never
/// routes here in that case.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
pub(crate) fn kernel_update(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        KernelBackend::Avx512.is_supported(),
        "AVX-512 micro-kernel invoked without runtime avx512f+avx512vl support"
    );
    // SAFETY: the assertion above proves `avx512f` and `avx512vl` are
    // available on the executing CPU, which is the only precondition
    // of the `#[target_feature]` function.
    unsafe {
        kernel_update_avx512(
            kc, apanel, bpanel, c, ldc, tile_row, tile_col, mr_eff, nr_eff,
        )
    }
}

/// Non-x86_64 stub so the module always compiles; the dispatcher can
/// never select [`KernelBackend::Avx512`] on these targets.
#[allow(clippy::too_many_arguments)]
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn kernel_update(
    _kc: usize,
    _apanel: &[f64],
    _bpanel: &[f64],
    _c: &mut [f64],
    _ldc: usize,
    _tile_row: usize,
    _tile_col: usize,
    _mr_eff: usize,
    _nr_eff: usize,
) {
    unreachable!("AVX-512 backend is never selected on non-x86_64 targets");
}

/// One fused `k` step: one ZMM load of the packed `B` row, then
/// broadcast each of the `MR` packed `A` lanes and fold `a · b` into
/// its whole-row accumulator. A macro (not a helper function) so the
/// body expands textually inside the `#[target_feature]` region and
/// inlining can never be defeated.
#[cfg(target_arch = "x86_64")]
macro_rules! avx512_k_step {
    ($ap:expr, $bp:expr, $k:expr, $acc:expr) => {{
        let b = _mm512_loadu_pd($bp.add($k * NR));
        let mut i = 0;
        while i < MR {
            let ai = _mm512_set1_pd(*$ap.add($k * MR + i));
            $acc[i] = _mm512_fmadd_pd(ai, b, $acc[i]);
            i += 1;
        }
    }};
}

/// The ×4-unrolled ascending-`k` accumulation loop shared by the full
/// and edge tile paths. Whole `k` steps only: the per-element order is
/// untouched by the unroll.
#[cfg(target_arch = "x86_64")]
macro_rules! avx512_k_loop {
    ($ap:expr, $bp:expr, $kc:expr, $acc:expr) => {{
        let mut k = 0;
        while k + 4 <= $kc {
            avx512_k_step!($ap, $bp, k, $acc);
            avx512_k_step!($ap, $bp, k + 1, $acc);
            avx512_k_step!($ap, $bp, k + 2, $acc);
            avx512_k_step!($ap, $bp, k + 3, $acc);
            k += 4;
        }
        while k < $kc {
            avx512_k_step!($ap, $bp, k, $acc);
            k += 1;
        }
    }};
}

/// # Safety
///
/// Requires `avx512f` and `avx512vl` on the executing CPU. Slice
/// bounds are honored on every access: the `C` accesses go through
/// index ranges, and the raw-pointer panel reads are `debug_assert`ed
/// against the panel lengths (guaranteed by the packing layer).
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl")]
unsafe fn kernel_update_avx512(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(apanel.len() >= kc * MR);
    debug_assert!(bpanel.len() >= kc * NR);
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    let mut acc = [_mm512_setzero_pd(); MR];
    if mr_eff == MR && nr_eff == NR {
        for (i, arow) in acc.iter_mut().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            let crow = &c[off..off + NR];
            // SAFETY: `crow` holds NR = 8 contiguous f64s — one ZMM.
            *arow = unsafe { _mm512_loadu_pd(crow.as_ptr()) };
        }
        // SAFETY: the k-step macro reads `ap[k*MR..k*MR+MR]` and
        // `bp[k*NR..k*NR+NR]` for k < kc, within the asserted lengths.
        unsafe {
            avx512_k_loop!(ap, bp, kc, acc);
        }
        for (i, arow) in acc.iter().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            let crow = &mut c[off..off + NR];
            // SAFETY: `crow` holds NR = 8 contiguous f64s.
            unsafe { _mm512_storeu_pd(crow.as_mut_ptr(), *arow) };
        }
    } else {
        // Edge tile: stage the valid corner through the shared stack
        // scratch tile so the vector loop never reads or writes past
        // `C`. Padding lanes accumulate garbage from the packed zeros
        // (exactly `fma(0, x, 0)` chains) and are discarded.
        let mut tile = load_edge_tile::<MR, NR>(c, ldc, tile_row, tile_col, mr_eff, nr_eff);
        for (i, arow) in acc.iter_mut().enumerate() {
            // SAFETY: each scratch row holds NR = 8 contiguous f64s.
            *arow = unsafe { _mm512_loadu_pd(tile[i].as_ptr()) };
        }
        // SAFETY: same panel-bounds argument as the full-tile path.
        unsafe {
            avx512_k_loop!(ap, bp, kc, acc);
        }
        for (i, arow) in acc.iter().enumerate() {
            // SAFETY: each scratch row holds NR = 8 contiguous f64s.
            unsafe { _mm512_storeu_pd(tile[i].as_mut_ptr(), *arow) };
        }
        store_edge_tile(&tile, c, ldc, tile_row, tile_col, mr_eff, nr_eff);
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    fn avx512_available() -> bool {
        KernelBackend::Avx512.is_supported()
    }

    #[test]
    fn avx512_tile_is_fused_ascending_k_per_element() {
        if !avx512_available() {
            return;
        }
        let kc = 9; // exercises both the ×4 unroll and the remainder
        let apanel: Vec<f64> = (0..kc * MR).map(|i| (i as f64).sin()).collect();
        let bpanel: Vec<f64> = (0..kc * NR).map(|i| (i as f64).cos()).collect();
        let ldc = NR;
        let mut c = vec![0.0; MR * ldc];
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, MR, NR);
        for i in 0..MR {
            for j in 0..NR {
                // Scalar fused ascending-k reference, one accumulator.
                let mut want = 0.0_f64;
                for k in 0..kc {
                    want = apanel[k * MR + i].mul_add(bpanel[k * NR + j], want);
                }
                assert_eq!(c[i * ldc + j], want, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn avx512_kernel_update_extends_partial_sums_in_order() {
        if !avx512_available() {
            return;
        }
        // Two KC blocks back to back must equal one pass over the
        // concatenated k range, bitwise — the load/extend/store
        // contract that keeps multi-block products ascending in k.
        let (k1, k2) = (5usize, 7usize);
        let ka = k1 + k2;
        let apanel: Vec<f64> = (0..ka * MR).map(|i| 1.0 / (i + 1) as f64).collect();
        let bpanel: Vec<f64> = (0..ka * NR).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let ldc = NR + 3;
        let mut split = vec![0.0; MR * ldc];
        kernel_update(k1, &apanel, &bpanel, &mut split, ldc, 0, 0, MR, NR);
        kernel_update(
            k2,
            &apanel[k1 * MR..],
            &bpanel[k1 * NR..],
            &mut split,
            ldc,
            0,
            0,
            MR,
            NR,
        );
        let mut whole = vec![0.0; MR * ldc];
        kernel_update(ka, &apanel, &bpanel, &mut whole, ldc, 0, 0, MR, NR);
        assert_eq!(split, whole);
    }

    #[test]
    fn avx512_kernel_update_never_touches_padding_lanes() {
        if !avx512_available() {
            return;
        }
        let kc = 3;
        let apanel = vec![1.0; kc * MR];
        let bpanel = vec![1.0; kc * NR];
        let ldc = NR;
        let mut c = vec![f64::NAN; MR * ldc];
        // Valid corner 1×2 only; everything else must stay NaN.
        c[0] = 0.0;
        c[1] = 0.0;
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, 1, 2);
        assert_eq!(c[0], kc as f64);
        assert_eq!(c[1], kc as f64);
        for (i, v) in c.iter().enumerate().skip(2) {
            assert!(v.is_nan(), "lane {i} was written");
        }
    }

    #[test]
    fn avx512_tile_matches_the_fma_tile_bitwise() {
        if !avx512_available() || !KernelBackend::Fma.is_supported() {
            return;
        }
        // Same fused ascending-k contract ⇒ the tiers must agree
        // bitwise on a shared logical tile. The panels are packed per
        // tier (different MR), the logical A rows are identical.
        let kc = 13;
        let arow = |i: usize, k: usize| ((i * 31 + k * 7) % 17) as f64 / 8.0 - 1.0;
        let bval = |k: usize, j: usize| ((k * 13 + j * 5) % 19) as f64 / 8.0 - 1.0;
        let a512: Vec<f64> = (0..kc * MR).map(|x| arow(x % MR, x / MR)).collect();
        let b512: Vec<f64> = (0..kc * NR).map(|x| bval(x / NR, x % NR)).collect();
        let mut c512 = vec![0.0; MR * NR];
        kernel_update(kc, &a512, &b512, &mut c512, NR, 0, 0, MR, NR);

        use super::super::fma;
        let afma: Vec<f64> = (0..kc * fma::MR)
            .map(|x| arow(x % fma::MR, x / fma::MR))
            .collect();
        let bfma: Vec<f64> = (0..kc * fma::NR)
            .map(|x| bval(x / fma::NR, x % fma::NR))
            .collect();
        let mut cfma = vec![0.0; fma::MR * fma::NR];
        fma::kernel_update(kc, &afma, &bfma, &mut cfma, fma::NR, 0, 0, fma::MR, fma::NR);

        // Compare the overlapping 6×8 corner (fma::MR = 6 rows).
        for i in 0..fma::MR {
            for j in 0..fma::NR.min(NR) {
                assert_eq!(
                    c512[i * NR + j].to_bits(),
                    cfma[i * fma::NR + j].to_bits(),
                    "element ({i},{j})"
                );
            }
        }
    }
}
