//! The register-blocked micro-kernel: one `MR × NR` tile of `C`,
//! accumulated entirely in registers.
//!
//! Per `k` step the kernel reads `MR` packed `A` lanes and `NR` packed
//! `B` lanes and performs `MR × NR` multiply-adds into a fixed-size
//! accumulator array. The loops run over `[f64; MR]`/`[f64; NR]` array
//! references so the autovectorizer unrolls them fully and emits wide
//! multiply-add lanes across the `NR` dimension (FMA where the target
//! enables it). Vectorization is across *independent output elements*,
//! never across `k`, so the per-element operation order is exactly the
//! ascending-`k` order of the naive triple loop — the bitwise contract
//! `kernel` documents.
//!
//! Tile shape: `NR = 8` puts two 4-lane (AVX) or four 2-lane (SSE2)
//! vectors in flight per `A` lane. `MR = 4` when wide registers are
//! available (the 4×8 accumulator block fills 8 of 16 YMM registers,
//! leaving room for the `B` lanes and broadcasts); `MR = 2` on bare
//! x86-64, where 16 XMM registers cannot hold a 4×8 block without
//! spilling to the stack every iteration. The choice only affects
//! speed, never results.

/// Micro-tile rows (`A` panel height).
#[cfg(target_feature = "avx")]
pub(crate) const MR: usize = 4;
/// Micro-tile rows (`A` panel height).
#[cfg(not(target_feature = "avx"))]
pub(crate) const MR: usize = 2;

/// Micro-tile columns (`B` panel width).
pub(crate) const NR: usize = 8;

/// Accumulate `kc` rank-1 updates of one packed-`A` × packed-`B` panel
/// pair into `acc`.
#[inline(always)]
fn micro_tile(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [[f64; NR]; MR]) {
    let asteps = apanel.chunks_exact(MR).take(kc);
    let bsteps = bpanel.chunks_exact(NR).take(kc);
    for (a, b) in asteps.zip(bsteps) {
        // Fixed-size views: lets the compiler drop every bounds check
        // and fully unroll both register loops.
        let a: &[f64; MR] = a.try_into().expect("chunk is MR long");
        let b: &[f64; NR] = b.try_into().expect("chunk is NR long");
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * b[j];
            }
        }
    }
}

/// Copy the `mr_eff × nr_eff` valid corner of the `C` tile at
/// `(tile_row, tile_col)` into a zero-initialized `M × N` stack
/// scratch tile. Shared by every tier's edge-tile path (`M`/`N` are
/// the tier's micro-tile dimensions): the vector loops then run over
/// the scratch tile at full width and never read past `C`; padding
/// lanes start at `0.0` and accumulate only discarded garbage.
#[inline]
pub(crate) fn load_edge_tile<const M: usize, const N: usize>(
    c: &[f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) -> [[f64; N]; M] {
    let mut tile = [[0.0_f64; N]; M];
    for (i, trow) in tile.iter_mut().enumerate().take(mr_eff) {
        let off = (tile_row + i) * ldc + tile_col;
        trow[..nr_eff].copy_from_slice(&c[off..off + nr_eff]);
    }
    tile
}

/// Write the `mr_eff × nr_eff` valid corner of an `M × N` scratch tile
/// back to `C` — the counterpart of [`load_edge_tile`]. Padding lanes
/// are never written, so neighbouring `C` elements (other tiles' data,
/// or rows past the matrix edge) are untouched.
#[inline]
pub(crate) fn store_edge_tile<const M: usize, const N: usize>(
    tile: &[[f64; N]; M],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (i, trow) in tile.iter().enumerate().take(mr_eff) {
        let off = (tile_row + i) * ldc + tile_col;
        c[off..off + nr_eff].copy_from_slice(&trow[..nr_eff]);
    }
}

/// Load the `mr_eff × nr_eff` valid corner of the `C` tile at
/// `(tile_row, tile_col)`, extend it by `kc` packed rank-1 updates, and
/// store the valid corner back.
///
/// Loading `C` first (rather than accumulating from zero and adding at
/// writeback) is what keeps multi-`KC`-block products in strictly
/// ascending `k` order per element. Padding lanes compute garbage from
/// the packed zeros and are never written back.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn kernel_update(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    if mr_eff == MR && nr_eff == NR {
        let mut acc = [[0.0_f64; NR]; MR];
        for (i, arow) in acc.iter_mut().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            arow.copy_from_slice(&c[off..off + NR]);
        }
        micro_tile(kc, apanel, bpanel, &mut acc);
        for (i, arow) in acc.iter().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            c[off..off + NR].copy_from_slice(arow);
        }
    } else {
        let mut acc = load_edge_tile::<MR, NR>(c, ldc, tile_row, tile_col, mr_eff, nr_eff);
        micro_tile(kc, apanel, bpanel, &mut acc);
        store_edge_tile(&acc, c, ldc, tile_row, tile_col, mr_eff, nr_eff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_tile_is_ascending_k_per_element() {
        let kc = 5;
        let apanel: Vec<f64> = (0..kc * MR).map(|i| (i as f64).sin()).collect();
        let bpanel: Vec<f64> = (0..kc * NR).map(|i| (i as f64).cos()).collect();
        let mut acc = [[0.0; NR]; MR];
        micro_tile(kc, &apanel, &bpanel, &mut acc);
        for i in 0..MR {
            for j in 0..NR {
                // Scalar ascending-k reference with a single accumulator.
                let mut want = 0.0_f64;
                for k in 0..kc {
                    want += apanel[k * MR + i] * bpanel[k * NR + j];
                }
                assert_eq!(acc[i][j], want, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn kernel_update_extends_partial_sums_in_order() {
        // Two KC blocks back to back must equal one pass over the
        // concatenated k range, bitwise.
        let (k1, k2) = (3usize, 4usize);
        let ka = k1 + k2;
        let apanel: Vec<f64> = (0..ka * MR).map(|i| 1.0 / (i + 1) as f64).collect();
        let bpanel: Vec<f64> = (0..ka * NR).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let ldc = NR + 3;
        let mut split = vec![0.0; MR * ldc];
        kernel_update(k1, &apanel, &bpanel, &mut split, ldc, 0, 0, MR, NR);
        kernel_update(
            k2,
            &apanel[k1 * MR..],
            &bpanel[k1 * NR..],
            &mut split,
            ldc,
            0,
            0,
            MR,
            NR,
        );
        let mut whole = vec![0.0; MR * ldc];
        kernel_update(ka, &apanel, &bpanel, &mut whole, ldc, 0, 0, MR, NR);
        assert_eq!(split, whole);
    }

    #[test]
    fn edge_tile_helpers_roundtrip_only_the_valid_corner() {
        let ldc = 7;
        let c: Vec<f64> = (0..4 * ldc).map(|i| i as f64).collect();
        let tile = load_edge_tile::<3, 4>(&c, ldc, 1, 2, 2, 3);
        // Valid corner copied, padding zero-initialized.
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(tile[i][j], c[(1 + i) * ldc + 2 + j]);
            }
            assert_eq!(tile[i][3], 0.0);
        }
        assert_eq!(tile[2], [0.0; 4]);
        // Store writes the corner back and nothing else.
        let mut out = vec![f64::NAN; c.len()];
        store_edge_tile(&tile, &mut out, ldc, 1, 2, 2, 3);
        for (idx, v) in out.iter().enumerate() {
            let (i, j) = (idx / ldc, idx % ldc);
            if (1..3).contains(&i) && (2..5).contains(&j) {
                assert_eq!(*v, c[idx], "corner ({i},{j})");
            } else {
                assert!(v.is_nan(), "lane ({i},{j}) was written");
            }
        }
    }

    #[test]
    fn kernel_update_never_touches_padding_lanes() {
        let kc = 2;
        let apanel = vec![1.0; kc * MR];
        let bpanel = vec![1.0; kc * NR];
        let ldc = NR;
        let mut c = vec![f64::NAN; MR * ldc];
        // Valid corner 1×2 only; everything else must stay NaN.
        c[0] = 0.0;
        c[1] = 0.0;
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, 1, 2);
        assert_eq!(c[0], kc as f64);
        assert_eq!(c[1], kc as f64);
        for (i, v) in c.iter().enumerate().skip(2) {
            assert!(v.is_nan(), "lane {i} was written");
        }
    }
}
