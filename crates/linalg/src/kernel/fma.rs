//! The AVX2+FMA micro-kernel tier: one `6 × 8` tile of `C` in twelve
//! YMM accumulators, extended by explicit `_mm256_fmadd_pd` steps.
//!
//! # Numeric contract
//!
//! Each fused multiply-add computes `a·b + acc` with a **single**
//! rounding, so this tier cannot be bitwise identical to the portable
//! mul-then-add kernel. Instead it is pinned bitwise against the
//! [`f64::mul_add`] ascending-`k` triple loop (realized by
//! [`gemm_reference_fma`]): per output element the tile performs
//! exactly one fused multiply-add per `k`, in strictly ascending `k`
//! order, into a single accumulator lane. Everything that made the
//! portable contract hold transfers verbatim — the `KC` loop stays
//! outside the tiles (`C` is loaded, extended, stored), vectorization
//! is across output lanes (never across `k`), and edge tiles are
//! zero-padded in the packed panels (`fma(0, x, acc)` only ever lands
//! in discarded padding lanes). Against the portable tier the result
//! differs by at most one rounding per `k`-term, which the property
//! tests bound at `≤ 1e-12` relative.
//!
//! # Tile shape and unrolling
//!
//! `MR = 6`, `NR = 8`: the accumulator block is 6 rows × 2 YMM lanes
//! = 12 of the 16 YMM registers, leaving two for the broadcast `B`
//! lanes and one for the `A` broadcast — the classic 6×8 f64 AVX2
//! shape. The `k` loop is unrolled ×4 to hide the 4-cycle FMA latency
//! behind the 2-per-cycle issue width; the unroll only repeats whole
//! `k` steps, so it cannot reorder any per-element accumulation.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`; the allow below scopes the
//! exception). The intrinsics require AVX2+FMA at runtime; the safe
//! entry point [`kernel_update`] asserts
//! [`super::dispatch::KernelBackend::is_supported`] (a cached CPUID
//! check) before entering the `#[target_feature]` function, so the
//! unsafe call is sound on every path — including a caller that
//! bypasses the dispatcher. All pointer arithmetic stays inside the
//! bounds-checked slices the safe wrapper receives; the packed-panel
//! length preconditions are `debug_assert`ed and guaranteed by
//! [`super::pack`].
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
use super::dispatch::KernelBackend;
use super::Operand;

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_storeu_pd};

/// Micro-tile rows (`A` panel height) of the FMA tier.
pub(crate) const MR: usize = 6;
/// Micro-tile columns (`B` panel width) of the FMA tier.
pub(crate) const NR: usize = 8;

/// Load the `mr_eff × nr_eff` valid corner of the `C` tile, extend it
/// by `kc` fused rank-1 updates, and store the valid corner back —
/// the FMA counterpart of [`super::micro::kernel_update`], same
/// signature so the macro loop dispatches over plain function values.
///
/// # Panics
///
/// Panics if the CPU lacks AVX2+FMA; the dispatcher never routes here
/// in that case.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
pub(crate) fn kernel_update(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        KernelBackend::Fma.is_supported(),
        "FMA micro-kernel invoked without runtime AVX2+FMA support"
    );
    // SAFETY: the assertion above proves `avx2` and `fma` are available
    // on the executing CPU, which is the only precondition of the
    // `#[target_feature]` function.
    unsafe {
        kernel_update_avx2(
            kc, apanel, bpanel, c, ldc, tile_row, tile_col, mr_eff, nr_eff,
        )
    }
}

/// Non-x86_64 stub so the module always compiles; the dispatcher can
/// never select [`KernelBackend::Fma`] on these targets.
#[allow(clippy::too_many_arguments)]
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn kernel_update(
    _kc: usize,
    _apanel: &[f64],
    _bpanel: &[f64],
    _c: &mut [f64],
    _ldc: usize,
    _tile_row: usize,
    _tile_col: usize,
    _mr_eff: usize,
    _nr_eff: usize,
) {
    unreachable!("FMA backend is never selected on non-x86_64 targets");
}

/// One fused `k` step: broadcast each of the `MR` packed `A` lanes and
/// fold `a · b` into both YMM halves of its accumulator row. A macro
/// (not a helper function) so the body expands textually inside the
/// `#[target_feature]` region and inlining can never be defeated.
#[cfg(target_arch = "x86_64")]
macro_rules! fma_k_step {
    ($ap:expr, $bp:expr, $k:expr, $acc:expr) => {{
        let b0 = _mm256_loadu_pd($bp.add($k * NR));
        let b1 = _mm256_loadu_pd($bp.add($k * NR + 4));
        let mut i = 0;
        while i < MR {
            let ai = _mm256_set1_pd(*$ap.add($k * MR + i));
            $acc[i][0] = _mm256_fmadd_pd(ai, b0, $acc[i][0]);
            $acc[i][1] = _mm256_fmadd_pd(ai, b1, $acc[i][1]);
            i += 1;
        }
    }};
}

/// # Safety
///
/// Requires `avx2` and `fma` on the executing CPU. Slice bounds are
/// honored on every access: the `C` accesses go through index ranges,
/// and the raw-pointer panel reads are `debug_assert`ed against the
/// panel lengths (guaranteed by the packing layer).
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_update_avx2(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    c: &mut [f64],
    ldc: usize,
    tile_row: usize,
    tile_col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(apanel.len() >= kc * MR);
    debug_assert!(bpanel.len() >= kc * NR);
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    let mut acc = [[unsafe { core::mem::zeroed() }; 2]; MR];
    if mr_eff == MR && nr_eff == NR {
        for (i, arow) in acc.iter_mut().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            let crow = &c[off..off + NR];
            // SAFETY: `crow` holds NR = 8 contiguous f64s.
            arow[0] = unsafe { _mm256_loadu_pd(crow.as_ptr()) };
            arow[1] = unsafe { _mm256_loadu_pd(crow.as_ptr().add(4)) };
        }
        // SAFETY: the k-step macro reads `ap[k*MR..k*MR+MR]` and
        // `bp[k*NR..k*NR+NR]` for k < kc, within the asserted lengths.
        unsafe {
            let mut k = 0;
            while k + 4 <= kc {
                fma_k_step!(ap, bp, k, acc);
                fma_k_step!(ap, bp, k + 1, acc);
                fma_k_step!(ap, bp, k + 2, acc);
                fma_k_step!(ap, bp, k + 3, acc);
                k += 4;
            }
            while k < kc {
                fma_k_step!(ap, bp, k, acc);
                k += 1;
            }
        }
        for (i, arow) in acc.iter().enumerate() {
            let off = (tile_row + i) * ldc + tile_col;
            let crow = &mut c[off..off + NR];
            // SAFETY: `crow` holds NR = 8 contiguous f64s.
            unsafe {
                _mm256_storeu_pd(crow.as_mut_ptr(), arow[0]);
                _mm256_storeu_pd(crow.as_mut_ptr().add(4), arow[1]);
            }
        }
    } else {
        // Edge tile: stage the valid corner through a stack scratch
        // tile (shared helpers in `super::micro`) so the vector loop
        // never reads or writes past `C`. Padding lanes accumulate
        // garbage from the packed zeros (exactly `fma(0, x, 0)`
        // chains) and are discarded.
        let mut tile =
            super::micro::load_edge_tile::<MR, NR>(c, ldc, tile_row, tile_col, mr_eff, nr_eff);
        for (i, arow) in acc.iter_mut().enumerate() {
            // SAFETY: each scratch row holds NR = 8 contiguous f64s.
            arow[0] = unsafe { _mm256_loadu_pd(tile[i].as_ptr()) };
            arow[1] = unsafe { _mm256_loadu_pd(tile[i].as_ptr().add(4)) };
        }
        // SAFETY: same panel-bounds argument as the full-tile path.
        unsafe {
            let mut k = 0;
            while k + 4 <= kc {
                fma_k_step!(ap, bp, k, acc);
                fma_k_step!(ap, bp, k + 1, acc);
                fma_k_step!(ap, bp, k + 2, acc);
                fma_k_step!(ap, bp, k + 3, acc);
                k += 4;
            }
            while k < kc {
                fma_k_step!(ap, bp, k, acc);
                k += 1;
            }
        }
        for (i, arow) in acc.iter().enumerate() {
            // SAFETY: each scratch row holds NR = 8 contiguous f64s.
            unsafe {
                _mm256_storeu_pd(tile[i].as_mut_ptr(), arow[0]);
                _mm256_storeu_pd(tile[i].as_mut_ptr().add(4), arow[1]);
            }
        }
        super::micro::store_edge_tile(&tile, c, ldc, tile_row, tile_col, mr_eff, nr_eff);
    }
}

/// Scalar reference GEMM with fused multiply-adds: per output element,
/// one [`f64::mul_add`] per `k`-term in strictly ascending order —
/// the semantics the FMA tile is pinned against bitwise, and the
/// sub-crossover fallback when the FMA backend is active (so routing
/// through [`super::use_packed`] stays unobservable per backend). The
/// loop nest mirrors [`super::gemm_reference`] arm for arm.
pub(crate) fn gemm_reference_fma(
    a: &Operand,
    b: &Operand,
    first_row: usize,
    block: &mut [f64],
    n: usize,
    kdim: usize,
    upper_only: bool,
) {
    if n == 0 {
        return;
    }
    let mb = block.len() / n;
    for li in 0..mb {
        let i = first_row + li;
        let row = &mut block[li * n..(li + 1) * n];
        let j0 = if upper_only { i.min(n) } else { 0 };
        match (a, b) {
            // B row-major: middle-k loop, fused axpy of B's row k.
            (_, Operand::N(bm)) => {
                for k in 0..kdim {
                    let aik = a.at(i, k);
                    let brow = &bm.row(k)[j0..n];
                    for (o, &bv) in row[j0..].iter_mut().zip(brow) {
                        *o = aik.mul_add(bv, *o);
                    }
                }
            }
            // A and Bᵀ both row-major along k: per-element fused dot.
            (Operand::N(am), Operand::T(bm)) => {
                let arow = am.row(i);
                for (j, o) in row.iter_mut().enumerate().skip(j0) {
                    let mut acc = *o;
                    for (&av, &bv) in arow.iter().zip(bm.row(j)) {
                        acc = av.mul_add(bv, acc);
                    }
                    *o = acc;
                }
            }
            // Doubly transposed: strided fallback (unused by the
            // crate's products, kept for completeness).
            (Operand::T(_), Operand::T(bm)) => {
                for (j, o) in row.iter_mut().enumerate().skip(j0) {
                    let mut acc = *o;
                    for k in 0..kdim {
                        acc = a.at(i, k).mul_add(bm.at(j, k), acc);
                    }
                    *o = acc;
                }
            }
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    fn fma_available() -> bool {
        KernelBackend::Fma.is_supported()
    }

    #[test]
    fn fma_tile_is_fused_ascending_k_per_element() {
        if !fma_available() {
            return;
        }
        let kc = 9; // exercises both the ×4 unroll and the remainder
        let apanel: Vec<f64> = (0..kc * MR).map(|i| (i as f64).sin()).collect();
        let bpanel: Vec<f64> = (0..kc * NR).map(|i| (i as f64).cos()).collect();
        let ldc = NR;
        let mut c = vec![0.0; MR * ldc];
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, MR, NR);
        for i in 0..MR {
            for j in 0..NR {
                // Scalar fused ascending-k reference, one accumulator.
                let mut want = 0.0_f64;
                for k in 0..kc {
                    want = apanel[k * MR + i].mul_add(bpanel[k * NR + j], want);
                }
                assert_eq!(c[i * ldc + j], want, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn fma_kernel_update_extends_partial_sums_in_order() {
        if !fma_available() {
            return;
        }
        // Two KC blocks back to back must equal one pass over the
        // concatenated k range, bitwise — the load/extend/store
        // contract that keeps multi-block products ascending in k.
        let (k1, k2) = (5usize, 7usize);
        let ka = k1 + k2;
        let apanel: Vec<f64> = (0..ka * MR).map(|i| 1.0 / (i + 1) as f64).collect();
        let bpanel: Vec<f64> = (0..ka * NR).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let ldc = NR + 3;
        let mut split = vec![0.0; MR * ldc];
        kernel_update(k1, &apanel, &bpanel, &mut split, ldc, 0, 0, MR, NR);
        kernel_update(
            k2,
            &apanel[k1 * MR..],
            &bpanel[k1 * NR..],
            &mut split,
            ldc,
            0,
            0,
            MR,
            NR,
        );
        let mut whole = vec![0.0; MR * ldc];
        kernel_update(ka, &apanel, &bpanel, &mut whole, ldc, 0, 0, MR, NR);
        assert_eq!(split, whole);
    }

    #[test]
    fn fma_kernel_update_never_touches_padding_lanes() {
        if !fma_available() {
            return;
        }
        let kc = 3;
        let apanel = vec![1.0; kc * MR];
        let bpanel = vec![1.0; kc * NR];
        let ldc = NR;
        let mut c = vec![f64::NAN; MR * ldc];
        // Valid corner 1×2 only; everything else must stay NaN.
        c[0] = 0.0;
        c[1] = 0.0;
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, 1, 2);
        assert_eq!(c[0], kc as f64);
        assert_eq!(c[1], kc as f64);
        for (i, v) in c.iter().enumerate().skip(2) {
            assert!(v.is_nan(), "lane {i} was written");
        }
    }

    #[test]
    fn fused_and_portable_tiles_agree_on_exact_inputs() {
        if !fma_available() {
            return;
        }
        // Small integers: every product and sum is exact, so fused
        // and mul-then-add rounding coincide and the two tiers must
        // agree bitwise.
        let kc = 4;
        let apanel: Vec<f64> = (0..kc * MR).map(|i| ((i % 7) as f64) - 3.0).collect();
        let bpanel: Vec<f64> = (0..kc * NR).map(|i| ((i % 5) as f64) - 2.0).collect();
        let ldc = NR;
        let mut c = vec![0.0; MR * ldc];
        kernel_update(kc, &apanel, &bpanel, &mut c, ldc, 0, 0, MR, NR);
        for i in 0..MR {
            for j in 0..NR {
                let mut want = 0.0_f64;
                for k in 0..kc {
                    want += apanel[k * MR + i] * bpanel[k * NR + j];
                }
                assert_eq!(c[i * ldc + j], want);
            }
        }
    }
}
