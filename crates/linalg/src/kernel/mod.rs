//! Packed, cache-blocked GEMM: the BLAS-class kernel layer.
//!
//! Every matrix product in this crate bottoms out here. The layer
//! follows the classic BLIS/GotoBLAS decomposition of a general matrix
//! multiply `C += A·B`:
//!
//! * **Panel packing** (`pack`). The operands are copied, one cache
//!   block at a time, into contiguous *panels*: `A` into `MR`-row
//!   panels laid out k-major (`[k][MR]`), `B` into `NR`-column panels
//!   (`[k][NR]`). Packing pays one pass of memory traffic to make every
//!   subsequent micro-kernel read perfectly sequential and
//!   stride-free, and it absorbs all four operand orientations
//!   (`A·B`, `A·Bᵀ`, `Aᵀ·B`, `AᵀA`) so a single micro-kernel serves
//!   every product in the crate.
//! * **Cache blocking.** Loops over `NC`-wide column blocks of `C`
//!   (packed `B` stays in L2/L3), `KC`-deep slices of the shared
//!   dimension (one packed `A` block stays in L2), and `MC`-tall row
//!   blocks, following [`Tiles`].
//! * **Register-blocked micro-kernel** (`micro`, `fma`, and `avx512`).
//!   The innermost unit computes an `MR × NR` tile of `C` held entirely
//!   in accumulator registers, reading one `MR`-slice of packed `A` and
//!   one `NR`-slice of packed `B` per `k` step. Three tiers exist: the
//!   portable tile (`micro`, loops over fixed-size arrays the
//!   autovectorizer unrolls), the AVX2+FMA tile (`fma`, explicit
//!   `std::arch` intrinsics with a wider 6×8 shape and a ×4-unrolled
//!   `k` loop), and the AVX-512 tile (`avx512`, an 8×8 shape whose
//!   accumulator rows are whole ZMM registers, same ×4 unroll).
//!
//! # Backend dispatch
//!
//! Which tier runs is a process-wide choice made once by the dispatch
//! module:
//! runtime CPU feature detection (`is_x86_feature_detected!`) picks
//! the widest supported tier — [`KernelBackend::Avx512`] when
//! `avx512f`+`avx512vl` are present, else [`KernelBackend::Fma`] when
//! `avx2`+`fma` are — and the `NETANOM_KERNEL=portable|fma|avx512`
//! environment variable overrides it.
//! [`Matrix`]'s product methods route through [`active_backend`]; the
//! explicit `*_with` entry points ([`matmul_with`],
//! [`matmul_nt_with`], [`matmul_tn_with`], [`gram_with`]) run a chosen
//! backend for tests, benches, and the pinned-portable SPE path.
//!
//! # Accumulation-order contract (three tiers, two roundings)
//!
//! Per output element, **every** tier accumulates its `k`-terms in
//! strictly ascending order into a single accumulator; the tiers
//! differ only in the rounding of each step:
//!
//! * [`KernelBackend::Portable`] rounds the multiply and the add
//!   separately (`acc += a·b`), making it **bitwise identical to the
//!   naive mul-then-add `i j k` triple loop** — the original kernel
//!   contract, unchanged.
//! * [`KernelBackend::Fma`] and [`KernelBackend::Avx512`] fuse each
//!   step into one rounding (`acc = fma(a, b, acc)`), making both
//!   **bitwise identical to the [`f64::mul_add`] ascending-`k` triple
//!   loop** — and therefore to each other, lane width being invisible
//!   to a per-lane fused chain — and `≤ 1e-12` relative against the
//!   portable tier (one rounding per term).
//!
//! Three design choices guarantee the shared ascending-`k` order:
//!
//! 1. the `KC` loop sits *outside* the row/column tile loops, and each
//!    micro-kernel invocation loads the partial `C` tile, extends it,
//!    and stores it back — so `k`-blocks extend a running sum instead
//!    of being reduced pairwise;
//! 2. vectorization is across independent output elements (the `NR`
//!    lanes), never across `k`, so no reduction is reassociated;
//! 3. edge tiles are zero-padded in the *packed panels* (adding
//!    `+ 0·x` terms only to discarded padding lanes), not handled by a
//!    differently-ordered scalar loop.
//!
//! The reference kernels in this module ([`matmul_reference`],
//! [`matmul_nt_reference`], [`matmul_tn_reference`],
//! [`gram_reference`]) realize the portable tier's order with plain
//! loop nests; `fma::gemm_reference_fma` is the fused counterpart
//! serving both hardware tiers. Each packed tier is pinned against
//! its own reference bitwise in the unit and property tests. Because the portable order also matches
//! the pre-kernel row-axpy/dot implementations, every parity suite
//! that pinned bitwise values across the old code remains valid under
//! `NETANOM_KERNEL=portable` — with one deliberate exception: the old
//! kernels skipped `a[i][k] == 0.0` terms, which made throughput
//! data-dependent and silently dropped NaN/∞ propagation from the
//! skipped `B` row. Neither tier ever skips; `0 × NaN` poisons the
//! product on every path and every backend.
//!
//! # Shape routing
//!
//! [`use_packed`] routes a product to the packed path only when the
//! operand shapes amortize the packing traffic (roughly one tile of
//! useful work); tiny, skinny, or degenerate shapes fall through to
//! the active backend's reference kernel, which follows the same
//! per-element order, so routing is purely a performance decision and
//! never observable in results.

pub(crate) mod avx512;
pub(crate) mod dispatch;
pub(crate) mod fma;
pub(crate) mod micro;
pub(crate) mod pack;

pub use dispatch::{
    active_backend, backend_diagnostics, supported_backends, KernelBackend, ALL_BACKENDS,
};

use crate::{parallel, LinalgError, Matrix, Result};

/// Cache-block sizes for one packed product, in elements (`f64`).
///
/// Chosen for the common 32 KiB L1d / 512 KiB–1 MiB L2 hierarchy:
/// one packed `B` panel (`KC × NR` = 16 KiB) lives in L1 across a whole
/// row of micro-tiles, one packed `A` block (`MC × KC` = 256 KiB) lives
/// in L2 across a whole `NC` sweep, and the packed `B` block
/// (`KC × NC` ≤ 2 MiB) streams from L3. All three clamp to the actual
/// operand dimensions, so small products never over-allocate.
#[derive(Debug, Clone, Copy)]
pub struct Tiles {
    /// Row-block height of packed `A` (`MC`).
    pub mc: usize,
    /// Depth of the shared dimension per packed block (`KC`).
    pub kc: usize,
    /// Column-block width of packed `B` (`NC`).
    pub nc: usize,
}

/// Default `MC` (rows of `A` packed per block).
const MC: usize = 128;
/// Default `KC` (shared-dimension depth per packed block).
const KC: usize = 256;
/// Default `NC` (columns of `B` packed per block).
const NC: usize = 1024;

/// Select cache-block sizes for an `m × k · k × n` product, clamped to
/// the operand dimensions (degenerate dimensions clamp to 1 so the
/// packing loops stay well-formed even for empty edge cases the callers
/// already short-circuit).
pub fn tiles_for(m: usize, k: usize, n: usize) -> Tiles {
    Tiles {
        mc: MC.min(m.max(1)),
        kc: KC.min(k.max(1)),
        nc: NC.min(n.max(1)),
    }
}

/// Minimum multiply-add count before panel packing pays for itself.
///
/// Packing costs one read+write pass over the operands (`O(mk + kn)`
/// per `KC` block); the measured crossover on the workspace's shapes
/// sits near a few tens of thousands of flops. Below it, products route
/// to the bitwise-identical reference kernels.
const MIN_PACKED_FLOPS: usize = 32 * 1024;

/// `true` when an `m × k · k × n` product should take the packed path.
///
/// Requires at least one tile's worth of work in every dimension
/// (`k ≥ 8`, a couple of micro-tile lanes in `m`/`n`) and
/// `MIN_PACKED_FLOPS` of total work; everything else — including the
/// `1 × n`, `n × 1` and empty shapes — degrades gracefully to the
/// reference kernels.
pub fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= 2 && n >= 2 && k >= 8 && m * k * n >= MIN_PACKED_FLOPS
}

/// A borrowed row-major `rows × cols` block of `f64`s — the raw form
/// the kernel layer operates on, so packed products run equally over
/// [`Matrix`] storage and over scratch buffers (the fused SPE kernel
/// centers rows into a stack of scratch blocks and multiplies those).
#[derive(Clone, Copy)]
pub(crate) struct View<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> View<'a> {
    /// View over a whole matrix.
    pub(crate) fn of(m: &'a Matrix) -> Self {
        View {
            data: m.as_slice(),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// View over a raw row-major buffer.
    pub(crate) fn new(data: &'a [f64], rows: usize, cols: usize) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        View { data, rows, cols }
    }

    #[inline]
    fn row(&self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows);
        self.data[i * self.cols + j]
    }
}

/// One GEMM operand: a [`View`] read as-is or transposed.
///
/// The packing layer absorbs the orientation, so the micro-kernel only
/// ever sees contiguous panels regardless of how the operand is stored.
#[derive(Clone, Copy)]
pub(crate) enum Operand<'a> {
    /// Use the view as stored (row-major).
    N(View<'a>),
    /// Use the transpose of the stored view.
    T(View<'a>),
}

impl<'a> Operand<'a> {
    /// Row-major operand over a matrix.
    pub(crate) fn normal(m: &'a Matrix) -> Self {
        Operand::N(View::of(m))
    }

    /// Transposed operand over a matrix.
    pub(crate) fn transposed(m: &'a Matrix) -> Self {
        Operand::T(View::of(m))
    }

    /// Logical element `(i, j)`.
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        match self {
            Operand::N(v) => v.at(i, j),
            Operand::T(v) => v.at(j, i),
        }
    }
}

/// Compute `block += A[first_row..first_row+mb] · B` into a contiguous
/// row block of the output (the unit of the row-parallel fan-out).
///
/// `block` holds `mb` whole rows of width `ldc = n`; `first_row` is the
/// block's global row offset, which only matters for `upper_from`:
/// when `Some(_)`, micro-tiles lying strictly below the main diagonal
/// of the *global* output are skipped (the symmetric `gram` path
/// computes the upper triangle and mirrors afterwards; tiles straddling
/// the diagonal are computed in full — their below-diagonal lanes are
/// bitwise the mirrored values anyway, multiplication being
/// commutative).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_block(
    backend: KernelBackend,
    a: &Operand,
    b: &Operand,
    first_row: usize,
    block: &mut [f64],
    n: usize,
    kdim: usize,
    upper_only: bool,
) {
    match backend {
        KernelBackend::Portable => gemm_block_tiled(
            a,
            b,
            first_row,
            block,
            n,
            kdim,
            upper_only,
            micro::MR,
            micro::NR,
            micro::kernel_update,
        ),
        KernelBackend::Fma => gemm_block_tiled(
            a,
            b,
            first_row,
            block,
            n,
            kdim,
            upper_only,
            fma::MR,
            fma::NR,
            fma::kernel_update,
        ),
        KernelBackend::Avx512 => gemm_block_tiled(
            a,
            b,
            first_row,
            block,
            n,
            kdim,
            upper_only,
            avx512::MR,
            avx512::NR,
            avx512::kernel_update,
        ),
    }
}

/// A backend's tile-update entry point:
/// `(kc, apanel, bpanel, c, ldc, tile_row, tile_col, mr_eff, nr_eff)`.
/// Accumulates one `mr_eff × nr_eff` corner of a micro-tile of `C`
/// from the packed panels.
type TileUpdateFn = fn(usize, &[f64], &[f64], &mut [f64], usize, usize, usize, usize, usize);

/// The shared cache-blocked loop nest, parameterized by the backend's
/// micro-tile shape (`mr × nr`) and tile-update function. `update`
/// must consume panels packed with exactly the `mr`/`nr` it is paired
/// with ([`gemm_block`] keeps the pairing).
#[allow(clippy::too_many_arguments)]
fn gemm_block_tiled(
    a: &Operand,
    b: &Operand,
    first_row: usize,
    block: &mut [f64],
    n: usize,
    kdim: usize,
    upper_only: bool,
    mr: usize,
    nr: usize,
    update: TileUpdateFn,
) {
    debug_assert_eq!(block.len() % n.max(1), 0);
    let Some(mb) = block.len().checked_div(n) else {
        return;
    };
    if mb == 0 || kdim == 0 {
        return;
    }
    let t = tiles_for(mb, kdim, n);
    let mut apack = vec![0.0; t.mc.div_ceil(mr) * mr * t.kc];
    let mut bpack = vec![0.0; t.nc.div_ceil(nr) * nr * t.kc];
    let mut jc = 0;
    while jc < n {
        let ncb = t.nc.min(n - jc);
        let mut pc = 0;
        while pc < kdim {
            let kcb = t.kc.min(kdim - pc);
            pack::pack_b(b, pc, kcb, jc, ncb, nr, &mut bpack);
            let mut ic = 0;
            while ic < mb {
                let mcb = t.mc.min(mb - ic);
                // Whole A block strictly below the diagonal: nothing to
                // compute in the upper-triangle mode.
                if upper_only && jc + ncb <= first_row + ic {
                    ic += mcb;
                    continue;
                }
                pack::pack_a(a, first_row + ic, mcb, pc, kcb, mr, &mut apack);
                macro_kernel(
                    &apack, &bpack, kcb, block, n, ic, mcb, jc, ncb, first_row, upper_only, mr, nr,
                    update,
                );
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// Run the micro-kernel over every `mr × nr` tile of one packed
/// `A`-block × packed `B`-block pair, updating `C` in place.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    apack: &[f64],
    bpack: &[f64],
    kc: usize,
    c: &mut [f64],
    ldc: usize,
    ic: usize,
    mcb: usize,
    jc: usize,
    ncb: usize,
    first_row: usize,
    upper_only: bool,
    mr: usize,
    nr: usize,
    update: TileUpdateFn,
) {
    let a_panels = mcb.div_ceil(mr);
    let b_panels = ncb.div_ceil(nr);
    for jp in 0..b_panels {
        let bpanel = &bpack[jp * kc * nr..(jp + 1) * kc * nr];
        let nr_eff = nr.min(ncb - jp * nr);
        for ip in 0..a_panels {
            let tile_row = ic + ip * mr;
            let tile_col = jc + jp * nr;
            // Upper-triangle mode: skip tiles whose every column lies
            // strictly left of (below) the diagonal.
            if upper_only && tile_col + nr_eff <= first_row + tile_row {
                continue;
            }
            let apanel = &apack[ip * kc * mr..(ip + 1) * kc * mr];
            let mr_eff = mr.min(mcb - ip * mr);
            update(
                kc, apanel, bpanel, c, ldc, tile_row, tile_col, mr_eff, nr_eff,
            );
        }
    }
}

/// Route a sub-crossover (or explicitly un-packed) product to the
/// reference loop nest matching `backend`'s per-step rounding, so the
/// [`use_packed`] routing decision stays unobservable per backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_reference_with(
    backend: KernelBackend,
    a: &Operand,
    b: &Operand,
    first_row: usize,
    block: &mut [f64],
    n: usize,
    kdim: usize,
    upper_only: bool,
) {
    match backend {
        KernelBackend::Portable => gemm_reference(a, b, first_row, block, n, kdim, upper_only),
        // Both hardware tiers share the fused ascending-k contract, so
        // one fused reference loop serves them bitwise-identically.
        KernelBackend::Fma | KernelBackend::Avx512 => {
            fma::gemm_reference_fma(a, b, first_row, block, n, kdim, upper_only)
        }
    }
}

/// Reference GEMM `A·B` — the naive ascending-`k` row-axpy triple loop
/// the packed kernel is pinned against (and the fallback for shapes too
/// small to amortize packing). No zero-skip: `0 × NaN` propagates.
///
/// Returns an error if `a.cols() != b.rows()`.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(crate::LinalgError::DimensionMismatch {
            op: "matmul_reference",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_reference(
        &Operand::normal(a),
        &Operand::normal(b),
        0,
        out.data_mut(),
        b.cols(),
        a.cols(),
        false,
    );
    Ok(out)
}

/// Reference `A·Bᵀ` (`b` stored `n × k`), ascending-`k` per element.
///
/// Returns an error if `a.cols() != b.cols()`.
pub fn matmul_nt_reference(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(crate::LinalgError::DimensionMismatch {
            op: "matmul_nt_reference",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.rows());
    gemm_reference(
        &Operand::normal(a),
        &Operand::transposed(b),
        0,
        out.data_mut(),
        b.rows(),
        a.cols(),
        false,
    );
    Ok(out)
}

/// Reference `Aᵀ·B` (`a` stored `k × m`), ascending-`k` per element.
///
/// Returns an error if `a.rows() != b.rows()`.
pub fn matmul_tn_reference(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(crate::LinalgError::DimensionMismatch {
            op: "matmul_tn_reference",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.cols(), b.cols());
    gemm_reference(
        &Operand::transposed(a),
        &Operand::normal(b),
        0,
        out.data_mut(),
        b.cols(),
        a.rows(),
        false,
    );
    Ok(out)
}

/// Reference Gram product `AᵀA`: upper triangle in ascending-`k`
/// (data-row) order, mirrored to the lower triangle. No zero-skip.
pub fn gram_reference(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), a.cols());
    if a.cols() == 0 {
        return out;
    }
    let (n, kdim) = (a.cols(), a.rows());
    gemm_reference(
        &Operand::transposed(a),
        &Operand::normal(a),
        0,
        out.data_mut(),
        n,
        kdim,
        true,
    );
    mirror_upper(&mut out);
    out
}

/// Copy the upper triangle onto the lower one (`out[b][a] = out[a][b]`).
pub(crate) fn mirror_upper(out: &mut Matrix) {
    for a in 0..out.rows() {
        for b in (a + 1)..out.cols() {
            out[(b, a)] = out[(a, b)];
        }
    }
}

/// The shared routed-and-parallel product driver behind the `*_with`
/// entry points: pick packed vs reference by shape, fan the `m` output
/// rows across workers, and run the chosen backend inside each block.
/// Results are independent of both decisions — each output row is
/// computed identically whichever worker owns it and whichever side of
/// the packing crossover the shape lands on.
#[allow(clippy::too_many_arguments)]
fn run_product(
    backend: KernelBackend,
    a: &Operand,
    b: &Operand,
    out: &mut Matrix,
    m: usize,
    n: usize,
    kdim: usize,
    upper_only: bool,
    flops: usize,
    weight: impl Fn(usize) -> f64,
) {
    let packed = use_packed(m, kdim, n);
    let workers = parallel::workers_for(flops, m);
    let boundaries = parallel::balanced_boundaries(m, workers, weight);
    parallel::for_row_blocks(out.data_mut(), n, &boundaries, |first_row, block| {
        if packed {
            gemm_block(backend, a, b, first_row, block, n, kdim, upper_only);
        } else {
            gemm_reference_with(backend, a, b, first_row, block, n, kdim, upper_only);
        }
    });
}

/// `a · b` on an explicitly chosen backend — the entry point behind
/// [`Matrix::matmul`] (which passes [`active_backend`]), used directly
/// by tests and benches that must pin a tier regardless of environment.
///
/// # Panics
///
/// Panics if `backend` is not supported on this CPU (see
/// [`KernelBackend::is_supported`]). Returns an error if
/// `a.cols() != b.rows()`.
pub fn matmul_with(backend: KernelBackend, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    assert!(
        backend.is_supported(),
        "kernel backend '{}' is not supported on this CPU",
        backend.name()
    );
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.as_slice().is_empty() {
        return Ok(out);
    }
    let (m, n, kdim) = (a.rows(), b.cols(), a.cols());
    let (lhs_op, rhs_op) = (Operand::normal(a), Operand::normal(b));
    run_product(
        backend,
        &lhs_op,
        &rhs_op,
        &mut out,
        m,
        n,
        kdim,
        false,
        m * kdim * n,
        |_| 1.0,
    );
    Ok(out)
}

/// `a · bᵀ` (`b` stored `n × k`) on an explicitly chosen backend; see
/// [`matmul_with`] for the dispatch and panic rules. Returns an error
/// if `a.cols() != b.cols()`.
pub fn matmul_nt_with(backend: KernelBackend, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    assert!(
        backend.is_supported(),
        "kernel backend '{}' is not supported on this CPU",
        backend.name()
    );
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_nt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.rows());
    if out.as_slice().is_empty() {
        return Ok(out);
    }
    let (m, n, kdim) = (a.rows(), b.rows(), a.cols());
    let (lhs_op, rhs_op) = (Operand::normal(a), Operand::transposed(b));
    run_product(
        backend,
        &lhs_op,
        &rhs_op,
        &mut out,
        m,
        n,
        kdim,
        false,
        m * kdim * n,
        |_| 1.0,
    );
    Ok(out)
}

/// `aᵀ · b` (`a` stored `k × m`, `b` stored `k × n`) on an explicitly
/// chosen backend; see [`matmul_with`] for the dispatch and panic
/// rules. Returns an error if `a.rows() != b.rows()`.
pub fn matmul_tn_with(backend: KernelBackend, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    assert!(
        backend.is_supported(),
        "kernel backend '{}' is not supported on this CPU",
        backend.name()
    );
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_tn",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.as_slice().is_empty() {
        return Ok(out);
    }
    let (m, n, kdim) = (a.cols(), b.cols(), a.rows());
    let (lhs_op, rhs_op) = (Operand::transposed(a), Operand::normal(b));
    run_product(
        backend,
        &lhs_op,
        &rhs_op,
        &mut out,
        m,
        n,
        kdim,
        false,
        m * kdim * n,
        |_| 1.0,
    );
    Ok(out)
}

/// Gram product `aᵀ · a` on an explicitly chosen backend: upper
/// triangle computed (row blocks weighted by their share of it),
/// mirrored to the lower triangle afterwards. See [`matmul_with`] for
/// the dispatch and panic rules.
pub fn gram_with(backend: KernelBackend, a: &Matrix) -> Matrix {
    assert!(
        backend.is_supported(),
        "kernel backend '{}' is not supported on this CPU",
        backend.name()
    );
    let mut out = Matrix::zeros(a.cols(), a.cols());
    if a.cols() == 0 {
        return out;
    }
    let (n, kdim) = (a.cols(), a.rows());
    let (lhs_op, rhs_op) = (Operand::transposed(a), Operand::normal(a));
    run_product(
        backend,
        &lhs_op,
        &rhs_op,
        &mut out,
        n,
        n,
        kdim,
        true,
        kdim * n * n / 2,
        |start| (n - start) as f64,
    );
    mirror_upper(&mut out);
    out
}

/// Scalar reference GEMM over a row block: per output element, terms
/// accumulate in strictly ascending `k` — the order every kernel in
/// this crate honors. Used directly for small shapes and as the pinning
/// reference for the packed path. The loop nest adapts to the operand
/// orientations so both sides are walked contiguously where possible,
/// which changes nothing about the per-element order.
pub(crate) fn gemm_reference(
    a: &Operand,
    b: &Operand,
    first_row: usize,
    block: &mut [f64],
    n: usize,
    kdim: usize,
    upper_only: bool,
) {
    if n == 0 {
        return;
    }
    let mb = block.len() / n;
    for li in 0..mb {
        let i = first_row + li;
        let row = &mut block[li * n..(li + 1) * n];
        let j0 = if upper_only { i.min(n) } else { 0 };
        match (a, b) {
            // B row-major: middle-k loop, axpy of B's row k.
            (_, Operand::N(bm)) => {
                for k in 0..kdim {
                    let aik = a.at(i, k);
                    let brow = &bm.row(k)[j0..n];
                    for (o, &bv) in row[j0..].iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            }
            // A and Bᵀ both row-major along k: per-element dot.
            (Operand::N(am), Operand::T(bm)) => {
                let arow = am.row(i);
                for (j, o) in row.iter_mut().enumerate().skip(j0) {
                    let mut acc = *o;
                    for (&av, &bv) in arow.iter().zip(bm.row(j)) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
            // Doubly transposed: strided fallback (unused by the crate's
            // products, kept for completeness).
            (Operand::T(_), Operand::T(bm)) => {
                for (j, o) in row.iter_mut().enumerate().skip(j0) {
                    let mut acc = *o;
                    for k in 0..kdim {
                        acc += a.at(i, k) * bm.at(j, k);
                    }
                    *o = acc;
                }
            }
        }
    }
}
