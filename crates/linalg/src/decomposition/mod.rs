//! Matrix decompositions.
//!
//! Four decompositions cover everything the subspace method and its
//! baselines need:
//!
//! * [`SymmetricEigen`] — cyclic Jacobi eigendecomposition of a symmetric
//!   matrix. The paper computes principal components by "solving the
//!   symmetric eigenvalue problem for the covariance matrix"; this is that
//!   solver.
//! * [`Svd`] — thin singular value decomposition via one-sided Jacobi
//!   (Hestenes) rotations, the alternative PCA route the paper mentions
//!   ("the standard procedure for this relies on computing the SVD").
//! * [`Qr`] — Householder QR with a least-squares solver, used to fit the
//!   Fourier baseline's basis functions.
//! * [`Cholesky`] — SPD factorization used by the multi-flow identification
//!   extension (Section 7.2) for its small normal-equation solves.
//! * [`TruncatedEigen`] — the top-k eigenpairs only, by blocked subspace
//!   iteration with deflation: the `O(m²k)`-per-sweep refit route the
//!   streaming engines use at large link counts, where a full Jacobi
//!   solve is wasteful (the subspace method keeps `k ≈ 4` axes of `m`).

mod cholesky;
mod jacobi;
mod qr;
mod svd;
mod truncated;

pub use cholesky::Cholesky;
pub use jacobi::SymmetricEigen;
pub use qr::{least_squares, Qr};
pub use svd::Svd;
pub use truncated::{power_traces, TruncatedEigen};
