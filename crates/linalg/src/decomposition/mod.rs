//! Matrix decompositions.
//!
//! Four decompositions cover everything the subspace method and its
//! baselines need:
//!
//! * [`SymmetricEigen`] — cyclic Jacobi eigendecomposition of a symmetric
//!   matrix. The paper computes principal components by "solving the
//!   symmetric eigenvalue problem for the covariance matrix"; this is that
//!   solver.
//! * [`Svd`] — thin singular value decomposition via one-sided Jacobi
//!   (Hestenes) rotations, the alternative PCA route the paper mentions
//!   ("the standard procedure for this relies on computing the SVD").
//! * [`Qr`] — Householder QR with a least-squares solver, used to fit the
//!   Fourier baseline's basis functions.
//! * [`Cholesky`] — SPD factorization used by the multi-flow identification
//!   extension (Section 7.2) for its small normal-equation solves.

mod cholesky;
mod jacobi;
mod qr;
mod svd;

pub use cholesky::Cholesky;
pub use jacobi::SymmetricEigen;
pub use qr::{least_squares, Qr};
pub use svd::Svd;
