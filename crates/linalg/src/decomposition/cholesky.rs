//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with solvers.
///
/// The multi-flow identification extension (paper Section 7.2) estimates
/// the per-flow anomaly intensities `f̂ = (Θ̃ᵀΘ̃)⁻¹ Θ̃ᵀ ỹ`; `Θ̃ᵀΘ̃` is a
/// small SPD Gram matrix, which is exactly Cholesky's home turf.
///
/// # Example
///
/// ```
/// use netanom_linalg::{Matrix, decomposition::Cholesky};
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let ch = Cholesky::new(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// // 4x + 2y = 8, 2x + 3y = 7  ->  x = 1.25, y = 1.5
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor.
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] (with the failing pivot
    /// index) when a diagonal pivot is non-positive, which also covers
    /// symmetric-but-indefinite input. Mild asymmetry is tolerated by
    /// reading only the lower triangle.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty { op: "cholesky" });
        }
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: (a.cols(), a.rows()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b`.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (sum of `2 ln L[i,i]`), handy for
    /// model-selection diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn known_factor() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((ch.l()[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 2)),
            Err(LinalgError::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn solve_validates_rhs_length() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let ch = Cholesky::new(&Matrix::from_diag(&[2.0, 8.0])).unwrap();
        assert!((ch.log_det() - (16.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gram_of_random_full_rank_matrix_is_spd() {
        let a = Matrix::from_fn(12, 4, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let g = a.gram().add(&Matrix::identity(4).scaled(1e-9)).unwrap();
        assert!(Cholesky::new(&g).is_ok());
    }
}
