//! Truncated symmetric eigendecomposition: the top-k eigenpairs by
//! blocked subspace iteration with deflation.
//!
//! The subspace method only ever consumes the leading `k ≈ 4` principal
//! axes of the link-traffic covariance, yet a full Jacobi solve pays
//! `O(m³)` *per sweep* for all `m` of them. [`TruncatedEigen`] computes
//! just the top of the spectrum:
//!
//! * **Blocked subspace iteration.** An `m × b` orthonormal block
//!   (`b = k` plus oversampling) is repeatedly multiplied by `A` — one
//!   GEMM, `O(m²·b)` per sweep — and re-orthonormalized.
//! * **Rayleigh–Ritz extraction.** Each sweep diagonalizes the small
//!   `b × b` projection `QᵀAQ` (a cheap Jacobi solve) and rotates the
//!   block onto the Ritz vectors, so eigenvalue estimates converge
//!   quadratically in the subspace angle.
//! * **Rayleigh-quotient residual stopping rule.** A Ritz pair
//!   `(θ, v)` is accepted when `‖Av − θv‖ ≤ tol · θ₁` — the
//!   backward-error criterion; for a symmetric matrix it bounds the
//!   eigenvalue error by the residual itself (and quadratically via the
//!   spectral gap).
//! * **Deflation.** Accepted pairs are locked: later sweeps
//!   orthogonalize the active block against them and iterate only the
//!   still-unconverged directions, shrinking the per-sweep cost as
//!   pairs converge.
//!
//! Convergence per sweep is geometric in `λ_{b+1}/λ_i`, so the
//! oversampled block converges in a few dozen sweeps on covariance
//! spectra with a knee — the regime the subspace method selects `k`
//! in. A flat, gap-free spectrum at the block boundary converges slowly
//! (the iteration cannot tell near-equal eigendirections apart); the
//! sweep budget bounds that case and surfaces it as
//! [`LinalgError::NonConvergence`].

use crate::decomposition::SymmetricEigen;
use crate::{LinalgError, Matrix, Result};

/// Sweep budget; each sweep costs one `m × m × b` GEMM. Spectra with a
/// relative gap `λ_{b+1}/λ_k ≤ 0.9` converge in well under 300 sweeps
/// at `tol = 1e-12`.
const MAX_SWEEPS: usize = 600;

/// Relative tolerance on the asymmetry check (matches
/// [`SymmetricEigen`]).
const SYMMETRY_RTOL: f64 = 1e-8;

/// Effective floor on the convergence tolerance: residuals cannot be
/// driven below the roundoff of the `A·Q` product.
const TOL_FLOOR: f64 = 1e-14;

/// Extra block columns beyond `k`: oversampling pushes the convergence
/// ratio down to `λ_{b+1}/λ_i` at linear extra cost per sweep.
fn oversampled_block(k: usize, m: usize) -> usize {
    (k + 4 + k / 2).min(m)
}

/// The top-k eigenpairs `A vᵢ = λᵢ vᵢ` of a symmetric matrix,
/// eigenvalues decreasing.
///
/// # Example
///
/// ```
/// use netanom_linalg::{Matrix, decomposition::TruncatedEigen};
/// let a = Matrix::from_diag(&[9.0, 4.0, 1.0, 0.25]);
/// let top = TruncatedEigen::top_k(&a, 2, 1e-12).unwrap();
/// assert!((top.eigenvalues[0] - 9.0).abs() < 1e-9);
/// assert!((top.eigenvalues[1] - 4.0).abs() < 1e-9);
/// assert_eq!(top.eigenvectors.shape(), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct TruncatedEigen {
    /// The `k` largest eigenvalues, decreasing.
    pub eigenvalues: Vec<f64>,
    /// Unit eigenvectors as columns (`m × k`), pairing with
    /// [`TruncatedEigen::eigenvalues`].
    pub eigenvectors: Matrix,
    /// Subspace-iteration sweeps spent (0 when the dense fallback ran).
    pub sweeps: usize,
}

impl TruncatedEigen {
    /// Compute the top-k eigenpairs of a symmetric matrix.
    ///
    /// `tol` is the relative Rayleigh-quotient residual bound: a Ritz
    /// pair is accepted once `‖Av − θv‖ ≤ tol · θ₁` (with `θ₁` the
    /// current largest Ritz value). Eigenvalue accuracy is at worst the
    /// residual and quadratically better across a spectral gap.
    ///
    /// Falls back to the dense Jacobi solve when the oversampled block
    /// would span (nearly) the whole space — tiny matrices or `k` close
    /// to `m` — where iteration saves nothing.
    ///
    /// Errors: [`LinalgError::Empty`] / [`LinalgError::DimensionMismatch`]
    /// / [`LinalgError::NotSymmetric`] on malformed input (including
    /// `k == 0`, `k > m`, or a non-finite/non-positive `tol`), and
    /// [`LinalgError::NonConvergence`] when the sweep budget is spent —
    /// NaN contamination or a gap-free spectrum at the block boundary.
    pub fn top_k(a: &Matrix, k: usize, tol: f64) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty {
                op: "truncated eigendecomposition",
            });
        }
        if !a.is_square() || k == 0 || k > a.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "truncated eigendecomposition (needs square A, 1 <= k <= m)",
                lhs: a.shape(),
                rhs: (k, k),
            });
        }
        if !(tol.is_finite() && tol > 0.0) {
            return Err(LinalgError::DimensionMismatch {
                op: "truncated eigendecomposition (tol must be positive and finite)",
                lhs: a.shape(),
                rhs: (k, k),
            });
        }
        let scale = a.max_abs().max(1.0);
        if let Some(asym) = a.asymmetry() {
            if asym > SYMMETRY_RTOL * scale {
                let mut worst = (0usize, 0usize, 0.0f64);
                for i in 0..a.rows() {
                    for j in (i + 1)..a.cols() {
                        let d = (a[(i, j)] - a[(j, i)]).abs();
                        if d > worst.2 {
                            worst = (i, j, d);
                        }
                    }
                }
                return Err(LinalgError::NotSymmetric {
                    at: (worst.0, worst.1),
                });
            }
        }

        let m = a.rows();
        let block = oversampled_block(k, m);
        // Dense fallback: iteration cannot beat one exact solve when the
        // block spans (nearly) everything.
        if block + 2 >= m {
            let full = SymmetricEigen::new(a)?;
            let idx: Vec<usize> = (0..k).collect();
            return Ok(TruncatedEigen {
                eigenvalues: full.eigenvalues[..k].to_vec(),
                eigenvectors: full.eigenvectors.select_columns(&idx),
                sweeps: 0,
            });
        }

        let tol = tol.max(TOL_FLOOR);
        // Deterministic quasi-random start block (no RNG dependency; the
        // same inputs always produce the same factorization).
        let mut q = Matrix::from_fn(m, block, |i, j| hash_unit(i * block + j));
        let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut locked_vals: Vec<f64> = Vec::with_capacity(k);
        orthonormalize(&mut q, &locked_vecs);

        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS {
            sweeps += 1;
            // One GEMM: Z = A·Q, the O(m²·b) step.
            let z = a.matmul(&q).expect("shapes fixed by construction");
            // Rayleigh–Ritz on the active block: S = QᵀAQ (symmetrized
            // against roundoff), small dense solve, rotate onto the
            // Ritz basis. `matmul_tn` skips the transposed copy of Q.
            let s_raw = q.matmul_tn(&z).expect("b × b");
            let b_active = q.cols();
            let s = Matrix::from_fn(b_active, b_active, |i, j| {
                0.5 * (s_raw[(i, j)] + s_raw[(j, i)])
            });
            let small = SymmetricEigen::new(&s)?;
            let ritz_vecs = q.matmul(&small.eigenvectors).expect("m × b");
            let az = z.matmul(&small.eigenvectors).expect("m × b");

            // Residual check on the leading active pairs: lock the
            // converged prefix (deflation).
            let theta1 = locked_vals
                .first()
                .copied()
                .unwrap_or(small.eigenvalues[0])
                .abs()
                .max(small.eigenvalues[0].abs())
                .max(f64::MIN_POSITIVE);
            // Residual norms for every active Ritz pair in one
            // row-major pass: walking `az` and `ritz_vecs` a row at a
            // time touches memory contiguously, where the textbook
            // per-column loop strides by `b_active` on every step.
            // Each column's sum still accumulates in ascending-row
            // order into its own accumulator, so the values are
            // bitwise what the column-at-a-time loop produced.
            let mut res_sq = vec![0.0f64; b_active];
            for row in 0..m {
                let az_row = az.row(row);
                let rv_row = ritz_vecs.row(row);
                for i in 0..b_active {
                    let r = az_row[i] - small.eigenvalues[i] * rv_row[i];
                    res_sq[i] += r * r;
                }
            }
            let mut newly_locked = 0;
            for i in 0..b_active {
                if locked_vals.len() >= k {
                    break;
                }
                if res_sq[i].sqrt() <= tol * theta1 {
                    locked_vals.push(small.eigenvalues[i]);
                    locked_vecs.push(ritz_vecs.col(i));
                    newly_locked += 1;
                } else {
                    break; // lock only a prefix, preserving order
                }
            }
            if locked_vals.len() >= k {
                let vectors = Matrix::from_fn(m, k, |i, j| locked_vecs[j][i]);
                return Ok(TruncatedEigen {
                    eigenvalues: locked_vals,
                    eigenvectors: vectors,
                    sweeps,
                });
            }

            // Next iterate: the *multiplied* block rotated onto the Ritz
            // basis (`Z·W` spans `range(A·Q)` — this is the power step
            // that advances the subspace), minus the newly locked
            // columns, deflated against everything locked so far.
            let remaining: Vec<usize> = (newly_locked..b_active).collect();
            q = az.select_columns(&remaining);
            orthonormalize(&mut q, &locked_vecs);
        }
        Err(LinalgError::NonConvergence {
            algorithm: "blocked subspace iteration",
            iterations: sweeps,
        })
    }

    /// Top-k eigenpairs of a covariance matrix for a model refit:
    /// eigenvalues that cancellation drove slightly negative are clamped
    /// to zero, mirroring
    /// [`SymmetricEigen::of_covariance`].
    pub fn of_covariance(cov: &Matrix, k: usize, tol: f64) -> Result<Self> {
        let mut eig = Self::top_k(cov, k, tol)?;
        for l in &mut eig.eigenvalues {
            if *l < 0.0 {
                *l = 0.0;
            }
        }
        Ok(eig)
    }

    /// Number of computed eigenpairs `k`.
    pub fn len(&self) -> usize {
        self.eigenvalues.len()
    }

    /// `true` when no eigenpairs were requested (never constructed; kept
    /// for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.eigenvalues.is_empty()
    }
}

/// The first three power-sum traces of a symmetric matrix:
/// `(tr A, tr A², tr A³)` — exactly the spectrum's `Σλ`, `Σλ²`, `Σλ³`
/// without computing the spectrum.
///
/// `tr A` is `O(m)`, `tr A² = ‖A‖²_F` is `O(m²)`, and `tr A³ = ⟨A², A⟩`
/// costs one `m × m` GEMM (`O(m³)` multiply-adds, but a single
/// cache-friendly, row-parallel pass — nothing like an iterative
/// eigensolve's constant). These are what lets a truncated refit keep
/// the Jackson–Mudholkar Q-statistic *exact*: the residual moments are
/// the traces minus the computed leading eigenvalues' contributions.
///
/// # Example
///
/// ```
/// use netanom_linalg::{Matrix, decomposition::power_traces};
/// let a = Matrix::from_diag(&[3.0, 2.0, 1.0]);
/// let (t1, t2, t3) = power_traces(&a).unwrap();
/// assert_eq!(t1, 6.0);
/// assert_eq!(t2, 14.0);
/// assert_eq!(t3, 36.0);
/// ```
pub fn power_traces(a: &Matrix) -> Result<(f64, f64, f64)> {
    if a.is_empty() {
        return Err(LinalgError::Empty { op: "power traces" });
    }
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "power traces",
            lhs: a.shape(),
            rhs: (a.cols(), a.rows()),
        });
    }
    let m = a.rows();
    let mut t1 = 0.0;
    for i in 0..m {
        t1 += a[(i, i)];
    }
    let mut t2 = 0.0;
    for v in a.as_slice() {
        t2 += v * v;
    }
    // A·Aᵀ = A² for symmetric A; ⟨A², A⟩_F = tr A³.
    let a2 = a.matmul_nt(a).expect("square by construction");
    let mut t3 = 0.0;
    for (x, y) in a2.as_slice().iter().zip(a.as_slice()) {
        t3 += x * y;
    }
    Ok((t1, t2, t3))
}

/// Deterministic pseudo-random value in `[-1, 1)` (splitmix64 finalizer).
fn hash_unit(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// In-place modified Gram–Schmidt (two passes for stability) against the
/// locked vectors and the preceding columns. Columns that lose (nearly)
/// all their norm — rank deficiency in the iterate — are replaced by
/// fresh deterministic directions and re-orthogonalized.
fn orthonormalize(q: &mut Matrix, locked: &[Vec<f64>]) {
    let m = q.rows();
    let b = q.cols();
    let mut col = vec![0.0; m];
    for j in 0..b {
        for attempt in 0..3 {
            for (i, v) in col.iter_mut().enumerate() {
                *v = q[(i, j)];
            }
            for _pass in 0..2 {
                for basis in locked.iter() {
                    project_out(&mut col, basis);
                }
                for prev in 0..j {
                    let mut dot = 0.0;
                    for i in 0..m {
                        dot += q[(i, prev)] * col[i];
                    }
                    for (i, v) in col.iter_mut().enumerate() {
                        *v -= dot * q[(i, prev)];
                    }
                }
            }
            let norm = col.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for (i, v) in col.iter().enumerate() {
                    q[(i, j)] = v / norm;
                }
                break;
            }
            // Degenerate column: reseed deterministically and retry.
            for (i, v) in col.iter_mut().enumerate() {
                *v = hash_unit((attempt + 2) * (m * b + 1) + i * b + j);
            }
            for (i, v) in col.iter().enumerate() {
                q[(i, j)] = *v;
            }
        }
    }
}

fn project_out(col: &mut [f64], basis: &[f64]) {
    let mut dot = 0.0;
    for (c, b) in col.iter().zip(basis) {
        dot += c * b;
    }
    for (c, b) in col.iter_mut().zip(basis) {
        *c -= dot * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic symmetric matrix with a decaying spectrum:
    /// `A = Σ λ_j v_j v_jᵀ` over a hash-seeded orthonormal basis.
    fn spectral_matrix(m: usize, lambdas: &[f64], seed: usize) -> Matrix {
        let mut v = Matrix::from_fn(m, m, |i, j| hash_unit(seed * m * m + i * m + j));
        orthonormalize(&mut v, &[]);
        let mut a = Matrix::zeros(m, m);
        for (j, &l) in lambdas.iter().enumerate() {
            let col = v.col(j);
            for r in 0..m {
                for c in 0..m {
                    a[(r, c)] += l * col[r] * col[c];
                }
            }
        }
        // Exact symmetry despite accumulation order.
        Matrix::from_fn(m, m, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
    }

    fn geometric_spectrum(m: usize, ratio: f64) -> Vec<f64> {
        (0..m).map(|i| 1e6 * ratio.powi(i as i32)).collect()
    }

    #[test]
    fn matches_jacobi_on_decaying_spectrum() {
        let m = 40;
        let a = spectral_matrix(m, &geometric_spectrum(m, 0.6), 1);
        let full = SymmetricEigen::new(&a).unwrap();
        let k = 5;
        let top = TruncatedEigen::top_k(&a, k, 1e-12).unwrap();
        assert_eq!(top.len(), k);
        assert!(!top.is_empty());
        assert!(top.sweeps > 0, "expected the iterative path");
        for i in 0..k {
            let rel = (top.eigenvalues[i] - full.eigenvalues[i]).abs() / full.eigenvalues[0];
            assert!(rel < 1e-9, "eigenvalue {i}: rel err {rel:.2e}");
            // Sign-fixed eigenvector parity.
            let tv = top.eigenvectors.col(i);
            let fv = full.eigenvectors.col(i);
            let dot: f64 = tv.iter().zip(&fv).map(|(a, b)| a * b).sum();
            let sign = if dot >= 0.0 { 1.0 } else { -1.0 };
            for (x, y) in tv.iter().zip(&fv) {
                assert!((x - sign * y).abs() < 1e-8, "eigenvector {i} differs");
            }
        }
    }

    #[test]
    fn ritz_pairs_satisfy_definition() {
        let m = 30;
        let a = spectral_matrix(m, &geometric_spectrum(m, 0.5), 2);
        let top = TruncatedEigen::top_k(&a, 4, 1e-12).unwrap();
        for i in 0..4 {
            let v = top.eigenvectors.col(i);
            let av = a.matvec(&v).unwrap();
            for (x, y) in av.iter().zip(&v) {
                assert!(
                    (x - top.eigenvalues[i] * y).abs() <= 1e-7 * top.eigenvalues[0],
                    "pair {i} violates A v = λ v"
                );
            }
        }
        // The returned vectors are orthonormal.
        let g = top.eigenvectors.gram();
        assert!(g.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn dense_fallback_on_tiny_or_wide_requests() {
        let a = spectral_matrix(6, &[5.0, 4.0, 3.0, 2.0, 1.0, 0.5], 3);
        let top = TruncatedEigen::top_k(&a, 5, 1e-12).unwrap();
        assert_eq!(top.sweeps, 0, "should use the dense fallback");
        let full = SymmetricEigen::new(&a).unwrap();
        for i in 0..5 {
            assert!((top.eigenvalues[i] - full.eigenvalues[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn near_degenerate_cluster_converges_on_values() {
        // λ₁ ≈ λ₂ (1e-7 apart): individual vectors may rotate within the
        // cluster, but the values and the invariant subspace must hold.
        let m = 35;
        let mut lambdas = geometric_spectrum(m, 0.4);
        lambdas[1] = lambdas[0] * (1.0 - 1e-7);
        let a = spectral_matrix(m, &lambdas, 4);
        let full = SymmetricEigen::new(&a).unwrap();
        let top = TruncatedEigen::top_k(&a, 3, 1e-11).unwrap();
        for i in 0..3 {
            let rel = (top.eigenvalues[i] - full.eigenvalues[i]).abs() / full.eigenvalues[0];
            assert!(rel < 1e-9, "clustered eigenvalue {i}: rel err {rel:.2e}");
        }
    }

    #[test]
    fn of_covariance_clamps_negative_ritz_values() {
        // A PSD-up-to-roundoff matrix whose smallest computed value can
        // dip below zero: use a rank-deficient spectrum.
        let m = 20;
        let mut lambdas = vec![0.0; m];
        lambdas[0] = 1e8;
        lambdas[1] = 1e7;
        let a = spectral_matrix(m, &lambdas, 5);
        let top = TruncatedEigen::of_covariance(&a, 4, 1e-10).unwrap();
        for &l in &top.eigenvalues {
            assert!(l >= 0.0);
        }
        assert!((top.eigenvalues[0] - 1e8).abs() < 1.0);
    }

    #[test]
    fn rejects_malformed_input() {
        let a = spectral_matrix(10, &geometric_spectrum(10, 0.5), 6);
        assert!(matches!(
            TruncatedEigen::top_k(&Matrix::zeros(0, 0), 1, 1e-10),
            Err(LinalgError::Empty { .. })
        ));
        assert!(TruncatedEigen::top_k(&Matrix::zeros(3, 4), 1, 1e-10).is_err());
        assert!(TruncatedEigen::top_k(&a, 0, 1e-10).is_err());
        assert!(TruncatedEigen::top_k(&a, 11, 1e-10).is_err());
        assert!(TruncatedEigen::top_k(&a, 2, 0.0).is_err());
        assert!(TruncatedEigen::top_k(&a, 2, f64::NAN).is_err());
        let asym = Matrix::from_fn(10, 10, |i, j| if i < j { 5.0 } else { 0.0 });
        assert!(matches!(
            TruncatedEigen::top_k(&asym, 2, 1e-10),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn power_traces_match_spectrum_sums() {
        let m = 25;
        let lambdas = geometric_spectrum(m, 0.7);
        let a = spectral_matrix(m, &lambdas, 7);
        let (t1, t2, t3) = power_traces(&a).unwrap();
        let s1: f64 = lambdas.iter().sum();
        let s2: f64 = lambdas.iter().map(|l| l * l).sum();
        let s3: f64 = lambdas.iter().map(|l| l * l * l).sum();
        assert!((t1 - s1).abs() < 1e-9 * s1);
        assert!((t2 - s2).abs() < 1e-9 * s2);
        assert!((t3 - s3).abs() < 1e-9 * s3);
        assert!(power_traces(&Matrix::zeros(2, 3)).is_err());
        assert!(power_traces(&Matrix::zeros(0, 0)).is_err());
    }
}
