//! Thin SVD via one-sided Jacobi (Hestenes) rotations.

use crate::{vector, LinalgError, Matrix, Result};

/// Maximum number of full sweeps over all column pairs.
const MAX_SWEEPS: usize = 64;

/// Thin singular value decomposition `A = U Σ Vᵀ` of a tall (or square)
/// matrix with `rows ≥ cols`.
///
/// * `u` is `rows × cols` with orthonormal columns,
/// * `sigma` holds the `cols` singular values in decreasing order,
/// * `v` is `cols × cols` orthogonal.
///
/// # Algorithm
///
/// One-sided Jacobi (Hestenes): repeatedly apply plane rotations on the
/// *right* of a working copy `W` of `A`, chosen to orthogonalize pairs of
/// columns of `W`. At convergence the columns of `W` are orthogonal; their
/// norms are the singular values, the normalized columns form `U`, and the
/// accumulated rotations form `V`. The method is simple, backward-stable and
/// computes small singular values to high *relative* accuracy — more than
/// adequate for the ≤ 1008 × 49 matrices in this workspace.
///
/// For a mean-centered data matrix `Y`, the right singular vectors are the
/// principal components and `σₖ²/(t−1)` are the variances captured along
/// them, which is exactly the quantity the subspace method thresholds.
///
/// # Example
///
/// ```
/// use netanom_linalg::{Matrix, decomposition::Svd};
/// let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]);
/// let svd = Svd::new(&a).unwrap();
/// assert!((svd.sigma[0] - 4.0).abs() < 1e-12);
/// assert!((svd.sigma[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns (`rows × cols`).
    pub u: Matrix,
    /// Singular values, decreasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors as columns (`cols × cols`).
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD of `a`.
    ///
    /// Requires `rows ≥ cols` (the data-matrix orientation used throughout
    /// the workspace: timesteps × links). Returns
    /// [`LinalgError::DimensionMismatch`] otherwise and
    /// [`LinalgError::Empty`] for empty input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty { op: "svd" });
        }
        if a.rows() < a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "svd (requires rows >= cols)",
                lhs: a.shape(),
                rhs: (a.cols(), a.rows()),
            });
        }
        let n = a.cols();
        // Work column-wise: w[j] is the j-th column of the working matrix.
        let mut w: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
        let mut v = Matrix::identity(n);

        let frob = a.frobenius_norm().max(f64::MIN_POSITIVE);
        let tol = 1e-15 * frob * frob;

        let mut sweeps = 0;
        loop {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    let alpha = vector::dot(&w[p], &w[p]);
                    let beta = vector::dot(&w[q], &w[q]);
                    let gamma = vector::dot(&w[p], &w[q]);
                    // Columns already orthogonal (relative to their sizes)?
                    if gamma.abs() <= tol || gamma.abs() <= 1e-15 * (alpha * beta).sqrt() {
                        continue;
                    }
                    rotated = true;
                    // Rotation that zeroes the (p,q) entry of WᵀW.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = if zeta >= 0.0 {
                        1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                    } else {
                        -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    for i in 0..w[p].len() {
                        let wip = w[p][i];
                        let wiq = w[q][i];
                        w[p][i] = c * wip - s * wiq;
                        w[q][i] = s * wip + c * wiq;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
            sweeps += 1;
            if !rotated {
                break;
            }
            if sweeps >= MAX_SWEEPS {
                return Err(LinalgError::NonConvergence {
                    algorithm: "one-sided Jacobi SVD",
                    iterations: sweeps,
                });
            }
        }

        // Column norms are the singular values.
        let mut sigma: Vec<f64> = w.iter().map(|col| vector::norm(col)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            sigma[j]
                .partial_cmp(&sigma[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut u = Matrix::zeros(a.rows(), n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut sigma_sorted = Vec::with_capacity(n);
        for (new_j, &old_j) in order.iter().enumerate() {
            let s = sigma[old_j];
            sigma_sorted.push(s);
            if s > 0.0 {
                let unit: Vec<f64> = w[old_j].iter().map(|x| x / s).collect();
                u.set_col(new_j, &unit);
            } else {
                // Null direction: leave the U column zero. Callers that need
                // a full orthonormal U can complete the basis, but the
                // subspace method never uses null columns of U.
                u.set_col(new_j, &vec![0.0; a.rows()]);
            }
            for k in 0..n {
                v_sorted[(k, new_j)] = v[(k, old_j)];
            }
        }
        sigma = sigma_sorted;

        Ok(Svd {
            u,
            sigma,
            v: v_sorted,
        })
    }

    /// Numerical rank: the number of singular values above
    /// `rtol * sigma_max`.
    pub fn rank(&self, rtol: f64) -> usize {
        match self.sigma.first() {
            None | Some(&0.0) => 0,
            Some(&smax) => self.sigma.iter().take_while(|&&s| s > rtol * smax).count(),
        }
    }

    /// Reconstruct `U Σ Vᵀ`; useful for accuracy checks.
    pub fn reconstruct(&self) -> Matrix {
        let us = Matrix::from_fn(self.u.rows(), self.u.cols(), |i, j| {
            self.u[(i, j)] * self.sigma[j]
        });
        us.matmul(&self.v.transpose())
            .expect("shapes are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_known_values() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - 4.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_fn(30, 8, |i, j| {
            ((i * 3 + j * 5) as f64).sin() * (j as f64 + 1.0)
        });
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-9 * a.frobenius_norm()));
    }

    #[test]
    fn u_and_v_orthonormal() {
        // Hash-style fill gives a generic full-rank matrix.
        let a = Matrix::from_fn(25, 6, |i, j| {
            let h = (i * 6 + j).wrapping_mul(2654435761) % 1000;
            h as f64 / 500.0 - 1.0
        });
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 6, "test matrix must be full rank");
        assert!(svd.u.gram().approx_eq(&Matrix::identity(6), 1e-10));
        assert!(svd.v.gram().approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn singular_values_decreasing_and_nonnegative() {
        let a = Matrix::from_fn(40, 10, |i, j| ((i * j + 1) as f64).ln());
        let svd = Svd::new(&a).unwrap();
        for pair in svd.sigma.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns -> rank 1.
        let a = Matrix::from_fn(10, 2, |i, _| (i as f64) + 1.0);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.sigma[1] < 1e-10 * svd.sigma[0]);
    }

    #[test]
    fn zero_matrix() {
        let svd = Svd::new(&Matrix::zeros(5, 3)).unwrap();
        assert_eq!(svd.sigma, vec![0.0, 0.0, 0.0]);
        assert_eq!(svd.rank(1e-12), 0);
    }

    #[test]
    fn rejects_wide_matrix() {
        assert!(matches!(
            Svd::new(&Matrix::zeros(2, 5)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Svd::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn agrees_with_eigendecomposition_of_gram() {
        use crate::decomposition::SymmetricEigen;
        let a = Matrix::from_fn(50, 7, |i, j| {
            ((i as f64) * 0.1).sin() * (j as f64 + 1.0) + ((i * j) as f64 * 0.01).cos()
        });
        let svd = Svd::new(&a).unwrap();
        let eig = SymmetricEigen::new(&a.gram()).unwrap();
        for k in 0..7 {
            let from_eig = eig.eigenvalues[k].max(0.0).sqrt();
            assert!(
                (svd.sigma[k] - from_eig).abs() <= 1e-8 * svd.sigma[0].max(1.0),
                "sigma[{k}]: svd={} eig={}",
                svd.sigma[k],
                from_eig
            );
        }
    }

    #[test]
    fn square_orthogonal_input() {
        // A rotation matrix has all singular values equal to 1.
        let th = 0.7_f64;
        let a = Matrix::from_rows(&[vec![th.cos(), -th.sin()], vec![th.sin(), th.cos()]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - 1.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_fn(4, 1, |i, _| (i + 1) as f64);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - (1.0f64 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-12);
        assert_eq!(svd.v[(0, 0)].abs(), 1.0);
    }
}
