//! Cyclic Jacobi eigendecomposition for symmetric matrices.

use crate::{vector, LinalgError, Matrix, Result};

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
///
/// Cyclic Jacobi's off-diagonal norm shrinks linearly for the first few
/// sweeps and quadratically once rotations stop interfering, so the
/// sweep count grows roughly logarithmically in `n`, not linearly.
/// Measured on this implementation (hashed dense symmetric and
/// covariance-shaped inputs): `n = 64` converges in 8 sweeps,
/// `n = 128` in 9, `n = 256` in 9–10, `n = 512` in 10. Extrapolating
/// the ≈ +1 sweep per doubling puts `n = 2048` — the largest size the
/// workspace reaches today, via the truncated solver's dense fallback
/// on synthetic thousand-link topologies — at ≈ 12 sweeps. A budget
/// of 64 is therefore ~5× headroom over every constructible input;
/// exhausting it indicates NaN/Inf contamination (finite symmetric
/// input always converges), not an undersized budget.
const MAX_SWEEPS: usize = 64;

/// Relative tolerance on the asymmetry check in [`SymmetricEigen::new`].
const SYMMETRY_RTOL: f64 = 1e-8;

/// Eigendecomposition `A = V Λ Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are returned in **decreasing** order, matching the PCA
/// convention where the first principal component captures the most
/// variance. `eigenvectors` holds the corresponding unit eigenvectors as
/// **columns**.
///
/// # Algorithm
///
/// Classic cyclic Jacobi: sweep over all off-diagonal pairs `(p, q)`,
/// annihilating each with a Givens rotation chosen by the stable
/// `t = sign(θ)/(|θ| + √(θ² + 1))` formula (Golub & Van Loan §8.5). The
/// accumulated rotations form `V`. Each sweep is `O(n³)` and the iteration
/// converges quadratically, so the total cost is a small multiple of `n³`.
///
/// # Example
///
/// ```
/// use netanom_linalg::{Matrix, decomposition::SymmetricEigen};
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = SymmetricEigen::new(&a).unwrap();
/// assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in decreasing order.
    pub eigenvalues: Vec<f64>,
    /// Unit eigenvectors as columns, `eigenvectors.col(k)` pairing with
    /// `eigenvalues[k]`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decompose a symmetric matrix.
    ///
    /// Returns [`LinalgError::NotSymmetric`] if the input's asymmetry
    /// exceeds a small relative tolerance, [`LinalgError::Empty`] for a
    /// `0 × 0` input, and [`LinalgError::NonConvergence`] if the sweep
    /// budget is exhausted (which indicates NaN/Inf contamination — finite
    /// symmetric input always converges).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty {
                op: "symmetric eigendecomposition",
            });
        }
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "symmetric eigendecomposition",
                lhs: a.shape(),
                rhs: (a.cols(), a.rows()),
            });
        }
        let scale = a.max_abs().max(1.0);
        if let Some(asym) = a.asymmetry() {
            if asym > SYMMETRY_RTOL * scale {
                // Locate the worst offender for the error message.
                let mut worst = (0usize, 0usize, 0.0f64);
                for i in 0..a.rows() {
                    for j in (i + 1)..a.cols() {
                        let d = (a[(i, j)] - a[(j, i)]).abs();
                        if d > worst.2 {
                            worst = (i, j, d);
                        }
                    }
                }
                return Err(LinalgError::NotSymmetric {
                    at: (worst.0, worst.1),
                });
            }
        }

        let n = a.rows();
        // Work on a symmetrized copy so tiny asymmetries cannot bias the
        // rotations.
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        // The accumulated rotations are stored *transposed* (`vt[k]` is
        // the k-th eigenvector candidate as a row): the per-rotation
        // update then touches two contiguous rows instead of two
        // strided columns, which lets `vector::rotate_pair`
        // autovectorize it. Pure storage change — each element sees
        // exactly the arithmetic the column-major accumulation
        // performed, and the final extraction transposes back.
        let mut vt = Matrix::identity(n);

        let off = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };

        let frob = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let tol = 1e-14 * frob;

        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS {
            if off(&m) <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable tangent of the rotation angle.
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation to columns p and q of m: walk
                    // each row once and update its (p, q) element pair.
                    // The same update order (ascending k, columns before
                    // rows) and the same scalar expressions as the
                    // textbook loop — the column pass must stay scalar
                    // and strided because consecutive k touch
                    // row-distant elements, and reordering it against
                    // the row pass would change results bitwise.
                    for k in 0..n {
                        let row = m.row_mut(k);
                        let (mkp, mkq) = (row[p], row[q]);
                        row[p] = c * mkp - s * mkq;
                        row[q] = s * mkp + c * mkq;
                    }
                    // Rows p and q are contiguous: rotate the pair with
                    // the autovectorized kernel. Per element this is
                    // exactly the scalar `(c·mpk − s·mqk, s·mpk + c·mqk)`
                    // update — vectorization is across independent
                    // elements, so the pass is bitwise the scalar loop.
                    let (rp, rq) = m.row_pair_mut(p, q);
                    vector::rotate_pair(c, s, rp, rq);
                    // Accumulate into the transposed eigenvector matrix:
                    // another contiguous row pair.
                    let (vp, vq) = vt.row_pair_mut(p, q);
                    vector::rotate_pair(c, s, vp, vq);
                }
            }
            sweeps += 1;
        }
        if !converged && off(&m) > tol {
            return Err(LinalgError::NonConvergence {
                algorithm: "cyclic Jacobi",
                iterations: sweeps,
            });
        }

        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            m[(j, j)]
                .partial_cmp(&m[(i, i)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        // Transpose back while applying the sort order: column k of the
        // result is row order[k] of the transposed accumulator.
        let eigenvectors = Matrix::from_fn(n, n, |i, k| vt[(order[k], i)]);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Decompose a covariance matrix for a model refit: run the Jacobi
    /// sweep and clamp eigenvalues that cancellation drove slightly
    /// negative back to zero.
    ///
    /// This is the refit entry point for streaming model maintenance:
    /// covariances assembled from incremental sufficient statistics
    /// (`(Σyyᵀ − n·μμᵀ)/(n−1)`) are symmetric by construction but only
    /// positive semi-definite up to roundoff, so the smallest eigenvalues
    /// can come out at `−ε`. A subspace model's residual variance must be
    /// non-negative, hence the clamp.
    pub fn of_covariance(cov: &Matrix) -> Result<Self> {
        let mut eig = Self::new(cov)?;
        for l in &mut eig.eigenvalues {
            if *l < 0.0 {
                *l = 0.0;
            }
        }
        Ok(eig)
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Reconstruct `V Λ Vᵀ`; useful for accuracy checks.
    pub fn reconstruct(&self) -> Matrix {
        let lambda = Matrix::from_diag(&self.eigenvalues);
        // `(VΛ)·Vᵀ` via the N·T kernel: no transposed copy, and entry
        // (i, j) accumulates the same ascending-k terms the explicit
        // transpose route would.
        self.eigenvectors
            .matmul(&lambda)
            .and_then(|vl| vl.matmul_nt(&self.eigenvectors))
            .expect("shapes are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn two_by_two_known_spectrum() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_close(e.eigenvalues[0], 3.0, 1e-12);
        assert_close(e.eigenvalues[1], 1.0, 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_diag(&[5.0, -1.0, 2.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 2.0, -1.0]);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 2.0 } else { 0.0 }
        });
        let e = SymmetricEigen::new(&a).unwrap();
        let vtv = e.eigenvectors.gram();
        assert!(vtv.approx_eq(&Matrix::identity(n), 1e-10));
    }

    #[test]
    fn reconstruction_accuracy() {
        let n = 15;
        let a = Matrix::from_fn(n, n, |i, j| ((i * j) as f64).sin() + ((j * i) as f64).sin());
        let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = SymmetricEigen::new(&sym).unwrap();
        assert!(e.reconstruct().approx_eq(&sym, 1e-9));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let n = 9;
        let a = Matrix::from_fn(n, n, |i, j| ((i + j) as f64).cos());
        let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = SymmetricEigen::new(&sym).unwrap();
        let trace: f64 = (0..n).map(|i| sym[(i, i)]).sum();
        assert_close(e.eigenvalues.iter().sum::<f64>(), trace, 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let e = SymmetricEigen::new(&Matrix::from_rows(&[vec![-4.0]])).unwrap();
        assert_eq!(e.eigenvalues, vec![-4.0]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn psd_gram_has_nonnegative_spectrum() {
        let data = Matrix::from_fn(20, 6, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        let g = data.gram();
        let e = SymmetricEigen::new(&g).unwrap();
        for &l in &e.eigenvalues {
            assert!(l >= -1e-9, "negative eigenvalue {l} for PSD matrix");
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // 3*I has a triple eigenvalue; the basis must still be orthonormal.
        let a = Matrix::identity(3).scaled(3.0);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 3.0, 3.0]);
        assert!(e.eigenvectors.gram().approx_eq(&Matrix::identity(3), 1e-12));
    }

    /// Transcription of the rotation-application loops as they existed
    /// before the row-pair restructure: strided column updates, a
    /// second strided pass for rows p and q, and a column-major
    /// eigenvector accumulator extracted with `select_columns`. The
    /// production path must match this bitwise — the restructure is a
    /// memory-layout change only.
    fn eigen_reference_scalar(a: &Matrix) -> (Vec<f64>, Matrix) {
        let n = a.rows();
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut v = Matrix::identity(n);
        let off = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };
        let frob = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let tol = 1e-14 * frob;
        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS {
            if off(&m) <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
            sweeps += 1;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            m[(j, j)]
                .partial_cmp(&m[(i, i)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        (eigenvalues, v.select_columns(&order))
    }

    #[test]
    fn restructured_sweep_is_bitwise_original() {
        // Hashed pseudo-random symmetric matrices of several sizes,
        // including ones large enough for many sweeps and rotation
        // skips to fire.
        for (n, seed) in [(3usize, 1u64), (8, 2), (17, 3), (33, 4)] {
            let a = Matrix::from_fn(n, n, |i, j| {
                let (lo, hi) = (i.min(j) as u64, i.max(j) as u64);
                let mut h = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(lo.wrapping_mul(0x2545_f491_4f6c_dd1d))
                    .wrapping_add(hi.wrapping_mul(0x27d4_eb2f_1656_67c5));
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                (h % 2000) as f64 / 100.0 - 10.0
            });
            let e = SymmetricEigen::new(&a).unwrap();
            let (ref_vals, ref_vecs) = eigen_reference_scalar(&a);
            assert_eq!(e.eigenvalues.len(), ref_vals.len());
            for (got, want) in e.eigenvalues.iter().zip(&ref_vals) {
                assert_eq!(got.to_bits(), want.to_bits(), "eigenvalue drift at n={n}");
            }
            for i in 0..n {
                for k in 0..n {
                    assert_eq!(
                        e.eigenvectors[(i, k)].to_bits(),
                        ref_vecs[(i, k)].to_bits(),
                        "eigenvector drift at n={n}, ({i},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigen_pairs_satisfy_definition() {
        let n = 7;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64)); // Hilbert, symmetric
        let e = SymmetricEigen::new(&a).unwrap();
        for k in 0..n {
            let v = e.eigenvectors.col(k);
            let av = a.matvec(&v).unwrap();
            let lv: Vec<f64> = v.iter().map(|x| x * e.eigenvalues[k]).collect();
            assert!(
                crate::vector::approx_eq(&av, &lv, 1e-9),
                "eigenpair {k} violates A v = λ v"
            );
        }
    }
}
