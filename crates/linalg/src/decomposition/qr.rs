//! Householder QR factorization and least-squares solving.

use crate::{LinalgError, Matrix, Result};

/// QR factorization `A = Q R` of a tall (or square) matrix, computed with
/// Householder reflections.
///
/// The factorization is stored in compact form (the reflectors and the upper
/// triangle) and exposes the two operations the workspace needs:
///
/// * [`Qr::solve_least_squares`] — minimize `‖A x − b‖₂`, used by the
///   Fourier baseline to fit its 17-column basis (8 periods × sin/cos + DC)
///   to each OD-flow timeseries, and
/// * [`Qr::r`] / [`Qr::q`] — explicit factors for testing.
///
/// Householder QR is backward-stable, so it handles the mildly
/// ill-conditioned Gram structure of non-harmonic Fourier bases (periods
/// that don't divide the window length) far better than normal equations.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Compact storage: reflectors below the diagonal, R on and above it.
    qr: Matrix,
    /// Scalar factors of the Householder reflectors.
    tau: Vec<f64>,
}

impl Qr {
    /// Factor `a` (requires `rows ≥ cols`).
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for wide matrices and
    /// [`LinalgError::Empty`] for empty input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty { op: "qr" });
        }
        if a.rows() < a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "qr (requires rows >= cols)",
                lhs: a.shape(),
                rhs: (a.cols(), a.rows()),
            });
        }
        let (m, n) = a.shape();
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k below row k.
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, stored in place (v[0] implicit as 1 after
            // normalization).
            let v0 = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply the reflector to the remaining columns:
            // A := (I - tau v vᵀ) A.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Apply `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solve the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Returns [`LinalgError::Singular`] if `R` has a (near-)zero diagonal
    /// entry, i.e. the columns of `A` are numerically dependent, and
    /// [`LinalgError::DimensionMismatch`] if `b.len() != rows`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        let rmax = (0..n).fold(0.0_f64, |acc, i| acc.max(self.qr[(i, i)].abs()));
        for k in (0..n).rev() {
            let rkk = self.qr[(k, k)];
            if rkk.abs() <= 1e-13 * rmax.max(1.0) {
                return Err(LinalgError::Singular { op: "qr solve" });
            }
            let mut s = y[k];
            for j in (k + 1)..n {
                s -= self.qr[(k, j)] * x[j];
            }
            x[k] = s / rkk;
        }
        Ok(x)
    }

    /// Explicit upper-triangular factor `R` (`cols × cols`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Explicit thin `Q` factor (`rows × cols`, orthonormal columns).
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            // Q e_j = apply reflectors in reverse to the unit vector.
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            for k in (0..n).rev() {
                if self.tau[k] == 0.0 {
                    continue;
                }
                let mut s = e[k];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * e[i];
                }
                s *= self.tau[k];
                e[k] -= s;
                for i in (k + 1)..m {
                    e[i] -= s * self.qr[(i, k)];
                }
            }
            q.set_col(j, &e);
        }
        q
    }
}

/// Convenience wrapper: solve `min ‖A x − b‖₂` in one call.
///
/// Equivalent to `Qr::new(a)?.solve_least_squares(b)`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&[5.0, 10.0]).unwrap();
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
        assert!(vector::approx_eq(&x, &[1.0, 3.0], 1e-12));
    }

    #[test]
    fn overdetermined_consistent_system() {
        // b lies exactly in the column space.
        let a = Matrix::from_fn(10, 3, |i, j| ((i + 1) as f64).powi(j as i32));
        let x_true = [2.0, -1.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn least_squares_residual_orthogonal_to_columns() {
        let a = Matrix::from_fn(20, 4, |i, j| ((i * (j + 1)) as f64 * 0.1).sin());
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).cos()).collect();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let r = vector::sub(&b, &a.matvec(&x).unwrap());
        // Normal equations: Aᵀ r = 0.
        let at_r = a.matvec_t(&r).unwrap();
        assert!(vector::norm_inf(&at_r) < 1e-9 * a.frobenius_norm());
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = Matrix::from_fn(12, 5, |i, j| ((i * 5 + j) as f64 * 0.21).cos());
        let qr = Qr::new(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(15, 6, |i, j| ((i + 2 * j) as f64).sqrt());
        let q = Qr::new(&a).unwrap().q();
        assert!(q.gram().approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(8, 4, |i, j| ((i + j) as f64).exp() / 100.0);
        let r = Qr::new(&a).unwrap().r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn singular_detection() {
        // Duplicate columns.
        let a = Matrix::from_fn(6, 2, |i, _| (i + 1) as f64);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0; 6]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_wide() {
        assert!(Qr::new(&Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rhs_length_validated() {
        let a = Matrix::identity(3);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn fourier_like_basis_is_solvable() {
        // The actual use case: a DC column plus sin/cos pairs at
        // non-harmonic periods over a 1008-sample window.
        let t = 1008usize;
        let periods = [1008.0, 720.0, 432.0, 144.0, 72.0, 36.0, 18.0, 9.0];
        let mut cols: Vec<Vec<f64>> = vec![vec![1.0; t]];
        for &p in &periods {
            let w = 2.0 * std::f64::consts::PI / p;
            cols.push((0..t).map(|i| (w * i as f64).sin()).collect());
            cols.push((0..t).map(|i| (w * i as f64).cos()).collect());
        }
        let a = Matrix::from_columns(&cols);
        // A signal synthesized from the basis must be fit exactly.
        let coef: Vec<f64> = (0..17).map(|k| ((k as f64) * 0.3).sin()).collect();
        let b = a.matvec(&coef).unwrap();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!(vector::approx_eq(&x, &coef, 1e-8));
    }
}
