//! Free functions over `&[f64]` slices.
//!
//! The workspace passes measurement vectors around as plain slices; these
//! helpers keep that code allocation-light and readable. All functions panic
//! on length mismatch (the calling code treats mismatched lengths as
//! programming errors, the same way slice indexing does) — matrix-level
//! operations with runtime-dependent shapes return [`crate::LinalgError`]
//! instead.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (ℓ²) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm. This is the paper's SPE statistic when applied to
/// a residual vector.
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// ℓ¹ norm (sum of absolute values).
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute entry (ℓ∞ norm); `0.0` for empty input.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Elementwise sum `a + b` into a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b` into a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scale a slice by a constant into a new vector.
pub fn scaled(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place `y += alpha * x` (the BLAS `axpy` operation).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place plane (Givens) rotation of a vector pair:
/// `(xᵢ, yᵢ) ← (c·xᵢ − s·yᵢ, s·xᵢ + c·yᵢ)`.
///
/// Each lane is independent — the loop autovectorizes across `i` with
/// no reassociation, so every element computes exactly the scalar
/// mul-then-sub/add expressions written here. This is the contiguous
/// row-pair form of the Jacobi rotation update: applying it to two
/// matrix *rows* touches memory sequentially, where the textbook
/// column-pair update would stride by the row width.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rotate_pair(c: f64, s: f64, x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "rotate_pair: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let (a, b) = (*xi, *yi);
        *xi = c * a - s * b;
        *yi = s * a + c * b;
    }
}

/// In-place scaling `x *= s`.
pub fn scale_in_place(x: &mut [f64], s: f64) {
    for xi in x.iter_mut() {
        *xi *= s;
    }
}

/// Normalize a vector to unit Euclidean norm, returning the original norm.
///
/// If the vector has (near-)zero norm it is left untouched and `0.0` is
/// returned, so callers can detect the degenerate case.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 && n.is_finite() {
        scale_in_place(x, 1.0 / n);
        n
    } else {
        0.0
    }
}

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sum of all entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Index and value of the maximum entry; `None` for empty input.
///
/// NaN entries are never selected as the maximum unless all entries are NaN,
/// in which case `None` is returned.
pub fn argmax(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index and value of the minimum entry; `None` for empty input.
///
/// NaN entries are skipped, mirroring [`argmax`].
pub fn argmin(a: &[f64]) -> Option<(usize, f64)> {
    argmax(&scaled(a, -1.0)).map(|(i, v)| (i, -v))
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `true` if all pairwise entries differ by at most `tol`.
///
/// Slices of different lengths are never approximately equal.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let v = [3.0, 4.0];
        assert_eq!(norm(&v), 5.0);
        assert_eq!(norm_sq(&v), 25.0);
        assert_eq!(norm_l1(&v), 7.0);
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(norm_inf(&[-9.0, 1.0]), 9.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scaled(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!(approx_eq(&v, &[0.0, 0.6, 0.8], 1e-15));
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_and_sum() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sum(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 0.0]), Some((1, 5.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 2.0, 1.0]), Some((1, 2.0)));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn argmin_basic() {
        assert_eq!(argmin(&[3.0, -1.0, 2.0]), Some((1, -1.0)));
    }

    #[test]
    fn dist_sq_basic() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn approx_eq_length_sensitive() {
        assert!(!approx_eq(&[1.0], &[1.0, 1.0], 1.0));
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-10));
    }
}
