//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::kernel;
use crate::parallel;
use crate::vector;
use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// Storage is a flat `Vec<f64>`, easy to audit. Products ([`Matrix::matmul`],
/// [`Matrix::matmul_nt`], [`Matrix::matmul_tn`], [`Matrix::gram`]) route
/// through the packed, cache-blocked [`crate::kernel`] layer once the shape
/// amortizes panel packing, and split their *output rows* across threads once
/// the operation is large enough to amortize the spawn cost; because every
/// path accumulates each output element in the same strictly-ascending-`k`
/// order, results are bitwise independent of both the thread count (see
/// [`crate::parallel`]) and the packed-vs-reference routing.
///
/// Indexing uses `(row, col)` tuples and panics out-of-bounds, like slice
/// indexing. Shape-dependent operations (`matmul`, solves, …) return
/// [`LinalgError`] on mismatch instead.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a square diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build a matrix whose columns are the given equal-length vectors.
    ///
    /// # Panics
    /// Panics if the columns have inconsistent lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        if cols.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = cols[0].len();
        Matrix::from_fn(rows, cols.len(), |i, j| {
            assert_eq!(cols[j].len(), rows, "from_columns: ragged columns");
            cols[j][i]
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has zero rows or zero columns.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow two distinct rows mutably at once — the unit the Jacobi
    /// rotation updates operate on ([`crate::vector::rotate_pair`]
    /// rotates the pair in place, walking both rows contiguously).
    ///
    /// # Panics
    /// Panics unless `i < j < rows`.
    pub fn row_pair_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert!(
            i < j && j < self.rows,
            "row_pair_mut: need i < j < rows, got ({i}, {j}) of {}",
            self.rows
        );
        let (head, tail) = self.data.split_at_mut(j * self.cols);
        (
            &mut head[i * self.cols..(i + 1) * self.cols],
            &mut tail[..self.cols],
        )
    }

    /// Copy column `j` into a new vector.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with `v`.
    ///
    /// # Panics
    /// Panics if `j >= cols` or `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(v.len(), self.rows, "set_col: wrong length");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Overwrite row `i` with `v`.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `v.len() != cols`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "set_row: wrong length");
        self.row_mut(i).copy_from_slice(v);
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major storage — for the [`crate::kernel`] layer,
    /// which writes GEMM output blocks in place.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// Routed through the packed [`crate::kernel`] layer on the
    /// process-wide [`kernel::active_backend`] (runtime-detected
    /// AVX2+FMA tier or the portable autovectorized tier, overridable
    /// via `NETANOM_KERNEL`); row-parallel on top, so results are
    /// independent of thread count and shape routing alike — within
    /// one process every product follows one backend's per-element
    /// contract. No term is ever skipped: `0 × NaN` columns poison the
    /// product exactly as IEEE arithmetic dictates, on every backend.
    ///
    /// Returns an error if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        kernel::matmul_with(kernel::active_backend(), self, rhs)
    }

    /// Matrix product with a transposed right-hand side: `self * rhsᵀ`
    /// (`rhs` given as `n × k` with `k = self.cols`).
    ///
    /// No transposed copy is materialized: the kernel layer's packing
    /// (or, below the packing crossover, a contiguous per-element dot)
    /// absorbs the orientation. Entry `(i, j)` accumulates
    /// `self[i][k] · rhs[j][k]` over ascending `k` — on the portable
    /// backend exactly like [`vector::dot`] of the two rows, on the
    /// FMA backend with one fused rounding per term. Dispatched and
    /// row-parallel like [`Matrix::matmul`].
    ///
    /// Returns an error if `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        kernel::matmul_nt_with(kernel::active_backend(), self, rhs)
    }

    /// Matrix product with a transposed left-hand side: `selfᵀ * rhs`
    /// (`self` given as `k × m`, `rhs` as `k × n`).
    ///
    /// The subspace-iteration projections (`QᵀZ`, `PᵀD`) are exactly
    /// this shape; computing them here avoids materializing the
    /// transpose while accumulating each element over ascending `k` —
    /// bitwise what `self.transpose().matmul(rhs)` produces on the
    /// same backend. Dispatched and row-parallel over the `m` output
    /// rows like [`Matrix::matmul`].
    ///
    /// Returns an error if `self.rows != rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        kernel::matmul_tn_with(kernel::active_backend(), self, rhs)
    }

    /// Squared residual norm of every row after subtracting `mean` and
    /// projecting off the orthonormal `basis` (`cols × r`):
    /// `out[i] = ‖z − P(Pᵀz)‖²` with `z = row(i) − mean`.
    ///
    /// This is the detection hot path of the subspace method (the SPE of
    /// every timestep), fused into a single row-parallel pass: each
    /// worker centers a small stack of rows into a cache-resident
    /// scratch block, runs one packed [`crate::kernel`] GEMM for the
    /// coefficient stack `C = Z·P`, and folds the modeled reconstruction
    /// and the residual norm in a single epilogue sweep — the centered
    /// rows never touch main memory. Every reduction keeps the exact
    /// per-vector operation order, so values are **bitwise identical**
    /// to the exact route ([`Matrix::matvec_t`] → [`Matrix::matvec`] →
    /// subtract → norm per row) — strictly inside the 1e-12 contract the
    /// `netanom-core` batch API documents. To keep that equivalence on
    /// every host, the internal coefficient GEMM is pinned to
    /// [`kernel::KernelBackend::Portable`] regardless of the dispatched
    /// backend: the per-vector route is plain mul-then-add arithmetic,
    /// and detection scores must not move when the refit path speeds up.
    ///
    /// Returns an error if `mean.len() != cols` or
    /// `basis.rows() != cols`.
    pub fn centered_residual_norms_sq(&self, mean: &[f64], basis: &Matrix) -> Result<Vec<f64>> {
        if mean.len() != self.cols || basis.rows() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "centered_residual_norms_sq",
                lhs: self.shape(),
                rhs: basis.shape(),
            });
        }
        let r = basis.cols();
        let m = self.cols;
        let mut out = vec![0.0_f64; self.rows];
        if self.rows == 0 {
            return Ok(out);
        }
        let workers = parallel::workers_for(self.rows * m * (2 * r + 3), self.rows);
        let boundaries = parallel::balanced_boundaries(self.rows, workers, |_| 1.0);
        let bdata = basis.as_slice();
        let basis_op = kernel::Operand::normal(basis);
        parallel::for_row_blocks(&mut out, 1, &boundaries, |first_row, block| {
            // Stack height: tall enough that the coefficient GEMM can
            // take the packed path, short enough that the centered
            // stack stays cache-resident (32 × 2048 links = 512 KiB).
            const SPE_STACK: usize = 32;
            let stack = SPE_STACK.min(block.len());
            let mut zbuf = vec![0.0_f64; stack * m];
            let mut cbuf = vec![0.0_f64; stack * r];
            let mut done = 0;
            while done < block.len() {
                let take = stack.min(block.len() - done);
                for li in 0..take {
                    let yrow = self.row(first_row + done + li);
                    let dst = &mut zbuf[li * m..(li + 1) * m];
                    for ((z, &y), &mu) in dst.iter_mut().zip(yrow).zip(mean) {
                        *z = y - mu;
                    }
                }
                if r > 0 {
                    let cblock = &mut cbuf[..take * r];
                    cblock.fill(0.0);
                    if kernel::use_packed(take, m, r) {
                        let z_op =
                            kernel::Operand::N(kernel::View::new(&zbuf[..take * m], take, m));
                        kernel::gemm_block(
                            kernel::KernelBackend::Portable,
                            &z_op,
                            &basis_op,
                            0,
                            cblock,
                            r,
                            m,
                            false,
                        );
                    } else if r <= 8 {
                        // Below the packed crossover a const-width
                        // coefficient pass beats the reference GEMM's
                        // dynamic-width inner loop; same ascending-k
                        // order, so the routing stays unobservable.
                        for li in 0..take {
                            let zrow = &zbuf[li * m..(li + 1) * m];
                            let crow = &mut cblock[li * r..(li + 1) * r];
                            match r {
                                1 => spe_coeffs::<1>(zrow, bdata, crow),
                                2 => spe_coeffs::<2>(zrow, bdata, crow),
                                3 => spe_coeffs::<3>(zrow, bdata, crow),
                                4 => spe_coeffs::<4>(zrow, bdata, crow),
                                5 => spe_coeffs::<5>(zrow, bdata, crow),
                                6 => spe_coeffs::<6>(zrow, bdata, crow),
                                7 => spe_coeffs::<7>(zrow, bdata, crow),
                                _ => spe_coeffs::<8>(zrow, bdata, crow),
                            }
                        }
                    } else {
                        let z_op =
                            kernel::Operand::N(kernel::View::new(&zbuf[..take * m], take, m));
                        kernel::gemm_reference(&z_op, &basis_op, 0, cblock, r, m, false);
                    }
                }
                // Epilogue over row *pairs*: each row's reductions keep
                // their exact ascending order (the bitwise contract),
                // but interleaving two independent rows gives the
                // superscalar core a second accumulator chain to hide
                // the serial-add latency behind.
                let mut li = 0;
                while li + 1 < take {
                    let (zpair, cpair) = (&zbuf[li * m..(li + 2) * m], &cbuf[li * r..(li + 2) * r]);
                    let (s0, s1) = match r {
                        0 => (vector::norm_sq(&zpair[..m]), vector::norm_sq(&zpair[m..])),
                        1 => spe_epilogue_pair::<1>(zpair, bdata, cpair),
                        2 => spe_epilogue_pair::<2>(zpair, bdata, cpair),
                        3 => spe_epilogue_pair::<3>(zpair, bdata, cpair),
                        4 => spe_epilogue_pair::<4>(zpair, bdata, cpair),
                        5 => spe_epilogue_pair::<5>(zpair, bdata, cpair),
                        6 => spe_epilogue_pair::<6>(zpair, bdata, cpair),
                        7 => spe_epilogue_pair::<7>(zpair, bdata, cpair),
                        8 => spe_epilogue_pair::<8>(zpair, bdata, cpair),
                        _ => (
                            spe_epilogue_dyn(&zpair[..m], bdata, &cpair[..r]),
                            spe_epilogue_dyn(&zpair[m..], bdata, &cpair[r..]),
                        ),
                    };
                    block[done + li] = s0;
                    block[done + li + 1] = s1;
                    li += 2;
                }
                if li < take {
                    let zrow = &zbuf[li * m..(li + 1) * m];
                    let crow = &cbuf[li * r..(li + 1) * r];
                    block[done + li] = match r {
                        0 => vector::norm_sq(zrow),
                        1 => spe_epilogue::<1>(zrow, bdata, crow),
                        2 => spe_epilogue::<2>(zrow, bdata, crow),
                        3 => spe_epilogue::<3>(zrow, bdata, crow),
                        4 => spe_epilogue::<4>(zrow, bdata, crow),
                        5 => spe_epilogue::<5>(zrow, bdata, crow),
                        6 => spe_epilogue::<6>(zrow, bdata, crow),
                        7 => spe_epilogue::<7>(zrow, bdata, crow),
                        8 => spe_epilogue::<8>(zrow, bdata, crow),
                        _ => spe_epilogue_dyn(zrow, bdata, crow),
                    };
                }
                done += take;
            }
        });
        Ok(out)
    }

    /// Squared Euclidean norm of every row (length `rows`).
    ///
    /// Row `i` equals `vector::norm_sq(self.row(i))` exactly — this is
    /// the batched form of the SPE statistic.
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| vector::norm_sq(self.row(i)))
            .collect()
    }

    /// Project every row of `self` onto the column space of the
    /// orthonormal `basis` (`cols × r`), returning `(modeled, residual)`
    /// with `modeled = (self · basis) · basisᵀ` and
    /// `residual = self − modeled`.
    ///
    /// This is the batched residual-projection kernel behind the subspace
    /// method: for each row `z`, `modeled = P(Pᵀz)` and `residual` is the
    /// anomalous-subspace part — two packed GEMMs (`coeffs = self · P`,
    /// `modeled = coeffs · Pᵀ`) and an elementwise subtraction, all
    /// riding the [`crate::kernel`] layer. Each output value accumulates
    /// in exactly the per-vector operation order (coefficient `k` sums
    /// `z_j·P[j][k]` over ascending `j`; modeled entry `l` sums
    /// `c_k·P[l][k]` over ascending `k`), so results are bitwise
    /// identical to [`Matrix::matvec_t`] + [`Matrix::matvec`] per row,
    /// at a fraction of the cost. Like the fused SPE kernel, both GEMMs
    /// are pinned to [`kernel::KernelBackend::Portable`]: this is a
    /// *scoring* kernel, and the per-vector equivalence (plain
    /// mul-then-add arithmetic) must hold on every host regardless of
    /// which backend the process dispatches for model fitting.
    ///
    /// Returns an error if `basis.rows() != self.cols`.
    pub fn project_rows_split(&self, basis: &Matrix) -> Result<(Matrix, Matrix)> {
        if basis.rows() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "project_rows_split",
                lhs: self.shape(),
                rhs: basis.shape(),
            });
        }
        let coeffs = kernel::matmul_with(kernel::KernelBackend::Portable, self, basis)?;
        // `coeffs · Pᵀ` via the row-major N·N kernel on the materialized
        // transpose: the shared dimension r is typically tiny (< one
        // k-tile), and the N·N reference walks long contiguous rows
        // where the N·T per-element dot would grind through r-length
        // strides. Same ascending-k order either way.
        let modeled =
            kernel::matmul_with(kernel::KernelBackend::Portable, &coeffs, &basis.transpose())?;
        let residual = self.sub(&modeled)?;
        Ok((modeled, residual))
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Returns an error if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// Returns an error if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(x[i], self.row(i), &mut out);
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square `cols × cols`, symmetric).
    ///
    /// This is the building block for covariance-based PCA: for a
    /// mean-centered data matrix `Y`, `Y.gram() / (t − 1)` is the sample
    /// covariance.
    pub fn gram(&self) -> Matrix {
        // Only the upper triangle is computed (micro-tiles strictly
        // below the global diagonal are skipped inside the kernel), then
        // mirrored — the per-entry operation sequence matches a serial
        // (i, a, b) loop nest on the active backend, so the result is
        // thread-count independent. Dispatched like [`Matrix::matmul`].
        kernel::gram_with(kernel::active_backend(), self)
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// Returns an error if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// Returns an error if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Copy scaled by a constant.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Per-column arithmetic means (length `cols`).
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(1.0, self.row(i), &mut means);
        }
        vector::scale_in_place(&mut means, 1.0 / self.rows as f64);
        means
    }

    /// Per-column sample variances (length `cols`, denominator `rows − 1`).
    ///
    /// Returns zeros when there are fewer than two rows.
    pub fn column_variances(&self) -> Vec<f64> {
        if self.rows < 2 {
            return vec![0.0; self.cols];
        }
        let means = self.column_means();
        let mut vars = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, &m) in means.iter().enumerate() {
                let d = self[(i, j)] - m;
                vars[j] += d * d;
            }
        }
        vector::scale_in_place(&mut vars, 1.0 / (self.rows as f64 - 1.0));
        vars
    }

    /// Subtract each column's mean, returning the centered matrix and the
    /// vector of removed means.
    ///
    /// This is the adjustment the paper applies to the link measurement
    /// matrix `Y` before PCA so that "PCA dimensions capture true variance".
    pub fn mean_centered_columns(&self) -> (Matrix, Vec<f64>) {
        let means = self.column_means();
        let centered = Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - means[j]);
        (centered, means)
    }

    /// Frobenius norm (Euclidean norm of the flattened matrix).
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm(&self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Borrow the contiguous flat storage of `nrows` rows starting at
    /// `start_row` — a zero-copy row view for ring-buffer windows and
    /// other consumers that only need the raw row-major span.
    ///
    /// Returns an error if the range exceeds the matrix.
    pub fn row_span(&self, start_row: usize, nrows: usize) -> Result<&[f64]> {
        if start_row + nrows > self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "row_span",
                lhs: self.shape(),
                rhs: (start_row + nrows, self.cols),
            });
        }
        Ok(&self.data[start_row * self.cols..(start_row + nrows) * self.cols])
    }

    /// Assemble a matrix by concatenating flat row-major segments, each
    /// holding a whole number of `cols`-wide rows.
    ///
    /// This is the materialization path for ring-buffer windows: a
    /// wrapped window is exactly two contiguous segments ([newest-wrap]
    /// after [oldest..end]), and gluing them costs two `memcpy`s instead
    /// of one allocation per row.
    ///
    /// Returns an error if any segment length is not a multiple of
    /// `cols`, or if `cols == 0` with non-empty segments.
    pub fn from_segments(cols: usize, segments: &[&[f64]]) -> Result<Matrix> {
        let total: usize = segments.iter().map(|s| s.len()).sum();
        if cols == 0 {
            return if total == 0 {
                Ok(Matrix::zeros(0, 0))
            } else {
                Err(LinalgError::DimensionMismatch {
                    op: "from_segments",
                    lhs: (0, 0),
                    rhs: (total, 1),
                })
            };
        }
        let mut data = Vec::with_capacity(total);
        for s in segments {
            if s.len() % cols != 0 {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_segments",
                    lhs: (s.len() / cols, cols),
                    rhs: (s.len(), 1),
                });
            }
            data.extend_from_slice(s);
        }
        Ok(Matrix {
            rows: total / cols,
            cols,
            data,
        })
    }

    /// Assemble a `rows × cols` matrix by scattering blocks into it:
    /// entry `(a, b)` of a placement's `block` lands at
    /// `(placement.rows[a], placement.cols[b])` of the result, and every
    /// cell not covered by a placement is zero.
    ///
    /// This is the block-merge primitive of the sharded diagnosis layer:
    /// a coordinator reassembles a global matrix from per-shard pieces
    /// that each own an arbitrary (not necessarily contiguous) subset of
    /// rows or columns — sufficient-statistic row blocks merging into the
    /// global cross-product matrix, or per-shard window column slices
    /// merging back into the full measurement window. Placement is pure
    /// copying: no arithmetic is performed, so assembled values are
    /// bitwise identical to their sources.
    ///
    /// Returns an error if a placement's block shape disagrees with its
    /// index lists, an index is out of range, or two placements target
    /// the same cell ([`LinalgError::DuplicateTarget`]).
    ///
    /// # Example
    ///
    /// ```
    /// use netanom_linalg::{BlockPlacement, Matrix};
    ///
    /// // Two column slices (links {0, 2} and {1}) reassemble a 2×3 row set.
    /// let left = Matrix::from_rows(&[vec![1.0, 3.0], vec![4.0, 6.0]]);
    /// let right = Matrix::from_rows(&[vec![2.0], vec![5.0]]);
    /// let whole = Matrix::assemble_blocks(
    ///     2,
    ///     3,
    ///     &[
    ///         BlockPlacement { rows: &[0, 1], cols: &[0, 2], block: &left },
    ///         BlockPlacement { rows: &[0, 1], cols: &[1], block: &right },
    ///     ],
    /// )
    /// .unwrap();
    /// assert_eq!(whole.row(0), &[1.0, 2.0, 3.0]);
    /// assert_eq!(whole.row(1), &[4.0, 5.0, 6.0]);
    /// ```
    pub fn assemble_blocks(rows: usize, cols: usize, blocks: &[BlockPlacement]) -> Result<Matrix> {
        let mut out = Matrix::zeros(rows, cols);
        let mut written = vec![false; rows * cols];
        for p in blocks {
            if p.block.shape() != (p.rows.len(), p.cols.len()) {
                return Err(LinalgError::DimensionMismatch {
                    op: "assemble_blocks",
                    lhs: (p.rows.len(), p.cols.len()),
                    rhs: p.block.shape(),
                });
            }
            for (a, &i) in p.rows.iter().enumerate() {
                if i >= rows {
                    return Err(LinalgError::DimensionMismatch {
                        op: "assemble_blocks",
                        lhs: (rows, cols),
                        rhs: (i + 1, cols),
                    });
                }
                let brow = p.block.row(a);
                for (b, &j) in p.cols.iter().enumerate() {
                    if j >= cols {
                        return Err(LinalgError::DimensionMismatch {
                            op: "assemble_blocks",
                            lhs: (rows, cols),
                            rhs: (rows, j + 1),
                        });
                    }
                    let flat = i * cols + j;
                    if written[flat] {
                        return Err(LinalgError::DuplicateTarget { at: (i, j) });
                    }
                    written[flat] = true;
                    out.data[flat] = brow[b];
                }
            }
        }
        Ok(out)
    }

    /// Extract the contiguous block of `nrows` rows starting at `start_row`.
    ///
    /// Returns an error if the range exceeds the matrix.
    pub fn row_block(&self, start_row: usize, nrows: usize) -> Result<Matrix> {
        if start_row + nrows > self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "row_block",
                lhs: self.shape(),
                rhs: (start_row + nrows, self.cols),
            });
        }
        let data = self.data[start_row * self.cols..(start_row + nrows) * self.cols].to_vec();
        Ok(Matrix {
            rows: nrows,
            cols: self.cols,
            data,
        })
    }

    /// New matrix keeping only the listed columns, in the given order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self[(i, indices[j])])
    }

    /// `true` if every pairwise entry differs by at most `tol`
    /// and shapes match.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape() && vector::approx_eq(&self.data, &rhs.data, tol)
    }

    /// Maximum absolute asymmetry `|a[i,j] − a[j,i]|` over the matrix.
    ///
    /// Returns `None` for non-square matrices.
    pub fn asymmetry(&self) -> Option<f64> {
        if !self.is_square() {
            return None;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Some(worst)
    }
}

/// One block of values to scatter into a matrix assembled by
/// [`Matrix::assemble_blocks`]: entry `(a, b)` of `block` is copied to
/// `(rows[a], cols[b])` of the assembled matrix.
///
/// The index lists need not be contiguous or sorted, which is what lets
/// shard layers own arbitrary link subsets (round-robin, per-PoP) and
/// still merge exactly.
#[derive(Debug, Clone, Copy)]
pub struct BlockPlacement<'a> {
    /// Target row of each block row.
    pub rows: &'a [usize],
    /// Target column of each block column.
    pub cols: &'a [usize],
    /// The values to place.
    pub block: &'a Matrix,
}

/// Coefficient row `c = Pᵀz` for one centered row with the basis width
/// `R` known at compile time, accumulating each coefficient's `m` terms
/// in ascending link order — bitwise the reference GEMM's (and the
/// packed kernel's) order, so the small-shape routing in
/// [`Matrix::centered_residual_norms_sq`] stays unobservable.
#[inline]
fn spe_coeffs<const R: usize>(zrow: &[f64], bdata: &[f64], crow: &mut [f64]) {
    let mut acc = [0.0_f64; R];
    for (k, &z) in zrow.iter().enumerate() {
        let brow: &[f64; R] = bdata[k * R..(k + 1) * R]
            .try_into()
            .expect("basis row is R wide");
        for j in 0..R {
            acc[j] += z * brow[j];
        }
    }
    crow.copy_from_slice(&acc);
}

/// SPE epilogue for one centered row with the basis width `R` known at
/// compile time: given the precomputed coefficient row `c = Pᵀz`, fold
/// `‖z − P·c‖²` in one sweep over the link axis. The modeled entry for
/// link `j` sums `P[j][k]·c[k]` over ascending `k` (exactly like
/// [`Matrix::matvec`]) and the norm accumulates over ascending `j`
/// (exactly like [`vector::norm_sq`]), so the fused SPE stays bitwise
/// equal to the exact per-vector route.
#[inline]
fn spe_epilogue<const R: usize>(zrow: &[f64], bdata: &[f64], coeffs: &[f64]) -> f64 {
    let c: &[f64; R] = coeffs.try_into().expect("coefficient row is R wide");
    let mut acc = 0.0_f64;
    for (j, &z) in zrow.iter().enumerate() {
        let brow: &[f64; R] = bdata[j * R..(j + 1) * R]
            .try_into()
            .expect("basis row is R wide");
        let mut mm = 0.0_f64;
        for k in 0..R {
            mm += brow[k] * c[k];
        }
        let rv = z - mm;
        acc += rv * rv;
    }
    acc
}

/// Two independent [`spe_epilogue`] rows interleaved in one sweep.
///
/// `zpair` holds two consecutive centered rows, `cpair` their
/// coefficient rows. Each row's reductions run in exactly the order of
/// [`spe_epilogue`] — the interleave only gives the core two dependent
/// accumulator chains to overlap, so the results are bitwise the
/// one-row function's.
#[inline]
fn spe_epilogue_pair<const R: usize>(zpair: &[f64], bdata: &[f64], cpair: &[f64]) -> (f64, f64) {
    let m = zpair.len() / 2;
    let (z0, z1) = zpair.split_at(m);
    let c0: &[f64; R] = cpair[..R].try_into().expect("coefficient row is R wide");
    let c1: &[f64; R] = cpair[R..].try_into().expect("coefficient row is R wide");
    let mut a0 = 0.0_f64;
    let mut a1 = 0.0_f64;
    for (j, (&za, &zb)) in z0.iter().zip(z1).enumerate() {
        let brow: &[f64; R] = bdata[j * R..(j + 1) * R]
            .try_into()
            .expect("basis row is R wide");
        let mut m0 = 0.0_f64;
        let mut m1 = 0.0_f64;
        for k in 0..R {
            m0 += brow[k] * c0[k];
            m1 += brow[k] * c1[k];
        }
        let r0 = za - m0;
        let r1 = zb - m1;
        a0 += r0 * r0;
        a1 += r1 * r1;
    }
    (a0, a1)
}

/// Fallback of [`spe_epilogue`] for basis widths above the specialized
/// range; identical operation order.
fn spe_epilogue_dyn(zrow: &[f64], bdata: &[f64], coeffs: &[f64]) -> f64 {
    let r = coeffs.len();
    let mut acc = 0.0_f64;
    for (j, &z) in zrow.iter().enumerate() {
        let brow = &bdata[j * r..(j + 1) * r];
        let mut mm = 0.0_f64;
        for (&bv, &cv) in brow.iter().zip(coeffs) {
            mm += bv * cv;
        }
        let rv = z - mm;
        acc += rv * rv;
    }
    acc
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 3).is_empty());
    }

    #[test]
    fn identity_diagonal() {
        let i3 = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_diag_and_from_columns() {
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);

        let c = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 0)], 2.0);
        assert_eq!(c[(0, 1)], 3.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = abcd();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn set_row_and_col() {
        let mut m = abcd();
        m.set_row(0, &[9.0, 8.0]);
        m.set_col(1, &[7.0, 6.0]);
        assert_eq!(m.row(0), &[9.0, 7.0]);
        assert_eq!(m.row(1), &[3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        assert_eq!(m.transpose().shape(), (5, 3));
    }

    #[test]
    fn matmul_known() {
        let a = abcd();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]),
            1e-12
        ));
    }

    #[test]
    fn matmul_identity() {
        let a = abcd();
        assert!(a.matmul(&Matrix::identity(2)).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_error() {
        let a = abcd();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let a = abcd();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 3.0);
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(a.gram().approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_fn(5, 4, |i, j| (i as f64 - 2.0) * (j as f64 + 0.5));
        assert_eq!(a.gram().asymmetry(), Some(0.0));
    }

    #[test]
    fn add_sub_scaled() {
        let a = abcd();
        let s = a.add(&a).unwrap();
        assert!(s.approx_eq(&a.scaled(2.0), 0.0));
        let z = a.sub(&a).unwrap();
        assert_eq!(z.frobenius_norm(), 0.0);
        assert!(a.add(&Matrix::zeros(3, 2)).is_err());
        assert!(a.sub(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
        assert_eq!(m.column_variances(), vec![2.0, 200.0]);
    }

    #[test]
    fn column_variances_degenerate() {
        assert_eq!(
            Matrix::from_rows(&[vec![1.0, 2.0]]).column_variances(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn mean_centering_zeroes_means() {
        let m = Matrix::from_fn(10, 3, |i, j| (i * j) as f64 + j as f64);
        let (c, means) = m.mean_centered_columns();
        for v in c.column_means() {
            assert!(v.abs() < 1e-12);
        }
        assert_eq!(means.len(), 3);
        // Re-adding the means reconstructs the original.
        let back = Matrix::from_fn(10, 3, |i, j| c[(i, j)] + means[j]);
        assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn row_block_and_select_columns() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let b = m.row_block(1, 2).unwrap();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0), &[3.0, 4.0, 5.0]);
        assert!(m.row_block(3, 2).is_err());

        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[2.0, 0.0]);
    }

    #[test]
    fn debug_renders_truncated() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = abcd();
        let _ = m[(2, 0)];
    }

    /// Reference serial axpy GEMM (the pre-parallel kernel, verbatim).
    fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let v = a[(i, k)];
                if v == 0.0 {
                    continue;
                }
                let rrow = b.row(k);
                let orow = out.row_mut(i);
                vector::axpy(v, rrow, orow);
            }
        }
        out
    }

    fn hashy(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i * cols + j + salt).wrapping_mul(2654435761) % 8192;
            h as f64 / 4096.0 - 1.0
        })
    }

    #[test]
    fn parallel_matmul_is_bitwise_serial() {
        // Big enough to cross MIN_PARALLEL_FLOPS and actually fan out.
        let a = hashy(600, 96, 1);
        let b = hashy(96, 80, 2);
        let par = a.matmul(&b).unwrap();
        let ser = matmul_serial(&a, &b);
        assert!(
            par.approx_eq(&ser, 0.0),
            "parallel result must be bitwise serial"
        );
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = hashy(40, 17, 3);
        let b = hashy(23, 17, 4);
        let fast = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&explicit, 1e-12));
        assert!(a.matmul_nt(&Matrix::zeros(5, 16)).is_err());
    }

    #[test]
    fn parallel_matmul_nt_is_thread_count_stable() {
        let a = hashy(700, 90, 5);
        let b = hashy(64, 90, 6);
        let big = a.matmul_nt(&b).unwrap();
        // Row 13 computed alone (guaranteed serial) matches the same row
        // of the fanned-out product bitwise.
        let row13 = a.row_block(13, 1).unwrap().matmul_nt(&b).unwrap();
        assert_eq!(row13.row(0), big.row(13));
    }

    #[test]
    fn parallel_gram_is_bitwise_serial() {
        let a = hashy(500, 60, 7);
        let par = a.gram();
        // Serial reference: original (i, a, b) loop nest.
        let mut ser = Matrix::zeros(60, 60);
        for i in 0..a.rows() {
            let r = a.row(i);
            for x in 0..60 {
                let rx = r[x];
                if rx == 0.0 {
                    continue;
                }
                for y in x..60 {
                    ser[(x, y)] += rx * r[y];
                }
            }
        }
        for x in 0..60 {
            for y in (x + 1)..60 {
                ser[(y, x)] = ser[(x, y)];
            }
        }
        assert!(
            par.approx_eq(&ser, 0.0),
            "parallel gram must be bitwise serial"
        );
    }

    #[test]
    fn row_norms_sq_matches_vector_norm() {
        let a = hashy(9, 5, 8);
        let norms = a.row_norms_sq();
        assert_eq!(norms.len(), 9);
        for i in 0..9 {
            assert_eq!(norms[i], vector::norm_sq(a.row(i)));
        }
    }

    #[test]
    fn project_rows_split_matches_per_vector_projection() {
        // Orthonormal 2-column basis in R^4.
        let basis = Matrix::from_columns(&[vec![0.5, 0.5, 0.5, 0.5], vec![0.5, -0.5, 0.5, -0.5]]);
        let z = hashy(50, 4, 9);
        let (modeled, residual) = z.project_rows_split(&basis).unwrap();
        assert_eq!(modeled.shape(), (50, 4));
        for t in 0..z.rows() {
            let coeffs = basis.matvec_t(z.row(t)).unwrap();
            let m = basis.matvec(&coeffs).unwrap();
            assert_eq!(modeled.row(t), &m[..], "modeled row {t}");
            let r = vector::sub(z.row(t), &m);
            assert_eq!(residual.row(t), &r[..], "residual row {t}");
        }
        // Residual is orthogonal to the basis.
        for t in 0..z.rows() {
            for k in 0..basis.cols() {
                let b = basis.col(k);
                assert!(vector::dot(residual.row(t), &b).abs() < 1e-12);
            }
        }
        assert!(z.project_rows_split(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn centered_residual_norms_match_exact_route() {
        // Orthonormal 2-column basis in R^4.
        let basis = Matrix::from_columns(&[vec![0.5, 0.5, 0.5, 0.5], vec![0.5, -0.5, 0.5, -0.5]]);
        let y = hashy(600, 4, 11);
        let mean = vec![0.25, -0.5, 0.125, 0.75];
        let fast = y.centered_residual_norms_sq(&mean, &basis).unwrap();
        let centered = Matrix::from_fn(y.rows(), 4, |i, j| y[(i, j)] - mean[j]);
        let exact = centered
            .project_rows_split(&basis)
            .unwrap()
            .1
            .row_norms_sq();
        assert_eq!(fast.len(), exact.len());
        for (t, (f, e)) in fast.iter().zip(&exact).enumerate() {
            assert!(
                (f - e).abs() <= 1e-13 * e.max(1.0),
                "row {t}: fast {f} vs exact {e}"
            );
        }
        // Dimension errors.
        assert!(y.centered_residual_norms_sq(&mean[..3], &basis).is_err());
        assert!(y
            .centered_residual_norms_sq(&mean, &Matrix::zeros(3, 1))
            .is_err());
    }

    #[test]
    fn centered_residual_norms_every_specialized_width() {
        // Random-ish orthonormal bases of width 1..=9 in R^12 via QR of a
        // hash matrix; width 9 exercises the dynamic fallback.
        use crate::decomposition::Qr;
        let y = hashy(40, 12, 13);
        let mean = vec![0.0; 12];
        for r in 1..=9usize {
            let src = hashy(12, r, 100 + r);
            let q = Qr::new(&src).unwrap().q();
            let fast = y.centered_residual_norms_sq(&mean, &q).unwrap();
            let exact = y.project_rows_split(&q).unwrap().1.row_norms_sq();
            for (t, (f, e)) in fast.iter().zip(&exact).enumerate() {
                assert!(
                    (f - e).abs() <= 1e-12 * e.max(1.0),
                    "r={r} row {t}: {f} vs {e}"
                );
            }
        }
        // Zero-width basis: residual is the centered row itself.
        let none = Matrix::zeros(12, 0);
        let fast = y.centered_residual_norms_sq(&mean, &none).unwrap();
        assert_eq!(fast, y.row_norms_sq());
    }

    #[test]
    fn assemble_blocks_scatters_rows_and_columns() {
        let m = Matrix::from_fn(4, 5, |i, j| (i * 5 + j) as f64 + 1.0);
        // Split by interleaved columns and reassemble.
        let even: Vec<usize> = vec![0, 2, 4];
        let odd: Vec<usize> = vec![1, 3];
        let all_rows: Vec<usize> = (0..4).collect();
        let back = Matrix::assemble_blocks(
            4,
            5,
            &[
                BlockPlacement {
                    rows: &all_rows,
                    cols: &even,
                    block: &m.select_columns(&even),
                },
                BlockPlacement {
                    rows: &all_rows,
                    cols: &odd,
                    block: &m.select_columns(&odd),
                },
            ],
        )
        .unwrap();
        assert!(back.approx_eq(&m, 0.0), "reassembly must be bitwise");

        // Scattered row placement; uncovered cells stay zero.
        let rows = vec![3, 0];
        let block = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0]]);
        let cols = vec![1, 0];
        let sparse = Matrix::assemble_blocks(
            4,
            2,
            &[BlockPlacement {
                rows: &rows,
                cols: &cols,
                block: &block,
            }],
        )
        .unwrap();
        assert_eq!(sparse.row(3), &[8.0, 7.0]);
        assert_eq!(sparse.row(0), &[10.0, 9.0]);
        assert_eq!(sparse.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn assemble_blocks_validates_shapes_ranges_and_overlap() {
        let b = Matrix::zeros(2, 2);
        // Block shape must match the index lists.
        assert!(Matrix::assemble_blocks(
            3,
            3,
            &[BlockPlacement {
                rows: &[0],
                cols: &[0, 1],
                block: &b,
            }],
        )
        .is_err());
        // Out-of-range indices.
        assert!(Matrix::assemble_blocks(
            3,
            3,
            &[BlockPlacement {
                rows: &[0, 3],
                cols: &[0, 1],
                block: &b,
            }],
        )
        .is_err());
        assert!(Matrix::assemble_blocks(
            3,
            3,
            &[BlockPlacement {
                rows: &[0, 1],
                cols: &[0, 3],
                block: &b,
            }],
        )
        .is_err());
        // Overlapping placements are rejected, including within a block.
        let overlap = Matrix::assemble_blocks(
            3,
            3,
            &[
                BlockPlacement {
                    rows: &[0, 1],
                    cols: &[0, 1],
                    block: &b,
                },
                BlockPlacement {
                    rows: &[1, 2],
                    cols: &[1, 2],
                    block: &b,
                },
            ],
        );
        assert!(matches!(
            overlap,
            Err(LinalgError::DuplicateTarget { at: (1, 1) })
        ));
        assert!(matches!(
            Matrix::assemble_blocks(
                2,
                2,
                &[BlockPlacement {
                    rows: &[0, 0],
                    cols: &[0, 1],
                    block: &b,
                }],
            ),
            Err(LinalgError::DuplicateTarget { .. })
        ));
        // Empty placement list yields zeros.
        let z = Matrix::assemble_blocks(2, 2, &[]).unwrap();
        assert_eq!(z.frobenius_norm(), 0.0);
    }

    #[test]
    fn empty_products_are_fine() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
        assert_eq!(a.matmul_nt(&Matrix::zeros(2, 4)).unwrap().shape(), (0, 2));
        assert_eq!(Matrix::zeros(0, 3).gram().shape(), (3, 3));
        assert!(Matrix::zeros(0, 3).row_norms_sq().is_empty());
    }
}
