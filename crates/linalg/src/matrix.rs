//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::vector;
use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is deliberately simple: the workspace's matrices top out around
/// 1008 × 200, where naive triple-loop products and `Vec<f64>` storage are
/// entirely adequate and easy to audit.
///
/// Indexing uses `(row, col)` tuples and panics out-of-bounds, like slice
/// indexing. Shape-dependent operations (`matmul`, solves, …) return
/// [`LinalgError`] on mismatch instead.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a square diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build a matrix whose columns are the given equal-length vectors.
    ///
    /// # Panics
    /// Panics if the columns have inconsistent lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        if cols.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = cols[0].len();
        Matrix::from_fn(rows, cols.len(), |i, j| {
            assert_eq!(cols[j].len(), rows, "from_columns: ragged columns");
            cols[j][i]
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has zero rows or zero columns.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with `v`.
    ///
    /// # Panics
    /// Panics if `j >= cols` or `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(v.len(), self.rows, "set_col: wrong length");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Overwrite row `i` with `v`.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `v.len() != cols`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "set_row: wrong length");
        self.row_mut(i).copy_from_slice(v);
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// Returns an error if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a, rrow, orow);
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Returns an error if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| vector::dot(self.row(i), x)).collect())
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// Returns an error if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(x[i], self.row(i), &mut out);
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square `cols × cols`, symmetric).
    ///
    /// This is the building block for covariance-based PCA: for a
    /// mean-centered data matrix `Y`, `Y.gram() / (t − 1)` is the sample
    /// covariance.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..self.cols {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    out[(a, b)] += ra * r[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..self.cols {
            for b in (a + 1)..self.cols {
                out[(b, a)] = out[(a, b)];
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// Returns an error if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// Returns an error if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Copy scaled by a constant.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Per-column arithmetic means (length `cols`).
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(1.0, self.row(i), &mut means);
        }
        vector::scale_in_place(&mut means, 1.0 / self.rows as f64);
        means
    }

    /// Per-column sample variances (length `cols`, denominator `rows − 1`).
    ///
    /// Returns zeros when there are fewer than two rows.
    pub fn column_variances(&self) -> Vec<f64> {
        if self.rows < 2 {
            return vec![0.0; self.cols];
        }
        let means = self.column_means();
        let mut vars = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, &m) in means.iter().enumerate() {
                let d = self[(i, j)] - m;
                vars[j] += d * d;
            }
        }
        vector::scale_in_place(&mut vars, 1.0 / (self.rows as f64 - 1.0));
        vars
    }

    /// Subtract each column's mean, returning the centered matrix and the
    /// vector of removed means.
    ///
    /// This is the adjustment the paper applies to the link measurement
    /// matrix `Y` before PCA so that "PCA dimensions capture true variance".
    pub fn mean_centered_columns(&self) -> (Matrix, Vec<f64>) {
        let means = self.column_means();
        let centered = Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - means[j]);
        (centered, means)
    }

    /// Frobenius norm (Euclidean norm of the flattened matrix).
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm(&self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Extract the contiguous block of `nrows` rows starting at `start_row`.
    ///
    /// Returns an error if the range exceeds the matrix.
    pub fn row_block(&self, start_row: usize, nrows: usize) -> Result<Matrix> {
        if start_row + nrows > self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "row_block",
                lhs: self.shape(),
                rhs: (start_row + nrows, self.cols),
            });
        }
        let data = self.data[start_row * self.cols..(start_row + nrows) * self.cols].to_vec();
        Ok(Matrix {
            rows: nrows,
            cols: self.cols,
            data,
        })
    }

    /// New matrix keeping only the listed columns, in the given order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self[(i, indices[j])])
    }

    /// `true` if every pairwise entry differs by at most `tol`
    /// and shapes match.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape() && vector::approx_eq(&self.data, &rhs.data, tol)
    }

    /// Maximum absolute asymmetry `|a[i,j] − a[j,i]|` over the matrix.
    ///
    /// Returns `None` for non-square matrices.
    pub fn asymmetry(&self) -> Option<f64> {
        if !self.is_square() {
            return None;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Some(worst)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 3).is_empty());
    }

    #[test]
    fn identity_diagonal() {
        let i3 = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_diag_and_from_columns() {
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);

        let c = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 0)], 2.0);
        assert_eq!(c[(0, 1)], 3.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = abcd();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn set_row_and_col() {
        let mut m = abcd();
        m.set_row(0, &[9.0, 8.0]);
        m.set_col(1, &[7.0, 6.0]);
        assert_eq!(m.row(0), &[9.0, 7.0]);
        assert_eq!(m.row(1), &[3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        assert_eq!(m.transpose().shape(), (5, 3));
    }

    #[test]
    fn matmul_known() {
        let a = abcd();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]),
            1e-12
        ));
    }

    #[test]
    fn matmul_identity() {
        let a = abcd();
        assert!(a.matmul(&Matrix::identity(2)).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_error() {
        let a = abcd();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let a = abcd();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 3.0);
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(a.gram().approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_fn(5, 4, |i, j| (i as f64 - 2.0) * (j as f64 + 0.5));
        assert_eq!(a.gram().asymmetry(), Some(0.0));
    }

    #[test]
    fn add_sub_scaled() {
        let a = abcd();
        let s = a.add(&a).unwrap();
        assert!(s.approx_eq(&a.scaled(2.0), 0.0));
        let z = a.sub(&a).unwrap();
        assert_eq!(z.frobenius_norm(), 0.0);
        assert!(a.add(&Matrix::zeros(3, 2)).is_err());
        assert!(a.sub(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
        assert_eq!(m.column_variances(), vec![2.0, 200.0]);
    }

    #[test]
    fn column_variances_degenerate() {
        assert_eq!(
            Matrix::from_rows(&[vec![1.0, 2.0]]).column_variances(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn mean_centering_zeroes_means() {
        let m = Matrix::from_fn(10, 3, |i, j| (i * j) as f64 + j as f64);
        let (c, means) = m.mean_centered_columns();
        for v in c.column_means() {
            assert!(v.abs() < 1e-12);
        }
        assert_eq!(means.len(), 3);
        // Re-adding the means reconstructs the original.
        let back = Matrix::from_fn(10, 3, |i, j| c[(i, j)] + means[j]);
        assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn row_block_and_select_columns() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let b = m.row_block(1, 2).unwrap();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0), &[3.0, 4.0, 5.0]);
        assert!(m.row_block(3, 2).is_err());

        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[2.0, 0.0]);
    }

    #[test]
    fn debug_renders_truncated() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = abcd();
        let _ = m[(2, 0)];
    }
}
