//! The streaming ingestion engine: the single online entry point.
//!
//! The paper pitches the subspace method "as a first-level online
//! monitoring tool" (Section 7.1): the SVD is computed occasionally, and
//! each arriving measurement is diagnosed against the frozen model in
//! `O(m·r)`. [`StreamingEngine`] is the production-shaped realization of
//! that sketch:
//!
//! * the retained history lives in a [`RingWindow`] — one contiguous
//!   `capacity × m` allocation with `O(1)` eviction, no per-row boxing,
//!   no `remove(0)` shifting;
//! * the detection method itself is a pluggable [`DetectionBackend`]:
//!   the engine is generic over it (default: the paper's
//!   [`SubspaceBackend`]), so the temporal comparators stream through
//!   the same machinery;
//! * periodic refits can run through [`RefitStrategy::Incremental`]:
//!   sufficient statistics
//!   ([`IncrementalCovariance`](crate::incremental::IncrementalCovariance))
//!   are maintained at `O(m²)` per arrival and a refit is one `m × m`
//!   Jacobi eigen-solve, independent of the window length — versus the
//!   full-window SVD of [`RefitStrategy::FullSvd`];
//! * backlogs and micro-batched collection go through
//!   [`StreamingEngine::process_batch`], which rides the backend's
//!   batched scoring path (a GEMM for the subspace method) between
//!   refit boundaries;
//! * several measurement kinds (bytes, packets, flow-entropy, …) stream
//!   through one [`MultiwayEngine`] that keeps the per-way engines in
//!   lockstep.
//!
//! Semantics are pinned by parity tests (`tests/stream_parity.rs`):
//! under [`RefitStrategy::FullSvd`], [`StreamingEngine::process`] and
//! [`StreamingEngine::process_batch`] reproduce the sequential
//! fit/diagnose/refit behavior of the original `OnlineDiagnoser` report
//! for report, including mid-block refit boundaries.

use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

use crate::diagnose::{Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::method::{DetectionBackend, SubspaceBackend};
use crate::multiflow::{self, MultiFlowAnomaly};
use crate::{CoreError, Result};

/// Default number of top eigenpairs computed by
/// [`RefitStrategy::truncated`] — comfortably above the normal
/// dimension the 3σ rule picks on backbone data (`r ≈ 4`), so the
/// frozen `r` always fits inside the computed block.
pub const DEFAULT_TRUNCATED_K: usize = 8;

/// Default Rayleigh-quotient residual tolerance of
/// [`RefitStrategy::truncated`], relative to the largest eigenvalue.
pub const DEFAULT_TRUNCATED_TOL: f64 = 1e-10;

/// How [`StreamingEngine`] recomputes its model when a refit is due.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RefitStrategy {
    /// Materialize the window and rerun the full fit (PCA via the
    /// configured [`crate::PcaMethod`], subspace separation, threshold).
    /// Exactly the behavior of the original `OnlineDiagnoser`; cost grows
    /// with the window length.
    #[default]
    FullSvd,
    /// Maintain sufficient statistics (`n`, `Σy`, `Σyyᵀ`) incrementally
    /// at `O(m²)` per arrival and refit with one `m × m` Jacobi
    /// eigen-solve — independent of the window length.
    ///
    /// The 3σ separation rule needs temporal projections that sufficient
    /// statistics cannot provide, so under
    /// [`SeparationPolicy::ThreeSigma`](crate::SeparationPolicy::ThreeSigma)
    /// incremental refits freeze the
    /// normal dimension `r` chosen by the most recent full fit (the
    /// paper's stability argument: the subspace barely moves week over
    /// week). Other policies are re-evaluated on the fresh spectrum.
    ///
    /// The statistics upkeep is paid on every arrival even with
    /// `refit_every = None`, because manual [`StreamingEngine::refit`]
    /// calls (caller-driven cadence) still consume them — callers that
    /// will never refit should pick [`RefitStrategy::FullSvd`], which
    /// maintains nothing.
    Incremental,
    /// Like [`RefitStrategy::Incremental`], but the refit solves only
    /// for the top `k` eigenpairs of the covariance — blocked subspace
    /// iteration with deflation
    /// ([`TruncatedEigen`](netanom_linalg::decomposition::TruncatedEigen)),
    /// `O(m²·k)` per sweep instead of full-Jacobi `O(m³)` — which is
    /// what makes refits affordable on thousand-link topologies.
    ///
    /// The Q-statistic threshold stays **exact**: the residual moments
    /// come from the covariance's power traces minus the computed
    /// eigenvalues' contributions, so detections match the
    /// [`RefitStrategy::Incremental`] route up to the solver tolerance
    /// (pinned by `tests/refit_parity.rs`). The same 3σ freeze of the
    /// normal dimension applies, and `k` is raised to the frozen `r`
    /// when necessary; statistics upkeep is identical to the
    /// incremental strategy.
    Truncated {
        /// Number of top eigenpairs to compute (raised to the model's
        /// normal dimension when smaller).
        k: usize,
        /// Relative Rayleigh-quotient residual tolerance of the
        /// iteration (see
        /// [`TruncatedEigen::top_k`](netanom_linalg::decomposition::TruncatedEigen::top_k)).
        tol: f64,
    },
}

impl RefitStrategy {
    /// The truncated strategy with the default block size and tolerance
    /// ([`DEFAULT_TRUNCATED_K`], [`DEFAULT_TRUNCATED_TOL`]) — what the
    /// CLI's `--refit truncated` selects.
    pub fn truncated() -> Self {
        RefitStrategy::Truncated {
            k: DEFAULT_TRUNCATED_K,
            tol: DEFAULT_TRUNCATED_TOL,
        }
    }

    /// `true` for the strategies that maintain sliding sufficient
    /// statistics on every arrival (incremental and truncated refits).
    pub fn maintains_statistics(&self) -> bool {
        !matches!(self, RefitStrategy::FullSvd)
    }
}

/// Configuration of the streaming layer (the model itself is configured
/// by [`DiagnoserConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Maximum number of measurements retained for refits. Clamped up to
    /// the training length by [`StreamingEngine::new`] so a refit never
    /// sees fewer rows than the bootstrap fit.
    pub window_capacity: usize,
    /// Refit the model after this many arrivals (`None` = never).
    pub refit_every: Option<usize>,
    /// Refit route.
    pub strategy: RefitStrategy,
}

impl StreamConfig {
    /// A config retaining `window_capacity` rows, never refitting, using
    /// the default (full) refit strategy.
    pub fn new(window_capacity: usize) -> Self {
        StreamConfig {
            window_capacity,
            refit_every: None,
            strategy: RefitStrategy::default(),
        }
    }

    /// Set the refit cadence.
    pub fn refit_every(mut self, every: usize) -> Self {
        self.refit_every = Some(every);
        self
    }

    /// Set the refit strategy.
    pub fn strategy(mut self, strategy: RefitStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// A fixed-capacity sliding window of measurement rows backed by one
/// contiguous `capacity × m` allocation.
///
/// Pushing into a full window overwrites the oldest row in place: `O(m)`
/// per push, `O(1)` eviction, zero steady-state allocation — replacing
/// the `Vec<Vec<f64>>` + `remove(0)` pattern (`O(n)` shift per arrival
/// plus a heap round-trip per row) the original online path used.
#[derive(Debug, Clone)]
pub struct RingWindow {
    /// Flat `capacity × dim` storage; rows are addressed modulo
    /// `capacity`.
    data: Matrix,
    /// Physical row of the oldest logical row.
    head: usize,
    /// Number of valid rows (`≤ capacity`).
    len: usize,
}

impl RingWindow {
    /// An empty window of `capacity` rows of width `dim`.
    ///
    /// # Panics
    /// Panics if `capacity` or `dim` is zero.
    pub fn new(capacity: usize, dim: usize) -> Self {
        assert!(capacity > 0, "RingWindow capacity must be positive");
        assert!(dim > 0, "RingWindow dim must be positive");
        RingWindow {
            data: Matrix::zeros(capacity, dim),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of retained rows.
    pub fn capacity(&self) -> usize {
        self.data.rows()
    }

    /// Current number of retained rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width `m`.
    pub fn dim(&self) -> usize {
        self.data.cols()
    }

    /// `true` when the next push will evict the oldest row.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// The `i`-th retained row in arrival order (`0` = oldest).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.len, "RingWindow row {i} out of {}", self.len);
        self.data.row((self.head + i) % self.capacity())
    }

    /// The row the next [`RingWindow::push`] will evict, when full.
    pub fn oldest(&self) -> Option<&[f64]> {
        if self.is_full() {
            Some(self.data.row(self.head))
        } else {
            None
        }
    }

    /// Append a row, overwriting the oldest when full (`O(m)`, no
    /// allocation).
    ///
    /// # Panics
    /// Panics if `y.len() != dim()`.
    pub fn push(&mut self, y: &[f64]) {
        let cap = self.capacity();
        assert_eq!(y.len(), self.dim(), "RingWindow row width mismatch");
        if self.len == cap {
            self.data.row_mut(self.head).copy_from_slice(y);
            self.head = (self.head + 1) % cap;
        } else {
            let slot = (self.head + self.len) % cap;
            self.data.row_mut(slot).copy_from_slice(y);
            self.len += 1;
        }
    }

    /// Materialize the window in arrival order as a `len × m` matrix.
    ///
    /// A wrapped window is exactly two contiguous spans of the backing
    /// storage, so this is at most two `memcpy`s
    /// ([`Matrix::from_segments`]) — no per-row allocation.
    pub fn to_matrix(&self) -> Matrix {
        let cap = self.capacity();
        let first = self.len.min(cap - self.head);
        let a = self
            .data
            .row_span(self.head, first)
            .expect("within storage");
        let b = self
            .data
            .row_span(0, self.len - first)
            .expect("within storage");
        Matrix::from_segments(self.dim(), &[a, b]).expect("whole rows by construction")
    }
}

/// The streaming engine: ring-buffered window, per-arrival or batched
/// scoring against a frozen model, periodic refits — generic over the
/// [`DetectionBackend`] that does the scoring.
///
/// The default backend is the paper's [`SubspaceBackend`], for which
/// this engine reproduces the original `OnlineDiagnoser` bitwise (that
/// type is now a thin compatibility wrapper around it); any other
/// backend — the temporal comparators in `netanom-baselines::methods` —
/// rides the identical ingestion machinery, which is what makes the
/// paper's method comparison honest.
///
/// The engine drives the backend as *score → observe → refit-if-due*:
/// every arrival is scored against the state before it, then folded into
/// the streaming state, and the model is refrozen on the configured
/// cadence.
#[derive(Debug, Clone)]
pub struct StreamingEngine<B: DetectionBackend = SubspaceBackend> {
    backend: B,
    window: RingWindow,
    refit_every: Option<usize>,
    arrivals_since_fit: usize,
    arrivals_total: usize,
    refits: usize,
}

impl StreamingEngine<SubspaceBackend> {
    /// Bootstrap the subspace engine from historical training data (e.g.
    /// last week's measurements): full fit, window seeded with the most
    /// recent `window_capacity` training rows (clamped up to the
    /// training length).
    pub fn new(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        stream: StreamConfig,
    ) -> Result<Self> {
        let backend = SubspaceBackend::fit(training, rm, config, stream.strategy)?;
        Self::with_backend(backend, training, stream)
    }

    /// The active refit strategy.
    pub fn strategy(&self) -> RefitStrategy {
        self.backend.strategy()
    }

    /// The current (frozen) diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        self.backend.diagnoser()
    }

    /// Diagnose a measurement for a *multi-flow* anomaly against the
    /// frozen model, without advancing the stream: greedy matching
    /// pursuit ([`multiflow::greedy_identify`]) over at most `max_flows`
    /// flows, keeping a flow only if it explains at least `min_gain` of
    /// the residual energy.
    ///
    /// Returns `Ok(None)` when the detection step does not fire — the
    /// paper does not attempt identification on undetected bins.
    pub fn diagnose_multiflow(
        &self,
        y: &[f64],
        max_flows: usize,
        min_gain: f64,
    ) -> Result<Option<MultiFlowAnomaly>> {
        let diagnoser = self.backend.diagnoser();
        let report = diagnoser.diagnose_vector(y)?;
        if !report.detected {
            return Ok(None);
        }
        multiflow::greedy_identify(
            diagnoser.model(),
            self.backend.routing(),
            diagnoser.identifier(),
            y,
            max_flows,
            min_gain,
        )
        .map(Some)
    }
}

impl<B: DetectionBackend> StreamingEngine<B> {
    /// Assemble an engine around an already-fitted backend, seeding the
    /// window with the most recent `window_capacity` training rows
    /// (clamped up to the training length, so a refit never sees fewer
    /// rows than the bootstrap fit). `training` must be the matrix the
    /// backend was fitted on.
    ///
    /// `stream.strategy` is consumed by backend constructors that honor
    /// it (the subspace backend); it has no engine-level effect here.
    pub fn with_backend(backend: B, training: &Matrix, stream: StreamConfig) -> Result<Self> {
        if training.cols() != backend.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: backend.dim(),
                got: training.cols(),
            });
        }
        let capacity = stream.window_capacity.max(training.rows());
        let mut window = RingWindow::new(capacity, training.cols());
        let start = training.rows().saturating_sub(capacity);
        for t in start..training.rows() {
            window.push(training.row(t));
        }
        Ok(StreamingEngine {
            backend,
            window,
            refit_every: stream.refit_every,
            arrivals_since_fit: 0,
            arrivals_total: 0,
            refits: 0,
        })
    }

    /// Reassemble an engine from checkpointed parts without refitting:
    /// an already-restored backend, the retained window rows (oldest
    /// first), and the arrival/refit counters of the exporting engine.
    ///
    /// With backend, window, and counters restored bit-exactly, every
    /// subsequent [`StreamingEngine::process`] call — scoring, window
    /// eviction, and refit timing — is bitwise identical to the engine
    /// that was checkpointed, which is what lets a restarted service
    /// session resume mid-stream with no warmup.
    pub fn resume(
        backend: B,
        window: RingWindow,
        refit_every: Option<usize>,
        arrivals_total: usize,
        arrivals_since_fit: usize,
        refits: usize,
    ) -> Result<Self> {
        if window.dim() != backend.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: backend.dim(),
                got: window.dim(),
            });
        }
        Ok(StreamingEngine {
            backend,
            window,
            refit_every,
            arrivals_since_fit,
            arrivals_total,
            refits,
        })
    }

    /// The refit cadence in arrivals, if any.
    pub fn refit_cadence(&self) -> Option<usize> {
        self.refit_every
    }

    /// Total measurements processed so far.
    pub fn arrivals(&self) -> usize {
        self.arrivals_total
    }

    /// Arrivals since the most recent (re)fit.
    pub fn arrivals_since_refit(&self) -> usize {
        self.arrivals_since_fit
    }

    /// Number of refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// The detection backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The retained measurement window.
    pub fn window(&self) -> &RingWindow {
        &self.window
    }

    /// Slide the window and the backend's streaming state by one
    /// arrival.
    fn ingest_row(&mut self, y: &[f64]) -> Result<()> {
        self.backend.observe(self.window.oldest(), y)?;
        self.window.push(y);
        Ok(())
    }

    /// Process one arriving measurement vector: score it against the
    /// frozen model, slide the window, and refit if due.
    ///
    /// The report's `time` is the arrival counter (0-based).
    pub fn process(&mut self, y: &[f64]) -> Result<DiagnosisReport> {
        let mut report = self.backend.score_vector(y)?;
        report.time = self.arrivals_total;
        self.arrivals_total += 1;
        self.arrivals_since_fit += 1;
        self.ingest_row(y)?;
        if let Some(k) = self.refit_every {
            if self.arrivals_since_fit >= k {
                self.refit()?;
            }
        }
        Ok(report)
    }

    /// Process a whole block of arrivals (rows of a `b × m` matrix) at
    /// once.
    ///
    /// Equivalent to calling [`StreamingEngine::process`] on every row in
    /// order — including mid-block refits, which are honored by
    /// scoring batch-wise only up to each refit boundary — but the
    /// scoring between refits runs through the backend's batched
    /// [`DetectionBackend::score_matrix`] path (a GEMM for the subspace
    /// method). This is the intended entry point for replaying backlogs
    /// or micro-batched collection (e.g. one SNMP poll cycle per call).
    pub fn process_batch(&mut self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let mut out = Vec::with_capacity(links.rows());
        let mut next = 0;
        while next < links.rows() {
            let until_refit = match self.refit_every {
                Some(k) => k.saturating_sub(self.arrivals_since_fit).max(1),
                None => links.rows() - next,
            };
            let take = until_refit.min(links.rows() - next);
            let block = links.row_block(next, take).expect("range checked");
            let mut reports = self.backend.score_matrix(&block)?;
            for rep in &mut reports {
                rep.time = self.arrivals_total;
                self.arrivals_total += 1;
                self.arrivals_since_fit += 1;
            }
            out.append(&mut reports);
            for t in 0..take {
                self.ingest_row(block.row(t))?;
            }
            next += take;
            if let Some(k) = self.refit_every {
                if self.arrivals_since_fit >= k {
                    self.refit()?;
                }
            }
        }
        Ok(out)
    }

    /// Refreeze the backend's model from the current window
    /// ([`DetectionBackend::refit`] — for the subspace backend, the
    /// configured [`RefitStrategy`]).
    ///
    /// Anomalous bins contaminate a refit slightly; the paper's
    /// week-over-week stability argument is that the top components are
    /// dominated by diurnal structure, so sparse spikes barely move them.
    pub fn refit(&mut self) -> Result<()> {
        self.backend.refit(&self.window)?;
        self.arrivals_since_fit = 0;
        self.refits += 1;
        Ok(())
    }
}

/// One synchronized report from a [`MultiwayEngine`]: the per-way
/// diagnosis of a single time bin.
#[derive(Debug, Clone)]
pub struct MultiwayReport {
    /// Per-way reports, aligned with [`MultiwayEngine::way_names`].
    pub reports: Vec<DiagnosisReport>,
    /// Number of ways whose detection fired.
    pub detections: usize,
}

impl MultiwayReport {
    /// `true` if any way detected an anomaly this bin.
    pub fn any_detected(&self) -> bool {
        self.detections > 0
    }

    /// `true` if at least `min_ways` ways fired — a simple consensus
    /// rule; requiring two of {bytes, packets, entropy} suppresses
    /// single-metric measurement glitches.
    pub fn consensus(&self, min_ways: usize) -> bool {
        self.detections >= min_ways
    }
}

/// Several measurement kinds (*ways*) of the same network — e.g. byte
/// counts, packet counts, and flow-entropy summaries — streaming in
/// lockstep through one engine per way.
///
/// The multi-way view is how the follow-on traffic-feature work deploys
/// the subspace method: volume anomalies surface in bytes/packets while
/// distributional anomalies (scans, worms) surface in entropy; running
/// the ways against one clock gives a per-bin consensus report.
#[derive(Debug, Clone)]
pub struct MultiwayEngine<B: DetectionBackend = SubspaceBackend> {
    names: Vec<String>,
    engines: Vec<StreamingEngine<B>>,
}

impl<B: DetectionBackend> MultiwayEngine<B> {
    /// Assemble from named per-way engines (at least one).
    pub fn new(ways: Vec<(String, StreamingEngine<B>)>) -> Result<Self> {
        if ways.is_empty() {
            return Err(CoreError::NoCandidates);
        }
        let (names, engines) = ways.into_iter().unzip();
        Ok(MultiwayEngine { names, engines })
    }

    /// Number of ways.
    pub fn num_ways(&self) -> usize {
        self.engines.len()
    }

    /// The way names, in report order.
    pub fn way_names(&self) -> &[String] {
        &self.names
    }

    /// The engine behind way `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_ways()`.
    pub fn way(&self, i: usize) -> &StreamingEngine<B> {
        &self.engines[i]
    }

    /// Process one time bin: measurement vector `rows[i]` goes to way
    /// `i`. Errors if the slice count does not match the way count; a
    /// failing way aborts the bin *before any way ingests it* (widths
    /// and finiteness are validated up front), so bad input can never
    /// drift the ways out of lockstep. A refit failure mid-call is the
    /// one desynchronizing error left; it means that way's window can no
    /// longer support a model, and the ensemble should be rebuilt.
    pub fn process(&mut self, rows: &[&[f64]]) -> Result<MultiwayReport> {
        if rows.len() != self.engines.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.engines.len(),
                got: rows.len(),
            });
        }
        // Validate everything up front so no way ingests a row unless
        // all ways will.
        for (engine, row) in self.engines.iter().zip(rows) {
            if row.len() != engine.window.dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: engine.window.dim(),
                    got: row.len(),
                });
            }
            if let Some(link) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteMeasurement { link });
            }
        }
        let mut reports = Vec::with_capacity(self.engines.len());
        for (engine, row) in self.engines.iter_mut().zip(rows) {
            reports.push(engine.process(row)?);
        }
        let detections = reports.iter().filter(|r| r.detected).count();
        Ok(MultiwayReport {
            reports,
            detections,
        })
    }

    /// Process a whole block per way (`blocks[i]` is a `b × mᵢ` matrix,
    /// all with the same row count `b`): the batched form of
    /// [`MultiwayEngine::process`], returning one [`MultiwayReport`] per
    /// bin. The same up-front validation (row counts, widths,
    /// finiteness) guarantees bad input is rejected before any way
    /// ingests a row.
    pub fn process_batch(&mut self, blocks: &[Matrix]) -> Result<Vec<MultiwayReport>> {
        if blocks.len() != self.engines.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.engines.len(),
                got: blocks.len(),
            });
        }
        let bins = blocks.first().map_or(0, Matrix::rows);
        for (engine, b) in self.engines.iter().zip(blocks) {
            if b.rows() != bins {
                return Err(CoreError::DimensionMismatch {
                    expected: bins,
                    got: b.rows(),
                });
            }
            if b.cols() != engine.window.dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: engine.window.dim(),
                    got: b.cols(),
                });
            }
            for t in 0..b.rows() {
                if let Some(link) = b.row(t).iter().position(|v| !v.is_finite()) {
                    return Err(CoreError::NonFiniteMeasurement { link });
                }
            }
        }
        let mut per_way = Vec::with_capacity(self.engines.len());
        for (engine, block) in self.engines.iter_mut().zip(blocks) {
            per_way.push(engine.process_batch(block)?);
        }
        let mut out = Vec::with_capacity(bins);
        for t in 0..bins {
            let reports: Vec<DiagnosisReport> = per_way.iter().map(|w| w[t]).collect();
            let detections = reports.iter().filter(|r| r.detected).count();
            out.push(MultiwayReport {
                reports,
                detections,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn ring_window_pushes_evicts_and_wraps() {
        let mut w = RingWindow::new(3, 2);
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
        for i in 0..3 {
            w.push(&[i as f64, 10.0 + i as f64]);
        }
        assert!(w.is_full());
        assert_eq!(w.oldest(), Some(&[0.0, 10.0][..]));
        // Two more pushes wrap the storage.
        w.push(&[3.0, 13.0]);
        w.push(&[4.0, 14.0]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.row(0), &[2.0, 12.0]);
        assert_eq!(w.row(1), &[3.0, 13.0]);
        assert_eq!(w.row(2), &[4.0, 14.0]);
        let m = w.to_matrix();
        assert_eq!(m.shape(), (3, 2));
        for i in 0..3 {
            assert_eq!(m.row(i), w.row(i), "row {i}");
        }
    }

    #[test]
    fn ring_window_to_matrix_partial_and_unwrapped() {
        let mut w = RingWindow::new(4, 1);
        w.push(&[1.0]);
        w.push(&[2.0]);
        let m = w.to_matrix();
        assert_eq!(m.shape(), (2, 1));
        assert_eq!(m.row(0), &[1.0]);
        assert_eq!(m.row(1), &[2.0]);
    }

    #[test]
    fn frozen_engine_matches_batch_diagnoser() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let fresh = training(rm.num_links(), 100, 400);

        let batch = Diagnoser::fit(&train, rm, config()).unwrap();
        let mut engine =
            StreamingEngine::new(&train, rm, config(), StreamConfig::new(400)).unwrap();

        for t in 0..fresh.rows() {
            let b = batch.diagnose_vector(fresh.row(t)).unwrap();
            let o = engine.process(fresh.row(t)).unwrap();
            assert_eq!(o.time, t);
            assert_eq!(b.spe, o.spe);
            assert_eq!(b.detected, o.detected);
        }
        assert_eq!(engine.arrivals(), 100);
        assert_eq!(engine.refits(), 0);
    }

    #[test]
    fn incremental_and_full_refits_agree_on_detections() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let mut full =
            StreamingEngine::new(&train, rm, config(), StreamConfig::new(300).refit_every(50))
                .unwrap();
        let mut inc = StreamingEngine::new(
            &train,
            rm,
            config(),
            StreamConfig::new(300)
                .refit_every(50)
                .strategy(RefitStrategy::Incremental),
        )
        .unwrap();

        let fresh = training(rm.num_links(), 160, 300);
        let mut spike = fresh.clone();
        let mut row = spike.row(120).to_vec();
        vector::axpy(9e6, &rm.column(2), &mut row);
        spike.set_row(120, &row);

        let mut spike_reports = (false, false);
        for t in 0..spike.rows() {
            let f = full.process(spike.row(t)).unwrap();
            let i = inc.process(spike.row(t)).unwrap();
            assert_eq!(f.detected, i.detected, "divergence at arrival {t}");
            let rel = (f.spe - i.spe).abs() / f.spe.max(1.0);
            assert!(rel < 1e-5, "SPE divergence {rel:.2e} at arrival {t}");
            if t == 120 {
                spike_reports = (f.detected, i.detected);
            }
        }
        assert_eq!(full.refits(), inc.refits());
        assert_eq!(full.refits(), 3);
        // The staged spike is caught by both routes.
        assert_eq!(spike_reports, (true, true));
    }

    #[test]
    fn incremental_refit_with_three_sigma_freezes_r() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let cfg = DiagnoserConfig::default(); // ThreeSigma
        let mut engine = StreamingEngine::new(
            &train,
            rm,
            cfg,
            StreamConfig::new(300)
                .refit_every(60)
                .strategy(RefitStrategy::Incremental),
        )
        .unwrap();
        let r0 = engine.diagnoser().model().normal_dim();
        let fresh = training(rm.num_links(), 130, 300);
        for t in 0..fresh.rows() {
            engine.process(fresh.row(t)).unwrap();
        }
        assert_eq!(engine.refits(), 2);
        assert_eq!(engine.diagnoser().model().normal_dim(), r0);
    }

    #[test]
    fn multiflow_hook_reports_detected_bins_only() {
        let net = builtin::sprint_europe();
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let engine = StreamingEngine::new(&train, rm, config(), StreamConfig::new(400)).unwrap();

        let quiet = training(rm.num_links(), 1, 900).row(0).to_vec();
        assert!(engine
            .diagnose_multiflow(&quiet, 3, 0.05)
            .unwrap()
            .is_none());

        let mut y = quiet.clone();
        vector::axpy(2e7, &rm.column(20), &mut y);
        vector::axpy(1.5e7, &rm.column(130), &mut y);
        let found = engine.diagnose_multiflow(&y, 4, 0.05).unwrap().unwrap();
        assert!(found.flows.contains(&20), "found {:?}", found.flows);
    }

    #[test]
    fn multiway_engines_stay_in_lockstep() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let bytes_train = training(rm.num_links(), 300, 0);
        let pkts_train = bytes_train.scaled(1.0 / 1500.0); // ~MTU-sized packets
        let mk = |train: &Matrix| {
            StreamingEngine::new(train, rm, config(), StreamConfig::new(300).refit_every(80))
                .unwrap()
        };
        let mut multi = MultiwayEngine::new(vec![
            ("bytes".to_string(), mk(&bytes_train)),
            ("packets".to_string(), mk(&pkts_train)),
        ])
        .unwrap();
        assert_eq!(multi.way_names(), ["bytes", "packets"]);

        let fresh = training(rm.num_links(), 100, 300);
        for t in 0..fresh.rows() {
            let row = fresh.row(t).to_vec();
            let pkts = vector::scaled(&row, 1.0 / 1500.0);
            let rep = multi.process(&[&row, &pkts]).unwrap();
            assert_eq!(rep.reports.len(), 2);
            assert_eq!(rep.reports[0].time, t);
            assert_eq!(rep.reports[1].time, t);
        }
        assert_eq!(multi.way(0).arrivals(), 100);
        assert_eq!(multi.way(1).arrivals(), 100);
        // An anomaly visible in both ways reaches consensus.
        let mut row = fresh.row(50).to_vec();
        vector::axpy(8e6, &rm.column(2), &mut row);
        let pkts = vector::scaled(&row, 1.0 / 1500.0);
        let rep = multi.process(&[&row, &pkts]).unwrap();
        assert!(rep.any_detected());
        assert!(rep.consensus(2));
    }

    #[test]
    fn multiway_batch_equals_sequential() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let mk = || {
            StreamingEngine::new(&train, rm, config(), StreamConfig::new(300).refit_every(40))
                .unwrap()
        };
        let mut seq = MultiwayEngine::new(vec![
            ("bytes".to_string(), mk()),
            ("packets".to_string(), mk()),
        ])
        .unwrap();
        let mut bat = seq.clone();

        let fresh = training(rm.num_links(), 90, 300);
        let mut seq_reports = Vec::new();
        for t in 0..fresh.rows() {
            seq_reports.push(seq.process(&[fresh.row(t), fresh.row(t)]).unwrap());
        }
        let bat_reports = bat.process_batch(&[fresh.clone(), fresh.clone()]).unwrap();
        assert_eq!(bat_reports.len(), seq_reports.len());
        for (b, s) in bat_reports.iter().zip(&seq_reports) {
            for (br, sr) in b.reports.iter().zip(&s.reports) {
                assert_eq!(br.time, sr.time);
                assert_eq!(br.detected, sr.detected);
                assert!((br.spe - sr.spe).abs() <= 1e-12 * sr.spe.max(1.0));
            }
        }
    }

    #[test]
    fn multiway_validates_shapes() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let engine = StreamingEngine::new(&train, rm, config(), StreamConfig::new(200)).unwrap();
        let mut multi = MultiwayEngine::new(vec![("bytes".to_string(), engine)]).unwrap();
        assert!(MultiwayEngine::<SubspaceBackend>::new(vec![]).is_err());
        assert!(multi.process(&[]).is_err());
        let short = [1.0, 2.0];
        assert!(multi.process(&[&short[..]]).is_err());
        // Non-finite rows are rejected before any way ingests.
        let m = multi.way(0).window().dim();
        let mut bad = vec![1.0; m];
        bad[1] = f64::NAN;
        assert!(matches!(
            multi.process(&[&bad[..]]),
            Err(CoreError::NonFiniteMeasurement { link: 1 })
        ));
        // Batched entry point validates widths and finiteness too.
        assert!(multi.process_batch(&[Matrix::zeros(2, m + 1)]).is_err());
        let mut block = Matrix::zeros(2, m);
        block[(1, 0)] = f64::INFINITY;
        assert!(matches!(
            multi.process_batch(&[block]),
            Err(CoreError::NonFiniteMeasurement { link: 0 })
        ));
        // Nothing was ingested by the failed calls.
        assert_eq!(multi.way(0).arrivals(), 0);
    }

    #[test]
    fn manual_refit_resets_counter_and_counts() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let mut engine = StreamingEngine::new(
            &train,
            rm,
            config(),
            StreamConfig::new(200).refit_every(1000),
        )
        .unwrap();
        engine.process(train.row(10)).unwrap();
        assert_eq!(engine.arrivals_since_refit(), 1);
        engine.refit().unwrap();
        assert_eq!(engine.arrivals_since_refit(), 0);
        assert_eq!(engine.arrivals(), 1);
        assert_eq!(engine.refits(), 1);
    }
}
