use std::fmt;

use netanom_linalg::LinalgError;

/// Errors produced by the subspace method.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
    /// A measurement vector or matrix had the wrong number of links.
    DimensionMismatch {
        /// What the model expected.
        expected: usize,
        /// What the caller supplied.
        got: usize,
    },
    /// The measurement matrix had too few timesteps to fit a model.
    TooFewSamples {
        /// Number of rows supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A confidence level outside the open interval `(0, 1)`.
    InvalidConfidence {
        /// The offending value.
        value: f64,
    },
    /// The normal subspace covers the whole space (`r = m`), so the
    /// residual is identically zero and nothing can ever be detected.
    DegenerateResidual {
        /// The normal-subspace dimension that was selected.
        r: usize,
    },
    /// A measurement vector contained a NaN or infinite value (e.g. an
    /// SNMP polling gap encoded as a sentinel).
    NonFiniteMeasurement {
        /// Index of the first offending link.
        link: usize,
    },
    /// A truncated refit computed too few eigenpairs for the separation
    /// policy: the variance-fraction target lies beyond the computed
    /// block, so honoring it would require more eigenpairs than
    /// `RefitStrategy::Truncated`'s `k` provides. Raise `k`.
    TruncatedBlockTooSmall {
        /// Eigenpairs that were computed.
        k: usize,
    },
    /// Identification was asked to choose among zero candidate anomalies.
    NoCandidates,
    /// A candidate-flow set for multi-flow estimation was numerically
    /// dependent (e.g. two flows with identical residual footprints).
    DependentCandidates,
    /// Sharded state could not be combined: inconsistent shard
    /// measurement counts, link sets that do not partition the link
    /// index space, or statistics that are not maintained under the
    /// active refit strategy.
    ShardMismatch {
        /// Which merge invariant was violated.
        reason: &'static str,
    },
    /// A serialized [`MethodState`](crate::method::MethodState) could not
    /// be decoded or did not match the backend it was imported into.
    InvalidState {
        /// Which decoding or compatibility invariant was violated.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} links, got {got}")
            }
            CoreError::TooFewSamples { got, need } => {
                write!(f, "need at least {need} timesteps, got {got}")
            }
            CoreError::TruncatedBlockTooSmall { k } => {
                write!(
                    f,
                    "the separation policy needs more than the {k} computed eigenpairs; \
                     raise the truncated refit's k"
                )
            }
            CoreError::InvalidConfidence { value } => {
                write!(f, "confidence level {value} outside (0, 1)")
            }
            CoreError::DegenerateResidual { r } => write!(
                f,
                "normal subspace spans all {r} dimensions; residual is empty"
            ),
            CoreError::NonFiniteMeasurement { link } => {
                write!(f, "measurement for link {link} is not finite")
            }
            CoreError::NoCandidates => write!(f, "no candidate anomalies to identify among"),
            CoreError::DependentCandidates => {
                write!(
                    f,
                    "candidate flows are linearly dependent in the residual subspace"
                )
            }
            CoreError::ShardMismatch { reason } => {
                write!(f, "shard state cannot be combined: {reason}")
            }
            CoreError::InvalidState { reason } => {
                write!(f, "method state is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::DimensionMismatch {
            expected: 49,
            got: 41
        }
        .to_string()
        .contains("49"));
        assert!(CoreError::InvalidConfidence { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(CoreError::NoCandidates.to_string().contains("candidate"));
    }

    #[test]
    fn linalg_source_is_preserved() {
        use std::error::Error;
        let inner = LinalgError::Empty { op: "svd" };
        let e = CoreError::from(inner.clone());
        assert_eq!(e, CoreError::Linalg(inner));
        assert!(e.source().is_some());
    }
}
