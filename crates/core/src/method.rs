//! Pluggable detection backends: the method layer of the engines.
//!
//! The paper's central claim is comparative — the network-wide subspace
//! method separates anomalies that per-link *temporal* filters (EWMA,
//! Fourier, wavelets; Section 6, Figure 10) cannot. Comparing methods
//! honestly requires running every one of them through the same
//! ingestion, sharding, and evaluation machinery. This module makes the
//! detection method a first-class, swappable component:
//!
//! * [`DetectionBackend`] is the contract every method implements:
//!   per-arrival [`score_vector`](DetectionBackend::score_vector) and
//!   state-advancing [`observe`](DetectionBackend::observe), batched
//!   [`score_matrix`](DetectionBackend::score_matrix) (the GEMM path
//!   where the method allows), a cadenced
//!   [`refit`](DetectionBackend::refit) from the engine's retained
//!   window, and a serializable [`MethodState`] for shard broadcast and
//!   checkpointing.
//! * [`ShardableBackend`] extends the contract to link-partitioned
//!   execution: per-shard phase A/B computations whose partials the
//!   coordinator merges **in shard order** (so results are independent
//!   of the worker thread count), plus a merge-refit-broadcast hook.
//! * [`SubspaceBackend`] is the reference implementation: the
//!   subspace/Q-statistic pipeline, producing bitwise the reports the
//!   pre-refactor engines produced (pinned by `tests/stream_parity.rs`
//!   and `tests/shard_parity.rs`).
//!
//! The temporal comparators (EWMA, Holt–Winters, Fourier, Haar wavelet)
//! implement these traits in `netanom-baselines` (`methods` module),
//! which also hosts the `MethodBackend` enum and the by-name registry
//! the CLI's `--method` flag resolves against.
//!
//! # Engine contract
//!
//! [`StreamingEngine`](crate::StreamingEngine) drives a backend as:
//! `score` the arrival against the frozen model, then `observe` it
//! (advance streaming state as the window slides), then `refit` when the
//! cadence is due. Scoring therefore always sees the state *before* the
//! arrival — exactly one-step-ahead forecasting for the temporal
//! methods, and the frozen-model diagnosis of Section 7.1 for the
//! subspace method.

use std::fmt;

use netanom_linalg::{BlockPlacement, Matrix};
use netanom_topology::{LinkPartition, RoutingMatrix};

use crate::diagnose::{quantify, Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::incremental::{CovarianceShard, IncrementalCovariance};
use crate::separation::SeparationPolicy;
use crate::stream::{RefitStrategy, RingWindow};
use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// A detection method runnable through the streaming and sharded
/// engines.
///
/// Implementations are fitted at construction (each backend has its own
/// constructor taking whatever the method needs — routing for the
/// subspace method, smoothing weights for EWMA, …); the trait covers
/// only what the engines drive. See the [module docs](self) for the
/// score → observe → refit contract.
pub trait DetectionBackend: fmt::Debug {
    /// Stable method name (`"subspace"`, `"ewma"`, …) — the identifier
    /// the CLI registry and [`MethodState`] use.
    fn name(&self) -> &'static str;

    /// Measurement-vector width `m` the backend was fitted for.
    fn dim(&self) -> usize;

    /// The detection threshold currently in force (the subspace
    /// Q-statistic `δ²_α`, or a temporal method's calibrated
    /// residual-energy cutoff).
    fn threshold(&self) -> f64;

    /// Score the next arrival against the frozen model without
    /// advancing any state. The report's `time` is 0; the engine stamps
    /// it.
    fn score_vector(&self, y: &[f64]) -> Result<DiagnosisReport>;

    /// Score a whole block of consecutive arrivals (rows of a `b × m`
    /// matrix) without advancing state — equivalent to scoring each row
    /// in order, but free to batch (the subspace backend rides the
    /// fused GEMM detection kernel).
    fn score_matrix(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>>;

    /// Advance the per-arrival streaming state: the engine's window just
    /// slid by one row (`evicted` is the row that fell out, `None` while
    /// the window is still filling).
    fn observe(&mut self, evicted: Option<&[f64]>, y: &[f64]) -> Result<()>;

    /// Cadenced refit from the engine's retained window: rebuild the
    /// model (and threshold) the scoring methods are frozen against.
    fn refit(&mut self, window: &RingWindow) -> Result<()>;

    /// Export the frozen model as a serializable [`MethodState`] — the
    /// unit a sharded deployment broadcasts and a checkpoint stores.
    fn export_state(&self) -> MethodState;

    /// Restore the frozen model from an exported state. Streaming
    /// statistics (window, forecast states) are *not* part of the state;
    /// only the scoring model is. Errors with
    /// [`CoreError::InvalidState`] on a method or dimension mismatch.
    fn import_state(&mut self, state: &MethodState) -> Result<()>;
}

/// Serializable model state: what a coordinator broadcasts to shards and
/// what a checkpoint stores. Deliberately schema-light — a method name
/// plus scalar/vector/matrix payloads — so backends with very different
/// models share one wire format.
///
/// [`MethodState::to_bytes`] / [`MethodState::from_bytes`] give a
/// self-contained little-endian binary encoding (no external
/// serialization crates).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodState {
    /// The owning backend's [`DetectionBackend::name`].
    pub method: String,
    /// Scalar payload (model hyperparameters, thresholds, counters).
    pub scalars: Vec<f64>,
    /// Vector payload (means, spectra, per-link parameters).
    pub vectors: Vec<Vec<f64>>,
    /// Matrix payload (bases, per-link seasonal tables).
    pub matrices: Vec<Matrix>,
}

/// Magic prefix of the binary encoding (`"NAMS"` = netanom method
/// state).
const STATE_MAGIC: [u8; 4] = *b"NAMS";
/// Encoding version.
const STATE_VERSION: u32 = 1;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    push_u32(out, vs.len() as u32);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Byte cursor for decoding; every read is bounds-checked.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CoreError::InvalidState {
                reason: "truncated state buffer",
            });
        };
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.u32()? as usize;
        let b = self.take(n.checked_mul(8).ok_or(CoreError::InvalidState {
            reason: "length overflow",
        })?)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

impl MethodState {
    /// Encode as a self-contained little-endian byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STATE_MAGIC);
        push_u32(&mut out, STATE_VERSION);
        push_u32(&mut out, self.method.len() as u32);
        out.extend_from_slice(self.method.as_bytes());
        push_f64s(&mut out, &self.scalars);
        push_u32(&mut out, self.vectors.len() as u32);
        for v in &self.vectors {
            push_f64s(&mut out, v);
        }
        push_u32(&mut out, self.matrices.len() as u32);
        for m in &self.matrices {
            push_u32(&mut out, m.rows() as u32);
            push_u32(&mut out, m.cols() as u32);
            for r in 0..m.rows() {
                for v in m.row(r) {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode a buffer produced by [`MethodState::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut c = Cursor { bytes, at: 0 };
        if c.take(4)? != STATE_MAGIC {
            return Err(CoreError::InvalidState {
                reason: "bad magic prefix",
            });
        }
        if c.u32()? != STATE_VERSION {
            return Err(CoreError::InvalidState {
                reason: "unsupported state version",
            });
        }
        let name_len = c.u32()? as usize;
        let method = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| CoreError::InvalidState {
                reason: "method name is not utf-8",
            })?
            .to_string();
        let scalars = c.f64s()?;
        let nv = c.u32()? as usize;
        let mut vectors = Vec::with_capacity(nv.min(1024));
        for _ in 0..nv {
            vectors.push(c.f64s()?);
        }
        let nm = c.u32()? as usize;
        let mut matrices = Vec::with_capacity(nm.min(1024));
        for _ in 0..nm {
            let rows = c.u32()? as usize;
            let cols = c.u32()? as usize;
            let n = rows.checked_mul(cols).ok_or(CoreError::InvalidState {
                reason: "matrix shape overflow",
            })?;
            let b = c.take(n.checked_mul(8).ok_or(CoreError::InvalidState {
                reason: "matrix length overflow",
            })?)?;
            let data: Vec<f64> = b
                .chunks_exact(8)
                .map(|ch| f64::from_le_bytes(ch.try_into().expect("8 bytes")))
                .collect();
            matrices.push(Matrix::from_vec(rows, cols, data).map_err(|_| {
                CoreError::InvalidState {
                    reason: "matrix data does not match its shape",
                }
            })?);
        }
        if c.at != bytes.len() {
            return Err(CoreError::InvalidState {
                reason: "trailing bytes after state",
            });
        }
        Ok(MethodState {
            method,
            scalars,
            vectors,
            matrices,
        })
    }

    /// Check the state targets the given method.
    pub fn expect_method(&self, name: &str) -> Result<()> {
        if self.method != name {
            return Err(CoreError::InvalidState {
                reason: "state belongs to a different method",
            });
        }
        Ok(())
    }
}

/// Rebuild a [`SubspaceModel`] (and its confidence level) from an
/// exported subspace [`MethodState`] — the single decoder behind
/// [`DetectionBackend::import_state`] and the distributed worker's model
/// broadcast, so a state installed over the wire assembles into
/// **bitwise** the model the exporter froze.
pub fn subspace_model_from_state(state: &MethodState) -> Result<(SubspaceModel, f64)> {
    state.expect_method("subspace")?;
    let (r, confidence, moments) = match state.scalars[..] {
        [r, confidence] => (r, confidence, None),
        [r, confidence, phi1, phi2, phi3] => (r, confidence, Some((phi1, phi2, phi3))),
        _ => {
            return Err(CoreError::InvalidState {
                reason: "subspace state needs [r, confidence] or \
                         [r, confidence, phi1, phi2, phi3] scalars",
            })
        }
    };
    let [mean, eigenvalues] = &state.vectors[..] else {
        return Err(CoreError::InvalidState {
            reason: "subspace state needs [mean, eigenvalues] vectors",
        });
    };
    let [basis] = &state.matrices[..] else {
        return Err(CoreError::InvalidState {
            reason: "subspace state needs [basis] matrix",
        });
    };
    let model = match moments {
        None => {
            SubspaceModel::from_parts(mean.clone(), basis.clone(), eigenvalues.clone(), r as usize)
        }
        Some(moments) => SubspaceModel::from_parts_truncated(
            mean.clone(),
            basis.clone(),
            eigenvalues.clone(),
            r as usize,
            moments,
        ),
    }
    .map_err(|_| CoreError::InvalidState {
        reason: "subspace state does not assemble into a model",
    })?;
    Ok((model, confidence))
}

/// Per-bin output of one shard's phase B: its partial score
/// contributions and (for methods that identify) its residual slice.
#[derive(Debug)]
pub struct ShardScores {
    /// One partial score per bin of the block, summed across shards *in
    /// shard order* by the coordinator.
    pub scores: Vec<f64>,
    /// Residual column slice (`b × m_s`) for the coordinator to
    /// assemble when a bin fires, or `None` for methods that do not
    /// identify.
    pub residual: Option<Matrix>,
}

/// Read-only view of one shard's engine-owned state, handed to
/// [`ShardableBackend::refit_shards`].
#[derive(Debug)]
pub struct ShardCtx<'a> {
    /// Ascending global link indices the shard owns.
    pub links: &'a [usize],
    /// The shard's retained column-slice window.
    pub window: &'a RingWindow,
}

/// A backend that can run partitioned across link shards (the
/// [`ShardedEngine`](crate::ShardedEngine) architecture: per-shard
/// phase A, coordinator merge in shard order, per-shard phase B,
/// coordinator finalize; merge-refit-broadcast on the refit cadence).
///
/// `Sync` is required because shard phases fan out over scoped worker
/// threads sharing `&self`.
pub trait ShardableBackend: DetectionBackend + Sync + Sized {
    /// Per-shard worker state (model slices, shard statistics, per-link
    /// forecast states).
    type Shard: fmt::Debug + Clone + Send + Sync;
    /// Per-block partial a shard computes before the cross-shard merge.
    type Partial: Send + Sync;
    /// Merged cross-shard context phase B consumes (the subspace
    /// method's global projection coefficients; `()` for per-link
    /// methods).
    type Merged: Sync;

    /// Build the per-shard states after the coordinator fit; `training`
    /// is the matrix the backend was fitted on.
    fn make_shards(&self, partition: &LinkPartition, training: &Matrix)
        -> Result<Vec<Self::Shard>>;

    /// Whether phase B consumes the full evicted rows (backends
    /// maintaining sliding sufficient statistics).
    fn needs_evicted(&self) -> bool;

    /// Whether [`ShardableBackend::finalize`] wants the assembled
    /// residual for bins whose score exceeds the threshold.
    fn wants_residual(&self) -> bool;

    /// Phase A: per-shard computation over the raw column slice of the
    /// block, before any cross-shard information is available.
    fn shard_phase_a(&self, shard: &Self::Shard, links: &[usize], block: &Matrix) -> Self::Partial;

    /// The raw column slice (`b × m_s`) phase A cut from the block; the
    /// engine pushes its rows into the shard's window.
    fn partial_raw<'a>(&self, partial: &'a Self::Partial) -> &'a Matrix;

    /// Merge the phase-A partials **in shard order** into the context
    /// phase B needs.
    fn merge_partials(&self, bins: usize, partials: &[&Self::Partial]) -> Self::Merged;

    /// Phase B: per-bin partial scores (and residual slice), advancing
    /// shard-local streaming state over the block. `evicted[t]` is the
    /// full row the `t`-th push evicts (only populated when
    /// [`ShardableBackend::needs_evicted`]).
    fn shard_phase_b(
        &self,
        shard: &mut Self::Shard,
        links: &[usize],
        partial: &Self::Partial,
        merged: &Self::Merged,
        block: &Matrix,
        evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardScores>;

    /// Turn one bin's summed score (and, when above threshold and
    /// [`ShardableBackend::wants_residual`], its assembled residual)
    /// into a report. The engine stamps `time`.
    fn finalize(&self, score: f64, residual: Option<&[f64]>) -> Result<DiagnosisReport>;

    /// Merge-refit-broadcast: collect the shard state/windows into a
    /// fresh global model, refreeze the coordinator's scoring state, and
    /// hand every shard its new model slice.
    fn refit_shards(&mut self, shards: &mut [Self::Shard], ctx: &[ShardCtx<'_>]) -> Result<()>;
}

/// Assemble the logical global window (`len × m`, arrival order) from
/// per-shard column-slice windows — pure placement, bitwise equal to the
/// single-process window. Shared by backends whose sharded refit needs
/// the full window.
pub fn assemble_shard_windows(m: usize, ctx: &[ShardCtx<'_>]) -> Result<Matrix> {
    let len = ctx.first().map_or(0, |c| c.window.len());
    let row_ids: Vec<usize> = (0..len).collect();
    let slices: Vec<Matrix> = ctx.iter().map(|c| c.window.to_matrix()).collect();
    let placements: Vec<BlockPlacement> = ctx
        .iter()
        .zip(&slices)
        .map(|(c, slice)| BlockPlacement {
            rows: &row_ids,
            cols: c.links,
            block: slice,
        })
        .collect();
    Ok(Matrix::assemble_blocks(len, m, &placements)?)
}

/// The subspace/Q-statistic pipeline as a [`DetectionBackend`] — the
/// reference implementation, bitwise identical to the pre-refactor
/// engines' behavior.
///
/// Owns the three-step [`Diagnoser`], the routing matrix, and (under
/// [`RefitStrategy::Incremental`]) the sliding sufficient statistics the
/// engine's `observe` calls maintain.
#[derive(Debug, Clone)]
pub struct SubspaceBackend {
    diagnoser: Diagnoser,
    rm: RoutingMatrix,
    config: DiagnoserConfig,
    strategy: RefitStrategy,
    /// Sufficient statistics over exactly the engine's window rows;
    /// maintained only under [`RefitStrategy::Incremental`].
    stats: Option<IncrementalCovariance>,
}

impl SubspaceBackend {
    /// Fit on a `t × m` training matrix: full subspace fit plus (under
    /// the incremental strategy) sufficient statistics over the same
    /// rows.
    pub fn fit(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
    ) -> Result<Self> {
        let diagnoser = Diagnoser::fit(training, rm, config)?;
        let stats = if strategy.maintains_statistics() {
            let mut acc = IncrementalCovariance::new(training.cols());
            for t in 0..training.rows() {
                acc.add(training.row(t))?;
            }
            Some(acc)
        } else {
            None
        };
        Ok(SubspaceBackend {
            diagnoser,
            rm: rm.clone(),
            config,
            strategy,
            stats,
        })
    }

    /// Like [`SubspaceBackend::fit`], but for a backend that will drive
    /// a [`ShardedEngine`](crate::ShardedEngine): the global streaming
    /// statistics are skipped, because a sharded deployment maintains
    /// its statistics in the per-shard [`CovarianceShard`] rows
    /// ([`ShardableBackend::make_shards`]) — the global accumulator
    /// would be write-only dead state paying `O(t·m²)` at bootstrap.
    ///
    /// A backend built this way must not be used with a
    /// [`StreamingEngine`](crate::StreamingEngine) under
    /// [`RefitStrategy::Incremental`] (its streaming
    /// [`refit`](DetectionBackend::refit) needs the statistics this
    /// constructor omits); the sharded refit path never touches them.
    pub fn fit_sharded(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
    ) -> Result<Self> {
        let diagnoser = Diagnoser::fit(training, rm, config)?;
        Ok(SubspaceBackend {
            diagnoser,
            rm: rm.clone(),
            config,
            strategy,
            stats: None,
        })
    }

    /// Reconstruct a backend from an exported [`MethodState`] without
    /// refitting — the restore half of a service-session checkpoint.
    ///
    /// The model is rebuilt bit-exactly from the state (including the
    /// truncated-refit residual moments, via
    /// [`subspace_model_from_state`]); `stats` reinstalls the sliding
    /// sufficient statistics a statistics-maintaining `strategy` needs,
    /// so subsequent observes and refits continue the exact history of
    /// the exporting process. The state's embedded confidence is
    /// ignored in favor of `config.confidence` (the session's opened
    /// configuration is authoritative, and an exporting session always
    /// embeds the same value).
    pub fn from_state(
        state: &MethodState,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        strategy: RefitStrategy,
        stats: Option<IncrementalCovariance>,
    ) -> Result<Self> {
        let (model, _confidence) = subspace_model_from_state(state)?;
        if let Some(acc) = &stats {
            if acc.dim() != model.dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: model.dim(),
                    got: acc.dim(),
                });
            }
        }
        if strategy.maintains_statistics() && stats.is_none() {
            return Err(CoreError::InvalidState {
                reason: "a statistics-maintaining strategy needs restored statistics",
            });
        }
        let diagnoser = Diagnoser::from_model(model, rm, config.confidence)?;
        Ok(SubspaceBackend {
            diagnoser,
            rm: rm.clone(),
            config,
            strategy,
            stats,
        })
    }

    /// The sliding sufficient statistics, when the strategy maintains
    /// them — the statistics half of a service-session checkpoint
    /// (serialize with [`IncrementalCovariance::to_bytes`]).
    pub fn statistics(&self) -> Option<&IncrementalCovariance> {
        self.stats.as_ref()
    }

    /// The current (frozen) three-step diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        &self.diagnoser
    }

    /// The routing matrix identification runs against.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.rm
    }

    /// The active refit strategy.
    pub fn strategy(&self) -> RefitStrategy {
        self.strategy
    }

    /// The diagnoser configuration the backend refits with.
    pub fn config(&self) -> DiagnoserConfig {
        self.config
    }

    /// The refit policy: under 3σ separation, incremental refits freeze
    /// the normal dimension chosen by the last full fit (sufficient
    /// statistics carry no temporal projections).
    fn incremental_policy(&self) -> SeparationPolicy {
        match self.config.separation {
            SeparationPolicy::ThreeSigma { .. } => {
                SeparationPolicy::FixedCount(self.diagnoser.model().normal_dim())
            }
            other => other,
        }
    }

    /// Refit the frozen model from merged sufficient statistics — the
    /// coordinator step after an [`IncrementalCovariance::merge`] of the
    /// shard rows, shared by the in-process
    /// [`refit_shards`](ShardableBackend::refit_shards) and the TCP
    /// tracker so both refit bitwise identically. Applies the same 3σ
    /// normal-dimension freeze as the streaming refit. Errors with
    /// [`CoreError::ShardMismatch`] under [`RefitStrategy::FullSvd`],
    /// which does not refit from statistics.
    pub fn refit_from_statistics(&mut self, stats: &IncrementalCovariance) -> Result<()> {
        let model = match self.strategy {
            RefitStrategy::FullSvd => {
                return Err(CoreError::ShardMismatch {
                    reason: "full-SVD refits rebuild from the window, not statistics",
                })
            }
            RefitStrategy::Incremental => stats.to_model(self.incremental_policy())?,
            RefitStrategy::Truncated { k, tol } => {
                stats.to_model_truncated(self.incremental_policy(), k, tol)?
            }
        };
        self.diagnoser
            .refit_model(model, &self.rm, self.config.confidence)
    }

    /// Refit the frozen model with a full fit over an assembled window
    /// (`len × m`, arrival order) — the [`RefitStrategy::FullSvd`]
    /// coordinator step, shared by the in-process engine and the TCP
    /// tracker.
    pub fn refit_from_window(&mut self, window: &Matrix) -> Result<()> {
        let model = SubspaceModel::fit(window, self.config.separation, self.config.pca_method)?;
        self.diagnoser
            .refit_model(model, &self.rm, self.config.confidence)
    }
}

impl DetectionBackend for SubspaceBackend {
    fn name(&self) -> &'static str {
        "subspace"
    }

    fn dim(&self) -> usize {
        self.diagnoser.model().dim()
    }

    fn threshold(&self) -> f64 {
        self.diagnoser.detector().threshold().delta_sq
    }

    fn score_vector(&self, y: &[f64]) -> Result<DiagnosisReport> {
        self.diagnoser.diagnose_vector(y)
    }

    fn score_matrix(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        self.diagnoser.diagnose_series(links)
    }

    fn observe(&mut self, evicted: Option<&[f64]>, y: &[f64]) -> Result<()> {
        if let Some(stats) = &mut self.stats {
            match evicted {
                Some(old) => stats.slide(old, y)?,
                None => stats.add(y)?,
            }
        }
        Ok(())
    }

    fn refit(&mut self, window: &RingWindow) -> Result<()> {
        let model = match self.strategy {
            RefitStrategy::FullSvd => {
                let training = window.to_matrix();
                SubspaceModel::fit(&training, self.config.separation, self.config.pca_method)?
            }
            RefitStrategy::Incremental => {
                let stats = self
                    .stats
                    .as_ref()
                    .expect("incremental strategy maintains stats");
                stats.to_model(self.incremental_policy())?
            }
            RefitStrategy::Truncated { k, tol } => {
                let stats = self
                    .stats
                    .as_ref()
                    .expect("truncated strategy maintains stats");
                stats.to_model_truncated(self.incremental_policy(), k, tol)?
            }
        };
        self.diagnoser
            .refit_model(model, &self.rm, self.config.confidence)
    }

    fn export_state(&self) -> MethodState {
        let model = self.diagnoser.model();
        // Truncated-refit models append their exact residual moments:
        // the importer cannot recompute them from the (truncated)
        // spectrum, and the moments are what keep the threshold
        // identical across the wire.
        let mut scalars = vec![model.normal_dim() as f64, self.config.confidence];
        if let Some((phi1, phi2, phi3)) = model.residual_moments() {
            scalars.extend([phi1, phi2, phi3]);
        }
        MethodState {
            method: "subspace".to_string(),
            scalars,
            vectors: vec![model.mean().to_vec(), model.eigenvalues().to_vec()],
            matrices: vec![model.normal_basis().clone()],
        }
    }

    fn import_state(&mut self, state: &MethodState) -> Result<()> {
        let (model, confidence) = subspace_model_from_state(state)?;
        if model.dim() != self.dim() {
            return Err(CoreError::InvalidState {
                reason: "subspace state has the wrong link count",
            });
        }
        self.diagnoser.refit_model(model, &self.rm, confidence)
    }
}

/// One shard's slice of the subspace state: its rows of the global
/// sufficient statistics and its broadcast slice of the frozen model.
///
/// The phase methods ([`SubspaceShard::phase_a`],
/// [`SubspaceShard::phase_b`]) are the *worker side* of the sharded
/// subspace computation. [`ShardedEngine`](crate::ShardedEngine) drives
/// them in process through the [`ShardableBackend`] impl; a distributed
/// worker (`netanom-net`) drives the same methods over TCP — one code
/// path, so the two deployments are bitwise identical by construction.
#[derive(Debug, Clone)]
pub struct SubspaceShard {
    /// Statistics rows; maintained only under
    /// [`RefitStrategy::Incremental`].
    pub(crate) stats: Option<CovarianceShard>,
    /// Broadcast slice of the model mean (`m_s` entries).
    mean: Vec<f64>,
    /// Broadcast rows of the normal basis (`m_s × r`).
    basis: Matrix,
}

impl SubspaceShard {
    /// Build a shard from the model it will score against: the slice of
    /// `model`'s mean and normal basis owned by `links`, plus optional
    /// pre-seeded statistics rows. This is exactly the seeding
    /// [`ShardableBackend::make_shards`] performs, exposed so an
    /// out-of-process worker can construct its shard from a broadcast
    /// [`MethodState`] (via [`subspace_model_from_state`]).
    pub fn from_model(
        model: &SubspaceModel,
        links: &[usize],
        stats: Option<CovarianceShard>,
    ) -> Self {
        let mean = model.mean();
        let basis = model.normal_basis();
        SubspaceShard {
            stats,
            mean: links.iter().map(|&l| mean[l]).collect(),
            basis: Matrix::from_fn(links.len(), basis.cols(), |k, j| basis[(links[k], j)]),
        }
    }

    /// Re-cut the model slices after a refit broadcast, keeping the
    /// statistics rows — the worker side of the coordinator's
    /// merge-refit-broadcast step.
    pub fn install_model(&mut self, model: &SubspaceModel, links: &[usize]) {
        let mean = model.mean();
        let basis = model.normal_basis();
        self.mean = links.iter().map(|&l| mean[l]).collect();
        self.basis = Matrix::from_fn(links.len(), basis.cols(), |k, j| basis[(links[k], j)]);
    }

    /// Phase A: cut the raw column slice, center it against the shard's
    /// mean slice, and project onto the shard's basis rows — no
    /// cross-shard information, no state mutation.
    pub fn phase_a(&self, links: &[usize], block: &Matrix) -> SubspacePartial {
        let m_s = links.len();
        let raw = block.select_columns(links);
        let centered = Matrix::from_fn(raw.rows(), m_s, |t, k| raw[(t, k)] - self.mean[k]);
        let coeffs = centered
            .matmul(&self.basis)
            .expect("basis rows match the shard width");
        SubspacePartial {
            raw,
            centered,
            coeffs,
        }
    }

    /// Phase B: given the merged global projection coefficients, compute
    /// the shard's residual slice and partial SPE contributions, and
    /// advance the statistics rows over the block (`evicted[t]` is the
    /// full row the `t`-th window push evicts, `None` while filling).
    pub fn phase_b(
        &mut self,
        partial: &SubspacePartial,
        merged: &Matrix,
        block: &Matrix,
        evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardScores> {
        let modeled = merged
            .matmul_nt(&self.basis)
            .expect("basis width matches the merged coefficients");
        let residual = partial
            .centered
            .sub(&modeled)
            .expect("shapes match by construction");
        let norms = residual.row_norms_sq();
        for t in 0..block.rows() {
            if let Some(stats) = &mut self.stats {
                match &evicted[t] {
                    Some(old) => stats.slide(old, block.row(t))?,
                    None => stats.add(block.row(t))?,
                }
            }
        }
        Ok(ShardScores {
            scores: norms,
            residual: Some(residual),
        })
    }

    /// The shard's statistics rows (`None` under
    /// [`RefitStrategy::FullSvd`]).
    pub fn stats(&self) -> Option<&CovarianceShard> {
        self.stats.as_ref()
    }
}

/// Phase-A output of one subspace shard.
#[derive(Debug)]
pub struct SubspacePartial {
    /// Raw column slice of the block (`b × m_s`).
    raw: Matrix,
    /// Mean-centered slice (`b × m_s`).
    centered: Matrix,
    /// Partial projection coefficients `Z_s · P_s` (`b × r`).
    coeffs: Matrix,
}

impl SubspacePartial {
    /// The partial projection coefficients (`b × r`) the coordinator
    /// merges — the only phase-A output that crosses shard (or process)
    /// boundaries.
    pub fn coeffs(&self) -> &Matrix {
        &self.coeffs
    }
}

/// Sum per-shard projection-coefficient partials (`bins × r` each) **in
/// the given order** from a zero accumulator — the coordinator's merge.
/// Both [`ShardableBackend::merge_partials`] for the in-process engine
/// and the TCP tracker call this one function, so the merged
/// coefficients (and everything downstream) are bitwise identical
/// across transports.
///
/// # Panics
/// Panics if any partial is not `bins × r`.
pub fn merge_coeff_partials<'a, I>(bins: usize, r: usize, partials: I) -> Matrix
where
    I: IntoIterator<Item = &'a Matrix>,
{
    let mut coeffs = Matrix::zeros(bins, r);
    for partial in partials {
        coeffs = coeffs.add(partial).expect("all partials are bins × r");
    }
    coeffs
}

impl ShardableBackend for SubspaceBackend {
    type Shard = SubspaceShard;
    type Partial = SubspacePartial;
    type Merged = Matrix;

    fn make_shards(
        &self,
        partition: &LinkPartition,
        training: &Matrix,
    ) -> Result<Vec<Self::Shard>> {
        let m = self.dim();
        let model = self.diagnoser.model();
        let mut shards = Vec::with_capacity(partition.num_shards());
        for links in partition.groups() {
            let stats = if self.strategy.maintains_statistics() {
                let mut acc = CovarianceShard::new(m, links)?;
                for t in 0..training.rows() {
                    acc.add(training.row(t))?;
                }
                Some(acc)
            } else {
                None
            };
            shards.push(SubspaceShard::from_model(model, links, stats));
        }
        Ok(shards)
    }

    fn needs_evicted(&self) -> bool {
        self.strategy.maintains_statistics()
    }

    fn wants_residual(&self) -> bool {
        true
    }

    fn shard_phase_a(&self, shard: &Self::Shard, links: &[usize], block: &Matrix) -> Self::Partial {
        shard.phase_a(links, block)
    }

    fn partial_raw<'a>(&self, partial: &'a Self::Partial) -> &'a Matrix {
        &partial.raw
    }

    fn merge_partials(&self, bins: usize, partials: &[&Self::Partial]) -> Self::Merged {
        let r = self.diagnoser.model().normal_dim();
        merge_coeff_partials(bins, r, partials.iter().map(|p| p.coeffs()))
    }

    fn shard_phase_b(
        &self,
        shard: &mut Self::Shard,
        _links: &[usize],
        partial: &Self::Partial,
        merged: &Self::Merged,
        block: &Matrix,
        evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardScores> {
        shard.phase_b(partial, merged, block, evicted)
    }

    fn finalize(&self, score: f64, residual: Option<&[f64]>) -> Result<DiagnosisReport> {
        let threshold = self.threshold();
        if score <= threshold {
            return Ok(DiagnosisReport {
                time: 0,
                spe: score,
                threshold,
                detected: false,
                identification: None,
                estimated_bytes: None,
            });
        }
        let residual = residual.expect("wants_residual provides the assembled residual");
        let id = self.diagnoser.identifier().identify(residual)?;
        let bytes = quantify(&id, &self.rm);
        Ok(DiagnosisReport {
            time: 0,
            spe: score,
            threshold,
            detected: true,
            identification: Some(id),
            estimated_bytes: Some(bytes),
        })
    }

    fn refit_shards(&mut self, shards: &mut [Self::Shard], ctx: &[ShardCtx<'_>]) -> Result<()> {
        match self.strategy {
            RefitStrategy::FullSvd => {
                let window = assemble_shard_windows(self.dim(), ctx)?;
                self.refit_from_window(&window)?;
            }
            RefitStrategy::Incremental | RefitStrategy::Truncated { .. } => {
                let mut parts = Vec::with_capacity(shards.len());
                for shard in shards.iter() {
                    parts.push(shard.stats.as_ref().ok_or(CoreError::ShardMismatch {
                        reason: "statistics are only maintained under the incremental \
                                 and truncated refit strategies",
                    })?);
                }
                let stats = IncrementalCovariance::merge(parts)?;
                self.refit_from_statistics(&stats)?;
            }
        }
        // Broadcast the refreshed model's slices back to the shards.
        let model = self.diagnoser.model();
        for (shard, c) in shards.iter_mut().zip(ctx) {
            shard.install_model(model, c.links);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn state_roundtrips_through_bytes() {
        let state = MethodState {
            method: "subspace".to_string(),
            scalars: vec![2.0, 0.999],
            vectors: vec![vec![1.0, -2.5], vec![]],
            matrices: vec![Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64)],
        };
        let bytes = state.to_bytes();
        let back = MethodState::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn state_decoding_rejects_corruption() {
        let state = MethodState {
            method: "x".to_string(),
            scalars: vec![1.0],
            vectors: vec![],
            matrices: vec![],
        };
        let bytes = state.to_bytes();
        // Truncation at every prefix length fails cleanly.
        for cut in 0..bytes.len() {
            assert!(
                MethodState::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(MethodState::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(MethodState::from_bytes(&long).is_err());
    }

    #[test]
    fn subspace_backend_scores_like_the_diagnoser() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let backend = SubspaceBackend::fit(&train, rm, config(), RefitStrategy::FullSvd).unwrap();
        let diag = Diagnoser::fit(&train, rm, config()).unwrap();
        let fresh = training(rm.num_links(), 40, 300);
        for t in 0..fresh.rows() {
            let a = backend.score_vector(fresh.row(t)).unwrap();
            let b = diag.diagnose_vector(fresh.row(t)).unwrap();
            assert_eq!(a, b);
        }
        let batch = backend.score_matrix(&fresh).unwrap();
        let direct = diag.diagnose_series(&fresh).unwrap();
        assert_eq!(batch, direct);
        assert_eq!(backend.name(), "subspace");
        assert_eq!(backend.dim(), rm.num_links());
        assert!(backend.threshold() > 0.0);
    }

    #[test]
    fn subspace_state_export_import_preserves_scoring() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 250, 0);
        let backend = SubspaceBackend::fit(&train, rm, config(), RefitStrategy::FullSvd).unwrap();
        let state = backend.export_state();
        assert_eq!(state.method, "subspace");

        // Import into a backend fitted on *different* data: scoring must
        // become bitwise identical to the exporter.
        let other_train = training(rm.num_links(), 250, 99);
        let mut other =
            SubspaceBackend::fit(&other_train, rm, config(), RefitStrategy::FullSvd).unwrap();
        let restored = MethodState::from_bytes(&state.to_bytes()).unwrap();
        other.import_state(&restored).unwrap();
        assert_eq!(other.threshold(), backend.threshold());
        let fresh = training(rm.num_links(), 30, 500);
        for t in 0..fresh.rows() {
            let a = backend.score_vector(fresh.row(t)).unwrap();
            let b = other.score_vector(fresh.row(t)).unwrap();
            assert_eq!(a, b, "bin {t}");
        }

        // A state for another method is rejected.
        let mut wrong = state.clone();
        wrong.method = "ewma".to_string();
        assert!(matches!(
            other.import_state(&wrong),
            Err(CoreError::InvalidState { .. })
        ));
    }
}
