//! Shared engine-construction configuration for every deployment verb.
//!
//! Historically each online CLI verb (`stream`, `shard`, `tracker`,
//! `worker`) re-parsed the same chunk/refit/window/train-bins options
//! into ad-hoc locals and hand-assembled its engine. [`EngineConfig`] is
//! the one builder they all share now — and the one the persistent
//! `netanom serve` daemon uses to open sessions — so a named engine
//! configuration (method × refit strategy × partition × cadence) means
//! the same thing everywhere.
//!
//! Parsing follows the CLI's error idiom: an unknown value errors with
//! the full valid set (mirroring `netanom --list-methods` and
//! `MethodName::parse`), and the errors are plain `String`s because
//! their audience is a shell or protocol user, not a library caller.
//!
//! The method itself is stored as a *name*: this crate defines the
//! engines and backends, but the method registry (`MethodName` in
//! `netanom-baselines`) lives above it, so resolution of the name into
//! a fitted backend happens in the layer that owns the registry
//! (`netanom_baselines::methods::build_streaming` /
//! `build_sharded`).

use crate::stream::{RefitStrategy, StreamConfig};
use crate::DiagnoserConfig;
use netanom_topology::LinkPartition;

/// The valid `--refit` / `refit=` values, in display order.
pub const REFIT_NAMES: [&str; 3] = ["full", "incremental", "truncated"];

/// The valid `--partition` / partition spec kinds, in display order.
pub const PARTITION_KINDS: [&str; 3] = ["round-robin", "per-pop", "explicit"];

/// How the link set is split across shards, before the link count is
/// known.
///
/// `per-pop` and `explicit` partitions resolve to concrete link groups
/// at the edge (a topology lookup or a partition CSV); both arrive here
/// as [`PartitionSpec::Groups`], so [`PartitionSpec::resolve`] needs
/// only the measurement dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Round-robin link `l` to shard `l % shards`.
    RoundRobin {
        /// Number of shards.
        shards: usize,
    },
    /// Explicit link groups (from `LinkPartition::per_pop` on a
    /// topology, or a user-supplied partition CSV).
    Groups(Vec<Vec<usize>>),
}

impl PartitionSpec {
    /// Resolve into a validated [`LinkPartition`] over `num_links`
    /// links. Errors are user-facing strings, like the other config
    /// parse helpers in this module.
    pub fn resolve(&self, num_links: usize) -> Result<LinkPartition, String> {
        match self {
            PartitionSpec::RoundRobin { shards } => {
                LinkPartition::round_robin(num_links, *shards).map_err(|e| e.to_string())
            }
            PartitionSpec::Groups(groups) => {
                LinkPartition::explicit(num_links, groups.clone()).map_err(|e| e.to_string())
            }
        }
    }

    /// Number of shards this spec describes.
    pub fn num_shards(&self) -> usize {
        match self {
            PartitionSpec::RoundRobin { shards } => *shards,
            PartitionSpec::Groups(groups) => groups.len(),
        }
    }

    /// Parse an explicit-partition CSV (`shard,links` header, one line
    /// per shard with `;`-separated global link indices — the same
    /// shape as `paths.csv`). Shard ids must be `0..K` in order, so a
    /// partition file means the same thing to every process that reads
    /// it.
    pub fn parse_explicit_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some(h) if h.trim() == "shard,links" => {}
            other => {
                return Err(format!(
                    "partition CSV must start with a `shard,links` header, got {:?}",
                    other.unwrap_or("")
                ))
            }
        }
        let mut groups = Vec::new();
        for line in lines {
            let (shard, links) = line
                .split_once(',')
                .ok_or_else(|| format!("partition CSV line {line:?} is not `shard,links`"))?;
            let shard: usize = shard
                .trim()
                .parse()
                .map_err(|_| format!("partition CSV shard id {shard:?} is not an integer"))?;
            if shard != groups.len() {
                return Err(format!(
                    "partition CSV shard ids must be 0..K in order; expected {}, got {shard}",
                    groups.len()
                ));
            }
            let mut group = Vec::new();
            for tok in links.split(';') {
                let l: usize = tok
                    .trim()
                    .parse()
                    .map_err(|_| format!("partition CSV link index {tok:?} is not an integer"))?;
                group.push(l);
            }
            groups.push(group);
        }
        if groups.is_empty() {
            return Err("partition CSV names no shards".to_string());
        }
        Ok(PartitionSpec::Groups(groups))
    }
}

/// Parse a `--refit` value; unknown values error with the valid set.
pub fn parse_refit(value: &str) -> Result<RefitStrategy, String> {
    match value {
        "full" => Ok(RefitStrategy::FullSvd),
        "incremental" => Ok(RefitStrategy::Incremental),
        "truncated" => Ok(RefitStrategy::truncated()),
        other => Err(format!(
            "unknown refit strategy {other:?}; must be {}",
            REFIT_NAMES.join("|")
        )),
    }
}

/// One engine configuration: everything needed to construct a
/// streaming, sharded, or served engine except the training data
/// itself.
///
/// Build it once from flags (or an `open` protocol line), then hand it
/// to `netanom_baselines::methods::build_streaming` /
/// `build_sharded` — the single construction path every verb shares.
///
/// ```
/// use netanom_core::service::EngineConfig;
///
/// let cfg = EngineConfig::new(1008)
///     .unwrap()
///     .with_method("subspace")
///     .with_refit_str("incremental")
///     .unwrap()
///     .with_refit_every(144)
///     .unwrap();
/// assert_eq!(cfg.window(), 1008); // defaults to the training length
/// assert_eq!(cfg.chunk(), EngineConfig::DEFAULT_CHUNK);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    method: String,
    strategy: RefitStrategy,
    refit_every: Option<usize>,
    train_bins: usize,
    window: Option<usize>,
    chunk: usize,
    confidence: f64,
    partition: Option<PartitionSpec>,
}

impl EngineConfig {
    /// Default ingestion chunk (one day of 10-minute bins).
    pub const DEFAULT_CHUNK: usize = 144;
    /// Default detection confidence.
    pub const DEFAULT_CONFIDENCE: f64 = 0.999;

    /// A configuration training on `train_bins` rows with every other
    /// knob at its default: subspace method, full refits, no cadence,
    /// window = training length, chunk 144, confidence 0.999, no
    /// partition.
    pub fn new(train_bins: usize) -> Result<Self, String> {
        if train_bins < 2 {
            return Err(format!(
                "train-bins must be an integer >= 2, got {train_bins}"
            ));
        }
        Ok(EngineConfig {
            method: "subspace".to_string(),
            strategy: RefitStrategy::FullSvd,
            refit_every: None,
            train_bins,
            window: None,
            chunk: Self::DEFAULT_CHUNK,
            confidence: Self::DEFAULT_CONFIDENCE,
            partition: None,
        })
    }

    /// Select the detection method by registry name. The name is
    /// validated by the registry when the engine is built (this crate
    /// does not own the method registry).
    pub fn with_method(mut self, name: &str) -> Self {
        self.method = name.to_string();
        self
    }

    /// Set the refit strategy directly.
    pub fn with_refit(mut self, strategy: RefitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Parse and set the refit strategy; unknown values error with the
    /// valid set.
    pub fn with_refit_str(mut self, value: &str) -> Result<Self, String> {
        self.strategy = parse_refit(value)?;
        Ok(self)
    }

    /// Override the truncated strategy's eigenpair count; errors unless
    /// the strategy is [`RefitStrategy::Truncated`].
    pub fn with_refit_k(mut self, k: usize) -> Result<Self, String> {
        if k == 0 {
            return Err("refit-k must be a positive integer".to_string());
        }
        match self.strategy {
            RefitStrategy::Truncated { tol, .. } => {
                self.strategy = RefitStrategy::Truncated { k, tol };
                Ok(self)
            }
            _ => Err("refit-k only applies with the truncated refit strategy".to_string()),
        }
    }

    /// Refit after every `every` arrivals.
    pub fn with_refit_every(mut self, every: usize) -> Result<Self, String> {
        if every == 0 {
            return Err("refit-every must be a positive integer".to_string());
        }
        self.refit_every = Some(every);
        Ok(self)
    }

    /// Retain a sliding window of `window` rows (default: the training
    /// length).
    pub fn with_window(mut self, window: usize) -> Result<Self, String> {
        if window == 0 {
            return Err("window must be a positive integer".to_string());
        }
        self.window = Some(window);
        Ok(self)
    }

    /// Ingestion chunk size for the batched CSV readers.
    pub fn with_chunk(mut self, chunk: usize) -> Result<Self, String> {
        if chunk == 0 {
            return Err("chunk must be a positive integer".to_string());
        }
        self.chunk = chunk;
        Ok(self)
    }

    /// Detection confidence, strictly inside `(0, 1)`.
    pub fn with_confidence(mut self, confidence: f64) -> Result<Self, String> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(format!(
                "confidence must be strictly between 0 and 1, got {confidence}"
            ));
        }
        self.confidence = confidence;
        Ok(self)
    }

    /// How the link set is partitioned (sharded/distributed verbs).
    pub fn with_partition(mut self, spec: PartitionSpec) -> Self {
        self.partition = Some(spec);
        self
    }

    /// Downgrade a statistics-maintaining strategy that has no refit
    /// cadence to full refits, returning the name of the strategy that
    /// was downgraded (so the caller can tell the user). Statistics
    /// that are never consumed should not be paid for at `O(m²)` per
    /// arrival.
    pub fn normalize(&mut self) -> Option<&'static str> {
        if self.refit_every.is_none() && self.strategy.maintains_statistics() {
            let requested = match self.strategy {
                RefitStrategy::Incremental => "incremental",
                RefitStrategy::Truncated { .. } => "truncated",
                RefitStrategy::FullSvd => unreachable!("maintains no statistics"),
            };
            self.strategy = RefitStrategy::FullSvd;
            Some(requested)
        } else {
            None
        }
    }

    /// The selected method's registry name.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The refit strategy.
    pub fn strategy(&self) -> RefitStrategy {
        self.strategy
    }

    /// The refit cadence in arrivals, if any.
    pub fn refit_every(&self) -> Option<usize> {
        self.refit_every
    }

    /// Training prefix length in rows.
    pub fn train_bins(&self) -> usize {
        self.train_bins
    }

    /// Sliding-window capacity (defaults to the training length).
    pub fn window(&self) -> usize {
        self.window.unwrap_or(self.train_bins)
    }

    /// Ingestion chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Detection confidence.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The partition spec, if one was set.
    pub fn partition(&self) -> Option<&PartitionSpec> {
        self.partition.as_ref()
    }

    /// The engine-level [`StreamConfig`] this configuration describes.
    pub fn stream_config(&self) -> StreamConfig {
        let mut cfg = StreamConfig::new(self.window()).strategy(self.strategy);
        cfg.refit_every = self.refit_every;
        cfg
    }

    /// The [`DiagnoserConfig`] this configuration describes.
    pub fn diagnoser_config(&self) -> DiagnoserConfig {
        DiagnoserConfig {
            confidence: self.confidence,
            ..DiagnoserConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_parse_lists_the_valid_set() {
        let err = parse_refit("sketchy").unwrap_err();
        for name in REFIT_NAMES {
            assert!(err.contains(name), "{err}");
        }
        assert_eq!(parse_refit("full").unwrap(), RefitStrategy::FullSvd);
        assert_eq!(
            parse_refit("incremental").unwrap(),
            RefitStrategy::Incremental
        );
        assert!(matches!(
            parse_refit("truncated").unwrap(),
            RefitStrategy::Truncated { .. }
        ));
    }

    #[test]
    fn builder_validates_ranges() {
        assert!(EngineConfig::new(1).is_err());
        let cfg = EngineConfig::new(100).unwrap();
        assert!(cfg.clone().with_refit_every(0).is_err());
        assert!(cfg.clone().with_window(0).is_err());
        assert!(cfg.clone().with_chunk(0).is_err());
        assert!(cfg.clone().with_confidence(1.0).is_err());
        assert!(cfg.clone().with_refit_k(8).is_err()); // not truncated
        let cfg = cfg.with_refit_str("truncated").unwrap();
        assert!(matches!(
            cfg.with_refit_k(4).unwrap().strategy(),
            RefitStrategy::Truncated { k: 4, .. }
        ));
    }

    #[test]
    fn normalize_downgrades_cadenceless_statistics() {
        let mut cfg = EngineConfig::new(100)
            .unwrap()
            .with_refit(RefitStrategy::Incremental);
        assert_eq!(cfg.normalize(), Some("incremental"));
        assert_eq!(cfg.strategy(), RefitStrategy::FullSvd);

        let mut cfg = EngineConfig::new(100)
            .unwrap()
            .with_refit(RefitStrategy::Incremental)
            .with_refit_every(10)
            .unwrap();
        assert_eq!(cfg.normalize(), None);
        assert_eq!(cfg.strategy(), RefitStrategy::Incremental);
    }

    #[test]
    fn window_defaults_to_train_bins() {
        let cfg = EngineConfig::new(77).unwrap();
        assert_eq!(cfg.window(), 77);
        assert_eq!(cfg.with_window(10).unwrap().window(), 10);
    }

    #[test]
    fn explicit_csv_roundtrip_and_errors() {
        let spec = PartitionSpec::parse_explicit_csv("shard,links\n0,0;2\n1,1;3\n").unwrap();
        assert_eq!(spec, PartitionSpec::Groups(vec![vec![0, 2], vec![1, 3]]));
        let part = spec.resolve(4).unwrap();
        assert_eq!(part.num_shards(), 2);
        assert_eq!(part.group(0), &[0, 2]);

        assert!(PartitionSpec::parse_explicit_csv("flows,links\n0,1").is_err());
        assert!(PartitionSpec::parse_explicit_csv("shard,links\n1,0;1").is_err());
        assert!(PartitionSpec::parse_explicit_csv("shard,links\n0,a;b").is_err());
        assert!(PartitionSpec::parse_explicit_csv("shard,links\n").is_err());
        // Overlapping groups fail at resolve with the topology error.
        let overlap = PartitionSpec::Groups(vec![vec![0, 1], vec![1, 2]]);
        assert!(overlap.resolve(3).is_err());
    }

    #[test]
    fn round_robin_resolves() {
        let spec = PartitionSpec::RoundRobin { shards: 3 };
        assert_eq!(spec.num_shards(), 3);
        let part = spec.resolve(7).unwrap();
        assert_eq!(part.num_shards(), 3);
        assert_eq!(part.group(0), &[0, 3, 6]);
    }
}
