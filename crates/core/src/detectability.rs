//! Per-flow detectability bounds (paper Section 5.4).
//!
//! An anomaly lying entirely inside the normal subspace is invisible to
//! the method. Specializing the sufficient condition of Dunia & Qin to
//! one-dimensional anomalies, an anomaly of magnitude `fᵢ` in flow `i` is
//! guaranteed detectable at confidence `1 − α` when
//!
//! ```text
//! fᵢ > 2·δ_α / ‖C̃θᵢ‖        (magnitude along θᵢ)
//! bᵢ > 2·δ_α / (‖C̃θᵢ‖·‖Aᵢ‖)  (bytes in the flow)
//! ```
//!
//! The smaller `‖C̃θᵢ‖` — i.e. the more the flow's direction lies inside
//! the normal subspace — the larger the anomaly must be. Because the
//! normal subspace aligns with the highest-variance flows, **anomalies of
//! a fixed size are harder to detect in large flows**; this module
//! quantifies that and the evaluation crate plots it (Figure 9).

use netanom_linalg::vector;
use netanom_topology::RoutingMatrix;

use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// The detectability floor of one OD flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDetectability {
    /// Flow index (routing-matrix column).
    pub flow: usize,
    /// `‖C̃θᵢ‖` — the flow direction's norm in the residual subspace
    /// (1.0 = fully visible, 0.0 = undetectable).
    pub residual_norm: f64,
    /// Minimum guaranteed-detectable bytes
    /// `2δ_α / (‖C̃θᵢ‖·‖Aᵢ‖)`; infinite when `residual_norm == 0`.
    pub min_detectable_bytes: f64,
}

/// Compute the Section 5.4 detectability bound for every flow at the
/// given confidence level.
pub fn flow_detectability(
    model: &SubspaceModel,
    rm: &RoutingMatrix,
    confidence: f64,
) -> Result<Vec<FlowDetectability>> {
    if rm.num_links() != model.dim() {
        return Err(CoreError::DimensionMismatch {
            expected: model.dim(),
            got: rm.num_links(),
        });
    }
    let delta = model.q_threshold(confidence)?.delta_sq.sqrt();
    // All C̃θᵢ in one batched projection.
    let theta_tilde = model.residual_directions(rm.theta_matrix())?;
    let mut out = Vec::with_capacity(rm.num_flows());
    for i in 0..rm.num_flows() {
        let residual_norm = vector::norm(&theta_tilde.col(i));
        let a_norm = (rm.path_len(i) as f64).sqrt();
        let min_detectable_bytes = if residual_norm <= 1e-12 {
            f64::INFINITY
        } else {
            2.0 * delta / (residual_norm * a_norm)
        };
        out.push(FlowDetectability {
            flow: i,
            residual_norm,
            min_detectable_bytes,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use crate::subspace::Detector;
    use netanom_linalg::Matrix;
    use netanom_topology::builtin;

    fn setup() -> (SubspaceModel, netanom_topology::Network, Matrix) {
        let net = builtin::line(4);
        let m = net.routing_matrix.num_links();
        let links = Matrix::from_fn(400, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            // Give link 0 a big smooth component so flows over it align
            // with the normal subspace.
            let smooth = if l == 0 {
                5e5 * phase.sin()
            } else {
                2e4 * phase.sin()
            };
            let noise = (((i * m + l).wrapping_mul(2654435761)) % 4096) as f64 - 2048.0;
            1e6 + smooth + noise
        });
        let model =
            SubspaceModel::fit(&links, SeparationPolicy::FixedCount(1), PcaMethod::Svd).unwrap();
        (model, net, links)
    }

    #[test]
    fn bounds_are_positive_and_finite_for_visible_flows() {
        let (model, net, _) = setup();
        let det = flow_detectability(&model, &net.routing_matrix, 0.999).unwrap();
        assert_eq!(det.len(), net.routing_matrix.num_flows());
        for d in &det {
            assert!(d.residual_norm > 0.0 && d.residual_norm <= 1.0 + 1e-9);
            assert!(d.min_detectable_bytes > 0.0);
            assert!(d.min_detectable_bytes.is_finite());
        }
    }

    #[test]
    fn residual_norm_anti_correlates_with_bound() {
        let (model, net, _) = setup();
        let det = flow_detectability(&model, &net.routing_matrix, 0.999).unwrap();
        // Pick the most and least visible flows; the bound must order the
        // other way.
        let most = det
            .iter()
            .max_by(|a, b| a.residual_norm.partial_cmp(&b.residual_norm).unwrap())
            .unwrap();
        let least = det
            .iter()
            .min_by(|a, b| a.residual_norm.partial_cmp(&b.residual_norm).unwrap())
            .unwrap();
        assert!(most.min_detectable_bytes <= least.min_detectable_bytes);
    }

    #[test]
    fn bound_is_sufficient_injections_above_it_are_detected() {
        let (model, net, links) = setup();
        let rm = &net.routing_matrix;
        let det = flow_detectability(&model, rm, 0.999).unwrap();
        let detector = Detector::new(model.clone(), 0.999).unwrap();
        // For a handful of flows, inject 1.5× the bound at a quiet bin and
        // confirm detection. (The bound guarantees detection from a
        // zero-residual start; a clean bin's own residual is small, so a
        // 50% margin keeps the test honest without being flaky.)
        for &f in &[0usize, 5, 9, 13] {
            let b = det[f].min_detectable_bytes * 1.5;
            let mut y = links.row(42).to_vec();
            netanom_linalg::vector::axpy(b, &rm.column(f), &mut y);
            let d = detector.detect_vector(&y).unwrap();
            assert!(
                d.anomalous,
                "flow {f}: injection {b} above bound not detected (spe {} thr {})",
                d.spe, d.threshold
            );
        }
    }

    #[test]
    fn higher_confidence_raises_the_floor() {
        let (model, net, _) = setup();
        let lo = flow_detectability(&model, &net.routing_matrix, 0.995).unwrap();
        let hi = flow_detectability(&model, &net.routing_matrix, 0.999).unwrap();
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b.min_detectable_bytes > a.min_detectable_bytes);
        }
    }

    #[test]
    fn mismatched_routing_matrix_rejected() {
        let (model, _, _) = setup();
        let other = builtin::ring(6);
        assert!(matches!(
            flow_detectability(&model, &other.routing_matrix, 0.999),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
