//! Multi-flow anomalies (paper Section 7.2).
//!
//! An anomaly may involve several OD flows with different intensities —
//! the paper's examples are routing shifts and DDoS attacks converging on
//! one destination. The single direction `θᵢ` becomes a matrix `Θ` whose
//! columns are the participating flows' normalized routing columns, and
//! the scalar `fᵢ` becomes a vector estimated by least squares in the
//! residual subspace:
//!
//! ```text
//! f̂ = (Θ̃ᵀΘ̃)⁻¹ Θ̃ᵀ ỹ,   Θ̃ = C̃Θ
//! ```
//!
//! [`estimate_intensities`] solves that for a *known* candidate set;
//! [`greedy_identify`] searches for an unknown set by matching pursuit
//! (repeatedly adding the single flow that explains the most remaining
//! residual, then re-solving jointly) — the natural extension of the
//! paper's argmin to subsets without combinatorial search.

use netanom_linalg::decomposition::Cholesky;
use netanom_linalg::{vector, Matrix};
use netanom_topology::RoutingMatrix;

use crate::identify::Identifier;
use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// A multi-flow identification: participating flows with per-flow
/// magnitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFlowAnomaly {
    /// Participating flow indices.
    pub flows: Vec<usize>,
    /// Estimated magnitude `f̂ᵢ` along each flow's `θᵢ` (same order as
    /// `flows`).
    pub f_hat: Vec<f64>,
    /// Residual energy before removal.
    pub residual_energy: f64,
    /// Residual energy after removing the joint hypothesis.
    pub remaining_energy: f64,
}

impl MultiFlowAnomaly {
    /// Estimated bytes per participating flow (`f̂ᵢ/‖Aᵢ‖`).
    pub fn estimated_bytes(&self, rm: &RoutingMatrix) -> Vec<f64> {
        self.flows
            .iter()
            .zip(&self.f_hat)
            .map(|(&f, &fh)| fh / (rm.path_len(f) as f64).sqrt())
            .collect()
    }

    /// Fraction of the residual energy the joint hypothesis explains.
    pub fn explained_fraction(&self) -> f64 {
        if self.residual_energy <= 0.0 {
            0.0
        } else {
            1.0 - self.remaining_energy / self.residual_energy
        }
    }
}

/// The `m × k` matrix whose columns are `θ_f` for the listed flows.
fn theta_columns(rm: &RoutingMatrix, flows: &[usize]) -> Matrix {
    let cols: Vec<Vec<f64>> = flows.iter().map(|&f| rm.theta(f)).collect();
    Matrix::from_columns(&cols)
}

/// Estimate the intensities of a *known* set of participating flows
/// (paper Section 7.2: "replace θᵢ with a matrix Θᵢ … and fᵢ with a
/// vector fᵢ").
///
/// Returns [`CoreError::DependentCandidates`] when the flows' residual
/// footprints are linearly dependent (e.g. two flows routed identically),
/// [`CoreError::NoCandidates`] for an empty set.
pub fn estimate_intensities(
    model: &SubspaceModel,
    rm: &RoutingMatrix,
    flows: &[usize],
    y: &[f64],
) -> Result<MultiFlowAnomaly> {
    let residual = model.residual(y)?;
    estimate_from_residual(model, rm, flows, &residual)
}

/// [`estimate_intensities`] against an already-projected residual
/// `ỹ = C̃(y − μ)` — the streaming/pursuit entry point, which avoids
/// re-projecting the measurement on every candidate-set evaluation.
pub fn estimate_from_residual(
    model: &SubspaceModel,
    rm: &RoutingMatrix,
    flows: &[usize],
    residual: &[f64],
) -> Result<MultiFlowAnomaly> {
    if flows.is_empty() {
        return Err(CoreError::NoCandidates);
    }
    let energy = vector::norm_sq(residual);

    // Θ̃ columns, projected in one batch.
    let theta_tilde = model.residual_directions(&theta_columns(rm, flows))?;

    // Normal equations: (Θ̃ᵀΘ̃) f = Θ̃ᵀ ỹ.
    let gram = theta_tilde.gram();
    let rhs = theta_tilde
        .matvec_t(residual)
        .expect("dims consistent by construction");
    let chol = Cholesky::new(&gram).map_err(|_| CoreError::DependentCandidates)?;
    let f_hat = chol.solve(&rhs).expect("rhs length matches gram dim");

    // Remaining energy after removing the joint hypothesis.
    let fitted = theta_tilde
        .matvec(&f_hat)
        .expect("dims consistent by construction");
    let remaining = vector::norm_sq(&vector::sub(residual, &fitted));

    Ok(MultiFlowAnomaly {
        flows: flows.to_vec(),
        f_hat,
        residual_energy: energy,
        remaining_energy: remaining,
    })
}

/// Exhaustive two-flow identification: extend the candidate set from
/// single flows to all unordered flow pairs, exactly as the paper
/// suggests ("to identify anomalies involving any two flows, one simply
/// extends {Fᵢ} to include the new anomalies").
///
/// For each pair `(i, j)` the explained residual energy is
/// `bᵀG⁻¹b` with `G = [θ̃ᵢᵀθ̃ᵢ, θ̃ᵢᵀθ̃ⱼ; ·, θ̃ⱼᵀθ̃ⱼ]` and
/// `b = [θ̃ᵢᵀỹ, θ̃ⱼᵀỹ]`; the Gram matrix over all flows is computed once
/// (`O(m·n²)`), after which each pair costs a closed-form 2×2 solve, so
/// the full sweep over `n(n−1)/2` pairs stays interactive even for
/// Sprint's 169 flows (14 196 pairs).
///
/// Returns the best pair with its jointly-estimated magnitudes. Pairs
/// whose residual footprints are numerically dependent (nested routes)
/// are skipped — link data cannot distinguish their members.
pub fn identify_best_pair(
    model: &SubspaceModel,
    rm: &RoutingMatrix,
    y: &[f64],
) -> Result<MultiFlowAnomaly> {
    let n = rm.num_flows();
    if n < 2 {
        return Err(CoreError::NoCandidates);
    }
    let residual = model.residual(y)?;
    let energy = vector::norm_sq(&residual);

    // Θ̃ for all flows in one batched projection, then its Gram matrix
    // and projections onto ỹ.
    let theta_tilde = model.residual_directions(rm.theta_matrix())?;
    let gram = theta_tilde.gram();
    let b = theta_tilde
        .matvec_t(&residual)
        .expect("dims consistent by construction");

    let mut best: Option<(usize, usize, f64, [f64; 2])> = None;
    for i in 0..n {
        let gii = gram[(i, i)];
        if gii <= 1e-12 {
            continue;
        }
        for j in (i + 1)..n {
            let gjj = gram[(j, j)];
            if gjj <= 1e-12 {
                continue;
            }
            let gij = gram[(i, j)];
            let det = gii * gjj - gij * gij;
            // Skip (near-)dependent pairs: nested or identical routes.
            if det <= 1e-9 * gii * gjj {
                continue;
            }
            // Closed-form 2x2 solve for f̂ and the explained energy.
            let fi = (gjj * b[i] - gij * b[j]) / det;
            let fj = (gii * b[j] - gij * b[i]) / det;
            let explained = b[i] * fi + b[j] * fj;
            match best {
                Some((_, _, e, _)) if e >= explained => {}
                _ => best = Some((i, j, explained, [fi, fj])),
            }
        }
    }
    let (i, j, explained, f_hat) = best.ok_or(CoreError::NoCandidates)?;
    Ok(MultiFlowAnomaly {
        flows: vec![i, j],
        f_hat: f_hat.to_vec(),
        residual_energy: energy,
        remaining_energy: (energy - explained).max(0.0),
    })
}

/// Greedy matching-pursuit identification of an unknown multi-flow
/// anomaly with at most `max_flows` participants.
///
/// Iteratively adds the single flow explaining the most remaining
/// residual (using `identifier`) and re-solves the joint least squares.
/// A flow is kept only if it reduces the remaining energy by at least
/// `min_gain` **as a fraction of the original residual energy** — true
/// participants each explain tens of percent of the anomaly, while a
/// noise-fitting flow explains a few percent at most, so `min_gain ≈ 0.05`
/// separates them cleanly.
pub fn greedy_identify(
    model: &SubspaceModel,
    rm: &RoutingMatrix,
    identifier: &Identifier,
    y: &[f64],
    max_flows: usize,
    min_gain: f64,
) -> Result<MultiFlowAnomaly> {
    if max_flows == 0 {
        return Err(CoreError::NoCandidates);
    }
    let full_residual = model.residual(y)?;
    let mut flows: Vec<usize> = Vec::new();
    let mut best: Option<MultiFlowAnomaly> = None;
    let mut working = full_residual.clone();

    for _ in 0..max_flows {
        let id = identifier.identify(&working)?;
        if flows.contains(&id.flow) {
            break; // pursuit stalled on an already-selected flow
        }
        flows.push(id.flow);
        let joint = estimate_from_residual(model, rm, &flows, &full_residual);
        let joint = match joint {
            Ok(j) => j,
            Err(CoreError::DependentCandidates) => {
                // The newly added flow is redundant; stop with what we had.
                flows.pop();
                break;
            }
            Err(e) => return Err(e),
        };
        let gain_floor = min_gain.clamp(0.0, 1.0) * joint.residual_energy;
        let improved = match &best {
            None => true,
            Some(prev) => prev.remaining_energy - joint.remaining_energy >= gain_floor,
        };
        if !improved {
            flows.pop();
            break;
        }
        // Update the working residual to what the joint fit leaves.
        let theta_tilde = model.residual_directions(&theta_columns(rm, &flows))?;
        let fitted = theta_tilde
            .matvec(&joint.f_hat)
            .expect("dims consistent by construction");
        working = vector::sub(&full_residual, &fitted);
        best = Some(joint);
    }

    best.ok_or(CoreError::NoCandidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_topology::builtin;

    fn setup() -> (SubspaceModel, Identifier, netanom_topology::Network, Matrix) {
        let net = builtin::sprint_europe();
        let m = net.routing_matrix.num_links();
        let links = Matrix::from_fn(600, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 3e5 * phase.sin() * ((l % 5) as f64 + 1.0);
            let noise = (((i * m + l).wrapping_mul(0x9E3779B9)) % 16384) as f64 - 8192.0;
            5e6 + smooth + noise
        });
        let model =
            SubspaceModel::fit(&links, SeparationPolicy::FixedCount(2), PcaMethod::Svd).unwrap();
        let ident = Identifier::new(&model, &net.routing_matrix).unwrap();
        (model, ident, net, links)
    }

    #[test]
    fn known_set_recovers_intensities() {
        let (model, _, net, links) = setup();
        let rm = &net.routing_matrix;
        let flows = [20usize, 87];
        let sizes = [4e6, 7e6];
        let mut y = links.row(100).to_vec();
        for (&f, &s) in flows.iter().zip(&sizes) {
            vector::axpy(s, &rm.column(f), &mut y);
        }
        let est = estimate_intensities(&model, rm, &flows, &y).unwrap();
        let bytes = est.estimated_bytes(rm);
        for ((&truth, est_b), &f) in sizes.iter().zip(&bytes).zip(&flows) {
            assert!(
                (est_b / truth - 1.0).abs() < 0.3,
                "flow {f}: estimated {est_b} vs {truth}"
            );
        }
        assert!(est.explained_fraction() > 0.8);
    }

    #[test]
    fn greedy_finds_two_flow_ddos() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        // Two flows converging on the same destination PoP — a DDoS shape.
        let n = net.topology.num_pops();
        let dst = 8usize;
        let f1 = 2 * n + dst; // origin 2 -> dst
        let f2 = 11 * n + dst; // origin 11 -> dst
        let mut y = links.row(222).to_vec();
        vector::axpy(9e6, &rm.column(f1), &mut y);
        vector::axpy(6e6, &rm.column(f2), &mut y);

        let found = greedy_identify(&model, rm, &ident, &y, 4, 0.05).unwrap();
        assert!(
            found.flows.contains(&f1) && found.flows.contains(&f2),
            "found {:?}, wanted {f1} and {f2}",
            found.flows
        );
        assert!(found.explained_fraction() > 0.85);
    }

    #[test]
    fn greedy_stops_at_single_flow_for_single_anomaly() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        let mut y = links.row(50).to_vec();
        vector::axpy(1.2e7, &rm.column(33), &mut y);
        let found = greedy_identify(&model, rm, &ident, &y, 5, 0.05).unwrap();
        assert_eq!(found.flows[0], 33);
        assert!(
            found.flows.len() <= 2,
            "greedy over-selected: {:?}",
            found.flows
        );
    }

    #[test]
    fn joint_beats_marginal_for_overlapping_flows() {
        let (model, _, net, links) = setup();
        let rm = &net.routing_matrix;
        // Two flows sharing links (same origin): marginal estimates double
        // count; the joint solve shouldn't.
        let n = net.topology.num_pops();
        let f1 = 3 * n + 9;
        let f2 = 3 * n + 10;
        let mut y = links.row(300).to_vec();
        vector::axpy(5e6, &rm.column(f1), &mut y);
        vector::axpy(5e6, &rm.column(f2), &mut y);
        let joint = estimate_intensities(&model, rm, &[f1, f2], &y).unwrap();
        let bytes = joint.estimated_bytes(rm);
        for b in &bytes {
            assert!((b / 5e6 - 1.0).abs() < 0.35, "joint estimate {b} vs 5e6");
        }
    }

    #[test]
    fn duplicate_flows_are_dependent() {
        let (model, _, net, links) = setup();
        let rm = &net.routing_matrix;
        let y = links.row(10).to_vec();
        assert!(matches!(
            estimate_intensities(&model, rm, &[5, 5], &y),
            Err(CoreError::DependentCandidates)
        ));
    }

    #[test]
    fn empty_set_rejected() {
        let (model, ident, net, links) = setup();
        let y = links.row(0).to_vec();
        assert!(matches!(
            estimate_intensities(&model, &net.routing_matrix, &[], &y),
            Err(CoreError::NoCandidates)
        ));
        assert!(matches!(
            greedy_identify(&model, &net.routing_matrix, &ident, &y, 0, 0.1),
            Err(CoreError::NoCandidates)
        ));
    }

    #[test]
    fn best_pair_recovers_two_disjoint_anomalies() {
        let (model, _, net, links) = setup();
        let rm = &net.routing_matrix;
        let flows = [25usize, 140];
        let sizes = [8e6, 6e6];
        let mut y = links.row(77).to_vec();
        for (&f, &s) in flows.iter().zip(&sizes) {
            vector::axpy(s, &rm.column(f), &mut y);
        }
        let pair = identify_best_pair(&model, rm, &y).unwrap();
        let mut found = pair.flows.clone();
        found.sort_unstable();
        assert_eq!(found, vec![25, 140], "found {:?}", pair.flows);
        assert!(pair.explained_fraction() > 0.85);
        // Joint magnitudes land near the injected sizes.
        let bytes = pair.estimated_bytes(rm);
        for (&f, est) in pair.flows.iter().zip(bytes) {
            let truth = if f == 25 { 8e6 } else { 6e6 };
            assert!(
                (est / truth - 1.0).abs() < 0.35,
                "flow {f}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn best_pair_agrees_with_joint_estimate() {
        let (model, _, net, links) = setup();
        let rm = &net.routing_matrix;
        let mut y = links.row(90).to_vec();
        vector::axpy(7e6, &rm.column(30), &mut y);
        vector::axpy(9e6, &rm.column(95), &mut y);
        let pair = identify_best_pair(&model, rm, &y).unwrap();
        let direct = estimate_intensities(&model, rm, &pair.flows, &y).unwrap();
        for (a, b) in pair.f_hat.iter().zip(&direct.f_hat) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
        assert!(
            (pair.remaining_energy - direct.remaining_energy).abs() < 1e-6 * pair.residual_energy
        );
    }

    #[test]
    fn best_pair_needs_two_candidates() {
        let (model, _, _, links) = setup();
        let tiny = builtin::line(1); // 1 PoP -> a single self-flow
        assert!(matches!(
            identify_best_pair(&model, &tiny.routing_matrix, links.row(0)),
            Err(CoreError::NoCandidates) | Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn single_flow_multiflow_matches_identifier() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        let mut y = links.row(150).to_vec();
        vector::axpy(8e6, &rm.column(60), &mut y);
        let single = ident.identify(&model.residual(&y).unwrap()).unwrap();
        let multi = estimate_intensities(&model, rm, &[single.flow], &y).unwrap();
        assert!((multi.f_hat[0] - single.f_hat).abs() < 1e-6 * single.f_hat.abs());
    }
}
