//! Separation of the principal axes into normal and anomalous sets.

use netanom_linalg::stats;

use crate::pca::Pca;

/// Policy deciding the dimension `r` of the normal subspace.
///
/// The paper uses the **3σ rule** (Section 4.3): walk the principal axes in
/// order; the first axis whose temporal projection `uᵢ` contains a value
/// more than three standard deviations from its mean — i.e. whose common
/// temporal pattern contains a spike rather than a smooth trend — starts
/// the anomalous subspace, and all subsequent axes join it. On the paper's
/// data this consistently selected `r = 4`.
///
/// The two alternative policies exist for the ablation benches: a fixed
/// `r`, and the classical cumulative-variance criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeparationPolicy {
    /// The paper's rule with a configurable σ multiplier (paper: 3.0).
    ThreeSigma {
        /// Threshold in standard deviations.
        sigma: f64,
    },
    /// Always use the first `r` axes as the normal subspace.
    FixedCount(
        /// The normal-subspace dimension.
        usize,
    ),
    /// Smallest `r` capturing at least this fraction of total variance.
    VarianceFraction(
        /// Fraction in `(0, 1]`.
        f64,
    ),
}

impl Default for SeparationPolicy {
    fn default() -> Self {
        SeparationPolicy::ThreeSigma { sigma: 3.0 }
    }
}

impl SeparationPolicy {
    /// Select the normal-subspace dimension `r ∈ [0, m]` for a fitted PCA.
    ///
    /// `r = 0` means everything is anomalous (no axis passed the test);
    /// `r = m` means no residual remains (callers building a detector
    /// treat that as an error).
    pub fn normal_dim(&self, pca: &Pca) -> usize {
        let m = pca.dim();
        match *self {
            SeparationPolicy::FixedCount(r) => r.min(m),
            SeparationPolicy::VarianceFraction(f) => pca.effective_dimension(f.clamp(0.0, 1.0)),
            SeparationPolicy::ThreeSigma { sigma } => {
                for i in 0..m {
                    // Skip axes with no variance: their projections are
                    // zero vectors and carry no information either way;
                    // they belong to the residual.
                    if pca.eigenvalues()[i] <= 0.0 {
                        return i;
                    }
                    let u = pca.temporal_projection(i);
                    let mean = stats::mean(&u);
                    let sd = stats::std_dev(&u);
                    if sd == 0.0 {
                        return i;
                    }
                    let spiky = u.iter().any(|&x| (x - mean).abs() > sigma * sd);
                    if spiky {
                        return i;
                    }
                }
                m
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use netanom_linalg::Matrix;

    /// Data with two smooth strong directions and a third direction
    /// containing a single huge spike.
    fn smooth_plus_spike(t: usize) -> Matrix {
        Matrix::from_fn(t, 6, |i, j| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = match j {
                0 | 1 => 1e4 * phase.sin(),
                2 | 3 => 5e3 * phase.cos(),
                _ => 0.0,
            };
            // A one-bin spike confined to links 4 and 5.
            let spike = if i == t / 2 && j >= 4 { 2.0e3 } else { 0.0 };
            let noise = ((i * 6 + j).wrapping_mul(2654435761) % 997) as f64 * 0.05;
            1e5 + smooth + spike + noise
        })
    }

    #[test]
    fn three_sigma_keeps_smooth_axes_normal() {
        let y = smooth_plus_spike(432);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let r = SeparationPolicy::default().normal_dim(&pca);
        // The two sinusoidal directions must be normal; the spike axis
        // must not be.
        assert!((2..=3).contains(&r), "r = {r}");
    }

    #[test]
    fn fixed_count_is_clamped() {
        let y = smooth_plus_spike(300);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        assert_eq!(SeparationPolicy::FixedCount(4).normal_dim(&pca), 4);
        assert_eq!(SeparationPolicy::FixedCount(100).normal_dim(&pca), 6);
        assert_eq!(SeparationPolicy::FixedCount(0).normal_dim(&pca), 0);
    }

    #[test]
    fn variance_fraction_policy() {
        let y = smooth_plus_spike(300);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let r_small = SeparationPolicy::VarianceFraction(0.5).normal_dim(&pca);
        let r_large = SeparationPolicy::VarianceFraction(0.9999).normal_dim(&pca);
        assert!(r_small <= r_large);
        assert!(r_small >= 1);
    }

    #[test]
    fn lower_sigma_is_stricter() {
        let y = smooth_plus_spike(432);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let r3 = SeparationPolicy::ThreeSigma { sigma: 3.0 }.normal_dim(&pca);
        let r1 = SeparationPolicy::ThreeSigma { sigma: 1.0 }.normal_dim(&pca);
        assert!(r1 <= r3, "sigma=1 ({r1}) should not exceed sigma=3 ({r3})");
        // With sigma = 1 even a sine exceeds the band, so nothing is
        // normal.
        assert_eq!(r1, 0);
    }

    #[test]
    fn pure_gaussian_noise_eventually_spikes() {
        // Max of ~400 standard normals exceeds 3σ with probability ≈ 0.66;
        // use hash noise which is uniform — bounded, so it never exceeds
        // 3σ of itself. Uniform noise on all axes → all axes normal.
        let y = Matrix::from_fn(400, 4, |i, j| {
            ((i * 4 + j).wrapping_mul(2654435761) % 4096) as f64
        });
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let r = SeparationPolicy::default().normal_dim(&pca);
        // Uniform noise has max/σ ≈ √3 < 3, so every axis passes.
        assert_eq!(r, 4);
    }

    #[test]
    fn rank_deficient_tail_goes_to_residual() {
        // Rank-2 data in 5 dims: axes 3..5 have zero variance and must be
        // residual under the 3σ rule.
        let y = Matrix::from_fn(200, 5, |i, j| match j {
            0 => (i as f64 * 0.1).sin() * 100.0,
            1 => (i as f64 * 0.1).cos() * 90.0,
            _ => 0.0,
        });
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let r = SeparationPolicy::default().normal_dim(&pca);
        assert!(r <= 2, "zero-variance axes must be anomalous, r = {r}");
    }
}
