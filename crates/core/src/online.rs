//! Online (streaming) deployment of the subspace method — compatibility
//! surface.
//!
//! The paper envisions the method "as a first-level online monitoring
//! tool" (Section 7.1): the SVD is computed occasionally (the subspace is
//! stable week over week), and each arriving measurement vector is
//! processed against the frozen model in `O(m·r)`.
//!
//! [`OnlineDiagnoser`] is the original API for that deployment. It is now
//! a thin wrapper over [`StreamingEngine`] — the ring-buffered,
//! sufficient-statistics streaming engine in [`crate::stream`] — run
//! under [`RefitStrategy::FullSvd`], which preserves the historical
//! semantics exactly (bitwise, including mid-block refit boundaries; see
//! `tests/stream_parity.rs`). New code should use [`StreamingEngine`]
//! directly: it exposes the cheap incremental refit strategy and
//! multi-way streaming that this wrapper does not.
//!
//! [`RefitStrategy::FullSvd`]: crate::stream::RefitStrategy::FullSvd

use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

use crate::diagnose::{Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::method::{DetectionBackend, SubspaceBackend};
use crate::stream::{StreamConfig, StreamingEngine};
use crate::Result;

/// Streaming diagnoser: frozen model, per-arrival diagnosis, optional
/// periodic refit.
///
/// Backed by a [`StreamingEngine`]; generic over the
/// [`DetectionBackend`] like the engine itself (default: the subspace
/// method with the full-fit refit strategy, which preserves the
/// historical semantics exactly).
#[derive(Debug, Clone)]
pub struct OnlineDiagnoser<B: DetectionBackend = SubspaceBackend> {
    engine: StreamingEngine<B>,
}

impl OnlineDiagnoser<SubspaceBackend> {
    /// Bootstrap from historical training data (e.g. last week's
    /// measurements).
    ///
    /// `window_capacity` bounds the retained history used for refits;
    /// `refit_every = Some(k)` recomputes the subspace after every `k`
    /// arrivals — the paper notes "one need only compute the SVD
    /// occasionally, rather than at each timestep".
    pub fn new(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        window_capacity: usize,
        refit_every: Option<usize>,
    ) -> Result<Self> {
        let mut stream = StreamConfig::new(window_capacity);
        stream.refit_every = refit_every;
        Ok(OnlineDiagnoser {
            engine: StreamingEngine::new(training, rm, config, stream)?,
        })
    }

    /// The current (frozen) diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        self.engine.diagnoser()
    }
}

impl<B: DetectionBackend> OnlineDiagnoser<B> {
    /// Wrap an already-assembled streaming engine (any backend).
    pub fn from_engine(engine: StreamingEngine<B>) -> Self {
        OnlineDiagnoser { engine }
    }

    /// Total measurements processed so far.
    pub fn arrivals(&self) -> usize {
        self.engine.arrivals()
    }

    /// The backing streaming engine.
    pub fn engine(&self) -> &StreamingEngine<B> {
        &self.engine
    }

    /// Unwrap into the backing streaming engine.
    pub fn into_engine(self) -> StreamingEngine<B> {
        self.engine
    }

    /// Process one arriving measurement vector: diagnose it against the
    /// frozen model, append it to the window, and refit if due.
    ///
    /// The report's `time` is the arrival counter (0-based).
    pub fn process(&mut self, y: &[f64]) -> Result<DiagnosisReport> {
        self.engine.process(y)
    }

    /// Process a whole block of arrivals (rows of a `b × m` matrix) at
    /// once; see [`StreamingEngine::process_batch`].
    pub fn process_batch(&mut self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        self.engine.process_batch(links)
    }

    /// Refreeze the model from the current window.
    pub fn refit(&mut self) -> Result<()> {
        self.engine.refit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn online_matches_batch_when_frozen() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let fresh = training(rm.num_links(), 100, 400);

        let batch = Diagnoser::fit(&train, rm, config()).unwrap();
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 400, None).unwrap();

        for t in 0..fresh.rows() {
            let b = batch.diagnose_vector(fresh.row(t)).unwrap();
            let o = online.process(fresh.row(t)).unwrap();
            assert_eq!(o.time, t);
            assert!((b.spe - o.spe).abs() < 1e-9 * b.spe.max(1.0));
            assert_eq!(b.detected, o.detected);
        }
    }

    #[test]
    fn detects_streamed_anomaly() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 400, None).unwrap();

        let mut y = training(rm.num_links(), 1, 997).row(0).to_vec();
        vector::axpy(8e6, &rm.column(6), &mut y);
        let rep = online.process(&y).unwrap();
        assert!(rep.detected);
        assert_eq!(rep.identification.unwrap().flow, 6);
    }

    #[test]
    fn refit_happens_on_schedule() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();

        let fresh = training(rm.num_links(), 120, 300);
        for t in 0..fresh.rows() {
            online.process(fresh.row(t)).unwrap();
        }
        assert_eq!(online.arrivals(), 120);
        assert_eq!(online.engine().refits(), 2);
        // After two refits the window has absorbed the fresh data; the
        // model must still behave (no alarm storm on clean traffic).
        let tail = training(rm.num_links(), 50, 777);
        let alarms = (0..tail.rows())
            .filter(|&t| online.process(tail.row(t)).unwrap().detected)
            .count();
        assert!(alarms <= 2, "{alarms} alarms after refit");
    }

    #[test]
    fn process_batch_equals_sequential_processing() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        // Refit every 50 so the batch spans several refit boundaries.
        let mut seq = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();
        let mut batch = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();

        let fresh = training(rm.num_links(), 130, 300);
        let seq_reports: Vec<_> = (0..fresh.rows())
            .map(|t| seq.process(fresh.row(t)).unwrap())
            .collect();
        let batch_reports = batch.process_batch(&fresh).unwrap();

        assert_eq!(batch_reports.len(), seq_reports.len());
        for (b, s) in batch_reports.iter().zip(&seq_reports) {
            assert_eq!(b.time, s.time);
            assert_eq!(b.detected, s.detected, "divergence at arrival {}", s.time);
            assert!(
                (b.spe - s.spe).abs() <= 1e-12 * s.spe.max(1.0),
                "spe divergence at arrival {}",
                s.time
            );
        }
        assert_eq!(batch.arrivals(), seq.arrivals());
        assert_eq!(
            batch.engine().arrivals_since_refit(),
            seq.engine().arrivals_since_refit()
        );
        let (bw, sw) = (batch.engine().window(), seq.engine().window());
        assert_eq!(bw.len(), sw.len());
        for i in 0..bw.len() {
            assert_eq!(bw.row(i), sw.row(i), "window row {i}");
        }
    }

    #[test]
    fn window_is_bounded() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 100, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 100, None).unwrap();
        let fresh = training(rm.num_links(), 250, 100);
        for t in 0..fresh.rows() {
            online.process(fresh.row(t)).unwrap();
        }
        assert_eq!(online.engine().window().len(), 100);
        // The retained rows are exactly the last 100 arrivals, in order.
        for i in 0..100 {
            assert_eq!(online.engine().window().row(i), fresh.row(150 + i));
        }
    }

    #[test]
    fn manual_refit_resets_counter() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 200, Some(1000)).unwrap();
        let y = train.row(10).to_vec();
        online.process(&y).unwrap();
        online.refit().unwrap();
        assert_eq!(online.engine().arrivals_since_refit(), 0);
        assert_eq!(online.arrivals(), 1);
    }
}
