//! Online (streaming) deployment of the subspace method.
//!
//! The paper envisions the method "as a first-level online monitoring
//! tool" (Section 7.1): the SVD is computed occasionally (the subspace is
//! stable week over week), and each arriving measurement vector is
//! processed against the frozen model in `O(m·r)`. [`OnlineDiagnoser`]
//! implements exactly that, plus an optional periodic refit from a sliding
//! window of recent measurements.

use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

use crate::diagnose::{Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::Result;

/// Streaming diagnoser: frozen subspace model, per-arrival diagnosis,
/// optional periodic refit.
#[derive(Debug, Clone)]
pub struct OnlineDiagnoser {
    diagnoser: Diagnoser,
    rm: RoutingMatrix,
    config: DiagnoserConfig,
    /// Sliding window of recent measurements, used for refits.
    window: Vec<Vec<f64>>,
    /// Maximum number of measurements retained.
    window_capacity: usize,
    /// Refit the model after this many arrivals (`None` = never).
    refit_every: Option<usize>,
    arrivals_since_fit: usize,
    arrivals_total: usize,
}

impl OnlineDiagnoser {
    /// Bootstrap from historical training data (e.g. last week's
    /// measurements).
    ///
    /// `window_capacity` bounds the retained history used for refits;
    /// `refit_every = Some(k)` recomputes the subspace after every `k`
    /// arrivals — the paper notes "one need only compute the SVD
    /// occasionally, rather than at each timestep".
    pub fn new(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        window_capacity: usize,
        refit_every: Option<usize>,
    ) -> Result<Self> {
        let diagnoser = Diagnoser::fit(training, rm, config)?;
        let capacity = window_capacity.max(training.rows());
        let mut window = Vec::with_capacity(capacity);
        let start = training.rows().saturating_sub(capacity);
        for t in start..training.rows() {
            window.push(training.row(t).to_vec());
        }
        Ok(OnlineDiagnoser {
            diagnoser,
            rm: rm.clone(),
            config,
            window,
            window_capacity: capacity,
            refit_every,
            arrivals_since_fit: 0,
            arrivals_total: 0,
        })
    }

    /// Total measurements processed so far.
    pub fn arrivals(&self) -> usize {
        self.arrivals_total
    }

    /// The current (frozen) diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        &self.diagnoser
    }

    /// Process one arriving measurement vector: diagnose it against the
    /// frozen model, append it to the window, and refit if due.
    ///
    /// The report's `time` is the arrival counter (0-based).
    pub fn process(&mut self, y: &[f64]) -> Result<DiagnosisReport> {
        let mut report = self.diagnoser.diagnose_vector(y)?;
        report.time = self.arrivals_total;
        self.arrivals_total += 1;
        self.arrivals_since_fit += 1;

        if self.window.len() == self.window_capacity {
            self.window.remove(0);
        }
        self.window.push(y.to_vec());

        if let Some(k) = self.refit_every {
            if self.arrivals_since_fit >= k {
                self.refit()?;
            }
        }
        Ok(report)
    }

    /// Process a whole block of arrivals (rows of a `b × m` matrix) at
    /// once.
    ///
    /// Equivalent to calling [`OnlineDiagnoser::process`] on every row in
    /// order — including mid-block refits, which are honored by
    /// diagnosing batch-wise only up to each refit boundary — but the
    /// diagnosis between refits runs through the batched
    /// [`Diagnoser::diagnose_series`] GEMM path. This is the intended
    /// entry point for replaying backlogs or micro-batched collection
    /// (e.g. one SNMP poll cycle per call).
    pub fn process_batch(&mut self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let mut out = Vec::with_capacity(links.rows());
        let mut next = 0;
        while next < links.rows() {
            let until_refit = match self.refit_every {
                Some(k) => k.saturating_sub(self.arrivals_since_fit).max(1),
                None => links.rows() - next,
            };
            let take = until_refit.min(links.rows() - next);
            let block = links.row_block(next, take).expect("range checked");
            let mut reports = self.diagnoser.diagnose_series(&block)?;
            for rep in &mut reports {
                rep.time = self.arrivals_total;
                self.arrivals_total += 1;
                self.arrivals_since_fit += 1;
            }
            out.append(&mut reports);
            for t in next..next + take {
                if self.window.len() == self.window_capacity {
                    self.window.remove(0);
                }
                self.window.push(block.row(t - next).to_vec());
            }
            next += take;
            if let Some(k) = self.refit_every {
                if self.arrivals_since_fit >= k {
                    self.refit()?;
                }
            }
        }
        Ok(out)
    }

    /// Recompute the subspace model from the current window.
    ///
    /// Anomalous bins contaminate a refit slightly; the paper's
    /// week-over-week stability argument is that the top components are
    /// dominated by diurnal structure, so sparse spikes barely move them.
    pub fn refit(&mut self) -> Result<()> {
        let training = Matrix::from_rows(&self.window);
        self.diagnoser = Diagnoser::fit(&training, &self.rm, self.config)?;
        self.arrivals_since_fit = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn online_matches_batch_when_frozen() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let fresh = training(rm.num_links(), 100, 400);

        let batch = Diagnoser::fit(&train, rm, config()).unwrap();
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 400, None).unwrap();

        for t in 0..fresh.rows() {
            let b = batch.diagnose_vector(fresh.row(t)).unwrap();
            let o = online.process(fresh.row(t)).unwrap();
            assert_eq!(o.time, t);
            assert!((b.spe - o.spe).abs() < 1e-9 * b.spe.max(1.0));
            assert_eq!(b.detected, o.detected);
        }
    }

    #[test]
    fn detects_streamed_anomaly() {
        let net = builtin::ring(5);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 400, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 400, None).unwrap();

        let mut y = training(rm.num_links(), 1, 997).row(0).to_vec();
        vector::axpy(8e6, &rm.column(6), &mut y);
        let rep = online.process(&y).unwrap();
        assert!(rep.detected);
        assert_eq!(rep.identification.unwrap().flow, 6);
    }

    #[test]
    fn refit_happens_on_schedule() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();

        let fresh = training(rm.num_links(), 120, 300);
        for t in 0..fresh.rows() {
            online.process(fresh.row(t)).unwrap();
        }
        assert_eq!(online.arrivals(), 120);
        // After two refits the window has absorbed the fresh data; the
        // model must still behave (no alarm storm on clean traffic).
        let tail = training(rm.num_links(), 50, 777);
        let alarms = (0..tail.rows())
            .filter(|&t| online.process(tail.row(t)).unwrap().detected)
            .count();
        assert!(alarms <= 2, "{alarms} alarms after refit");
    }

    #[test]
    fn process_batch_equals_sequential_processing() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 300, 0);
        // Refit every 50 so the batch spans several refit boundaries.
        let mut seq = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();
        let mut batch = OnlineDiagnoser::new(&train, rm, config(), 300, Some(50)).unwrap();

        let fresh = training(rm.num_links(), 130, 300);
        let seq_reports: Vec<_> = (0..fresh.rows())
            .map(|t| seq.process(fresh.row(t)).unwrap())
            .collect();
        let batch_reports = batch.process_batch(&fresh).unwrap();

        assert_eq!(batch_reports.len(), seq_reports.len());
        for (b, s) in batch_reports.iter().zip(&seq_reports) {
            assert_eq!(b.time, s.time);
            assert_eq!(b.detected, s.detected, "divergence at arrival {}", s.time);
            assert!(
                (b.spe - s.spe).abs() <= 1e-12 * s.spe.max(1.0),
                "spe divergence at arrival {}",
                s.time
            );
        }
        assert_eq!(batch.arrivals(), seq.arrivals());
        assert_eq!(batch.arrivals_since_fit, seq.arrivals_since_fit);
        assert_eq!(batch.window.len(), seq.window.len());
        for (a, b) in batch.window.iter().zip(&seq.window) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn window_is_bounded() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 100, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 100, None).unwrap();
        let fresh = training(rm.num_links(), 250, 100);
        for t in 0..fresh.rows() {
            online.process(fresh.row(t)).unwrap();
        }
        assert_eq!(online.window.len(), 100);
    }

    #[test]
    fn manual_refit_resets_counter() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let mut online = OnlineDiagnoser::new(&train, rm, config(), 200, Some(1000)).unwrap();
        let y = train.row(10).to_vec();
        online.process(&y).unwrap();
        online.refit().unwrap();
        assert_eq!(online.arrivals_since_fit, 0);
        assert_eq!(online.arrivals(), 1);
    }
}
