//! Sharded network-wide diagnosis: mergeable sufficient statistics
//! across link partitions.
//!
//! The paper's central claim is that a *network-wide* view separates
//! anomalies per-link analysis misses — yet real measurement planes are
//! distributed: each PoP's collector reports its own links, not the
//! whole network. [`ShardedEngine`] reconciles the two. The link set is
//! split into `K` shards by a [`LinkPartition`] (per-PoP, round-robin,
//! or explicit), and each shard runs its own
//! [`StreamingEngine`](crate::StreamingEngine)-style ingestion over its
//! column slice:
//!
//! ```text
//!        arrivals (full m-vector per bin, O(m) bandwidth)
//!            │ scatter column slices
//!   ┌────────┼─────────┬──────────────┐
//!   ▼        ▼         ▼              ▼
//! shard 0  shard 1   shard 2  …    shard K−1     each: slice window +
//!   │        │         │              │          local statistics
//!   └────────┴────┬────┴───────────── ┘          (sum, outer-product
//!                 ▼                               rows, count)
//!          coordinator: merge (bitwise) ──► global covariance
//!                 │ Jacobi refit
//!                 ▼
//!          broadcast model slices back to shards
//!                 │
//!          shards: local SPE contributions ──► coordinator sums,
//!          detects, identifies, quantifies
//! ```
//!
//! Per arrival, each shard pays its share of the `O(m²)`
//! sufficient-statistic upkeep and the `O(m·r)` subspace projection; the
//! coordinator pays only `O(K·r)` to merge coefficient partials and a
//! sum of `K` partial SPEs. The periodic refit merges the shard
//! statistics into the global `m × m` covariance with
//! [`IncrementalCovariance::merge`] /
//! [`Matrix::assemble_blocks`](netanom_linalg::Matrix::assemble_blocks)
//! (pure placement, **bitwise** identical to a single-process
//! accumulator), solves the same Jacobi eigenproblem, and broadcasts the
//! refreshed model's per-shard row slices back. Sharding is therefore a
//! pure scale transform: refitted models are bitwise the single-process
//! [`StreamingEngine`](crate::StreamingEngine)'s, merged SPEs agree
//! within `1e-9` relative (partial sums reassociate), and detections
//! and identifications match exactly on every pinned stream
//! (`tests/shard_parity.rs`) — a decision could differ only for an SPE
//! inside that `1e-9` sliver of the threshold.
//!
//! On one box the shards execute on the rayon scope splitter (one worker
//! per shard when more than one hardware thread is available; the merge
//! order is fixed by shard index, so results are bitwise independent of
//! the thread count). The same shard/coordinator message pattern — slice
//! feeds in, statistics rows and SPE partials out, model slices back —
//! maps 1:1 onto a multi-process deployment where each PoP collector
//! hosts its shard.
//!
//! # Example
//!
//! ```
//! use netanom_core::shard::ShardedEngine;
//! use netanom_core::{DiagnoserConfig, SeparationPolicy, StreamConfig};
//! use netanom_linalg::Matrix;
//! use netanom_topology::{builtin, LinkPartition};
//!
//! let net = builtin::line(3);
//! let rm = &net.routing_matrix;
//! let m = rm.num_links();
//! let training = Matrix::from_fn(240, m, |t, l| {
//!     let phase = t as f64 * std::f64::consts::TAU / 144.0;
//!     2e6 + 2e5 * phase.sin() * ((l % 3) as f64 + 1.0)
//!         + ((t * m + l) % 97) as f64
//! });
//! let config = DiagnoserConfig {
//!     separation: SeparationPolicy::FixedCount(2),
//!     ..DiagnoserConfig::default()
//! };
//! let partition = LinkPartition::round_robin(m, 3).unwrap();
//! let mut engine =
//!     ShardedEngine::new(&training, rm, config, StreamConfig::new(240), &partition).unwrap();
//! assert_eq!(engine.num_shards(), 3);
//! let report = engine.process(training.row(10)).unwrap();
//! assert!(!report.detected); // training data is quiet
//! ```

use std::time::Instant;

use netanom_linalg::{BlockPlacement, Matrix};
use netanom_topology::{LinkPartition, RoutingMatrix};

use crate::diagnose::{quantify, Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::incremental::{CovarianceShard, IncrementalCovariance};
use crate::separation::SeparationPolicy;
use crate::stream::{RefitStrategy, RingWindow, StreamConfig};
use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// One shard: a column slice of the measurement stream, its retained
/// window, its rows of the global sufficient statistics, and its slice
/// of the broadcast model.
#[derive(Debug, Clone)]
struct ShardWorker {
    /// Owned global link indices, strictly ascending.
    links: Vec<usize>,
    /// Sliding window over the shard's column slice (`capacity × m_s`).
    window: RingWindow,
    /// Statistics rows; maintained only under
    /// [`RefitStrategy::Incremental`].
    stats: Option<CovarianceShard>,
    /// Broadcast slice of the model mean (`m_s` entries).
    mean: Vec<f64>,
    /// Broadcast rows of the normal basis (`m_s × r`).
    basis: Matrix,
}

/// Per-shard output of the first diagnosis phase over a block.
struct ShardBatch {
    /// Raw column slice of the block (`b × m_s`), reused for window
    /// pushes.
    raw: Matrix,
    /// Mean-centered slice (`b × m_s`).
    centered: Matrix,
    /// Partial projection coefficients `Z_s · P_s` (`b × r`).
    coeffs: Matrix,
}

/// Per-shard output of the second diagnosis phase.
struct ShardOut {
    /// Residual slice `Z_s − C·P_sᵀ` (`b × m_s`).
    residual: Matrix,
    /// Partial SPE `‖residual row‖²` per bin.
    norms: Vec<f64>,
}

impl ShardWorker {
    /// Phase one: slice the block's columns, center, and compute the
    /// shard's partial projection coefficients against the broadcast
    /// basis rows.
    fn phase_a(&self, block: &Matrix) -> ShardBatch {
        let m_s = self.links.len();
        let raw = block.select_columns(&self.links);
        let centered = Matrix::from_fn(raw.rows(), m_s, |t, k| raw[(t, k)] - self.mean[k]);
        let coeffs = centered
            .matmul(&self.basis)
            .expect("basis rows match the shard width");
        ShardBatch {
            raw,
            centered,
            coeffs,
        }
    }

    /// Phase two: residual slice and partial SPE against the merged
    /// coefficients, then ingest the block (statistics rows over the
    /// full arrival vectors, window over the column slice).
    fn phase_b(
        &mut self,
        batch: &ShardBatch,
        coeffs: &Matrix,
        block: &Matrix,
        evicted: &[Option<Vec<f64>>],
    ) -> Result<ShardOut> {
        let modeled = coeffs
            .matmul_nt(&self.basis)
            .expect("basis width matches the merged coefficients");
        let residual = batch
            .centered
            .sub(&modeled)
            .expect("shapes match by construction");
        let norms = residual.row_norms_sq();
        for t in 0..block.rows() {
            if let Some(stats) = &mut self.stats {
                match &evicted[t] {
                    Some(old) => stats.slide(old, block.row(t))?,
                    None => stats.add(block.row(t))?,
                }
            }
            self.window.push(batch.raw.row(t));
        }
        Ok(ShardOut { residual, norms })
    }
}

/// The sharded diagnosis engine: `K` shard workers over a link
/// partition, coordinated into exactly the single-process semantics of
/// [`StreamingEngine`](crate::StreamingEngine).
///
/// See the [module docs](self) for the architecture; the parity and
/// scale contracts are:
///
/// * **Detections and identifications** equal the single-process
///   engine's (pinned by `tests/shard_parity.rs` for every partition
///   shape and `K ∈ {1, 2, 4, 8}`). Merged SPEs agree within `1e-9`
///   relative — shard partial sums reassociate floating-point
///   addition — so a decision could differ only for a bin whose
///   single-process SPE sits inside that sliver of the threshold,
///   which the parity suite shows does not happen on any pinned
///   stream (the same caveat the batch API documents for
///   [`Detector::detect_matrix`](crate::Detector::detect_matrix)).
/// * Under [`RefitStrategy::Incremental`] the merged covariance is
///   **bitwise identical** to the single-process
///   [`IncrementalCovariance`], so refitted models match exactly; under
///   [`RefitStrategy::FullSvd`] the reassembled window is bitwise the
///   single-process window, so full refits match exactly too.
/// * Results are bitwise independent of the worker thread count: shard
///   partials are always merged in shard order.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    diagnoser: Diagnoser,
    rm: RoutingMatrix,
    config: DiagnoserConfig,
    shards: Vec<ShardWorker>,
    strategy: RefitStrategy,
    refit_every: Option<usize>,
    arrivals_since_fit: usize,
    arrivals_total: usize,
    refits: usize,
    refit_seconds: f64,
}

impl ShardedEngine {
    /// Bootstrap from historical training data, exactly like
    /// [`StreamingEngine::new`](crate::StreamingEngine::new), with the
    /// link set split across `partition`'s shards.
    ///
    /// The global fit happens once at the coordinator; every shard is
    /// seeded with its column slice of the trailing window and (under
    /// [`RefitStrategy::Incremental`]) its rows of the sufficient
    /// statistics over the same rows.
    pub fn new(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        stream: StreamConfig,
        partition: &LinkPartition,
    ) -> Result<Self> {
        let m = rm.num_links();
        if training.cols() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: training.cols(),
            });
        }
        if partition.num_links() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: partition.num_links(),
            });
        }
        let diagnoser = Diagnoser::fit(training, rm, config)?;
        let capacity = stream.window_capacity.max(training.rows());
        let start = training.rows().saturating_sub(capacity);
        let mut shards = Vec::with_capacity(partition.num_shards());
        for links in partition.groups() {
            let mut window = RingWindow::new(capacity, links.len());
            let mut slice = vec![0.0; links.len()];
            for t in start..training.rows() {
                let row = training.row(t);
                for (k, &l) in links.iter().enumerate() {
                    slice[k] = row[l];
                }
                window.push(&slice);
            }
            let stats = match stream.strategy {
                RefitStrategy::Incremental => {
                    let mut acc = CovarianceShard::new(m, links)?;
                    for t in start..training.rows() {
                        acc.add(training.row(t))?;
                    }
                    Some(acc)
                }
                RefitStrategy::FullSvd => None,
            };
            shards.push(ShardWorker {
                links: links.clone(),
                window,
                stats,
                mean: Vec::new(),
                basis: Matrix::zeros(0, 0),
            });
        }
        let mut engine = ShardedEngine {
            diagnoser,
            rm: rm.clone(),
            config,
            shards,
            strategy: stream.strategy,
            refit_every: stream.refit_every,
            arrivals_since_fit: 0,
            arrivals_total: 0,
            refits: 0,
            refit_seconds: 0.0,
        };
        engine.broadcast_model();
        Ok(engine)
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The ascending global link indices owned by shard `s`.
    ///
    /// # Panics
    /// Panics if `s >= num_shards()`.
    pub fn shard_links(&self, s: usize) -> &[usize] {
        &self.shards[s].links
    }

    /// Total measurements processed so far.
    pub fn arrivals(&self) -> usize {
        self.arrivals_total
    }

    /// Arrivals since the most recent (re)fit.
    pub fn arrivals_since_refit(&self) -> usize {
        self.arrivals_since_fit
    }

    /// Number of refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// Wall-clock seconds spent in merge + refit + broadcast so far —
    /// the coordination overhead a deployment pays for the global view.
    pub fn refit_seconds(&self) -> f64 {
        self.refit_seconds
    }

    /// The active refit strategy.
    pub fn strategy(&self) -> RefitStrategy {
        self.strategy
    }

    /// The coordinator's current (frozen) diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        &self.diagnoser
    }

    /// Process one arriving full measurement vector.
    ///
    /// Semantically identical to
    /// [`StreamingEngine::process`](crate::StreamingEngine::process):
    /// diagnose against the frozen model, slide every shard's window and
    /// statistics, refit when due. Implemented as a one-row
    /// [`ShardedEngine::process_batch`], so the per-arrival and batched
    /// paths cannot drift apart.
    pub fn process(&mut self, y: &[f64]) -> Result<DiagnosisReport> {
        let m = self.rm.num_links();
        if y.len() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: y.len(),
            });
        }
        let block = Matrix::from_vec(1, m, y.to_vec()).expect("sized to shape");
        let mut reports = self.process_batch(&block)?;
        Ok(reports.pop().expect("one report per row"))
    }

    /// Process a whole block of arrivals (rows of a `b × m` matrix),
    /// honoring mid-block refit boundaries exactly like
    /// [`StreamingEngine::process_batch`](crate::StreamingEngine::process_batch).
    ///
    /// Inputs are validated up front (width, finiteness) so no shard
    /// ingests a row unless all will; an internal error mid-block (which
    /// validated input cannot trigger) leaves the engine inconsistent
    /// and should be treated as fatal.
    pub fn process_batch(&mut self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let m = self.rm.num_links();
        if links.cols() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: links.cols(),
            });
        }
        for t in 0..links.rows() {
            if let Some(link) = links.row(t).iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteMeasurement { link });
            }
        }
        let mut out = Vec::with_capacity(links.rows());
        let mut next = 0;
        while next < links.rows() {
            let until_refit = match self.refit_every {
                Some(k) => k.saturating_sub(self.arrivals_since_fit).max(1),
                None => links.rows() - next,
            };
            let take = until_refit.min(links.rows() - next);
            let block = links.row_block(next, take).expect("range checked");
            let mut reports = self.run_block(&block)?;
            for rep in &mut reports {
                rep.time = self.arrivals_total;
                self.arrivals_total += 1;
                self.arrivals_since_fit += 1;
            }
            out.append(&mut reports);
            next += take;
            if let Some(k) = self.refit_every {
                if self.arrivals_since_fit >= k {
                    self.refit()?;
                }
            }
        }
        Ok(out)
    }

    /// Process a block delivered as per-shard column slices —
    /// `slices[s]` is the `b × m_s` feed of shard `s`'s links, as a
    /// per-PoP collector would ship it
    /// (see `netanom_traffic::io::ShardedChunks`).
    ///
    /// The coordinator reassembles the full block (pure placement) and
    /// runs [`ShardedEngine::process_batch`]; statistics rows need the
    /// full arrival vectors, so the slices must cover every link.
    pub fn process_batch_slices(&mut self, slices: &[Matrix]) -> Result<Vec<DiagnosisReport>> {
        if slices.len() != self.shards.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.shards.len(),
                got: slices.len(),
            });
        }
        let bins = slices.first().map_or(0, Matrix::rows);
        for (shard, slice) in self.shards.iter().zip(slices) {
            if slice.rows() != bins {
                return Err(CoreError::DimensionMismatch {
                    expected: bins,
                    got: slice.rows(),
                });
            }
            if slice.cols() != shard.links.len() {
                return Err(CoreError::DimensionMismatch {
                    expected: shard.links.len(),
                    got: slice.cols(),
                });
            }
        }
        let row_ids: Vec<usize> = (0..bins).collect();
        let placements: Vec<BlockPlacement> = self
            .shards
            .iter()
            .zip(slices)
            .map(|(shard, slice)| BlockPlacement {
                rows: &row_ids,
                cols: &shard.links,
                block: slice,
            })
            .collect();
        let full = Matrix::assemble_blocks(bins, self.rm.num_links(), &placements)?;
        self.process_batch(&full)
    }

    /// Whether to fan the shard phases out over scoped worker threads.
    ///
    /// Serial execution computes exactly the same values (partials are
    /// always merged in shard order), so this is purely a wall-clock
    /// decision: more than one shard, more than one hardware thread, and
    /// enough rows to amortize the spawns.
    fn parallel(&self, rows: usize) -> bool {
        self.shards.len() > 1 && rows >= 4 && rayon::current_num_threads() > 1
    }

    /// Diagnose a refit-free block against the frozen model and ingest
    /// it. Reports come back with `time == 0`; the caller stamps them.
    fn run_block(&mut self, block: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let bins = block.rows();
        let parallel = self.parallel(bins);

        // Phase A: per-shard column slices, centering, and partial
        // projection coefficients.
        let mut batches: Vec<Option<ShardBatch>> = (0..self.shards.len()).map(|_| None).collect();
        if parallel {
            rayon::scope(|s| {
                let mut pairs = self.shards.iter().zip(batches.iter_mut());
                let first = pairs.next();
                for (shard, slot) in pairs {
                    s.spawn(move |_| *slot = Some(shard.phase_a(block)));
                }
                if let Some((shard, slot)) = first {
                    *slot = Some(shard.phase_a(block));
                }
            });
        } else {
            for (shard, slot) in self.shards.iter().zip(batches.iter_mut()) {
                *slot = Some(shard.phase_a(block));
            }
        }
        let batches: Vec<ShardBatch> = batches
            .into_iter()
            .map(|b| b.expect("every shard ran phase A"))
            .collect();

        // Merge the coefficient partials in shard order (fixed order =
        // thread-count-independent results).
        let r = self.diagnoser.model().normal_dim();
        let mut coeffs = Matrix::zeros(bins, r);
        for batch in &batches {
            coeffs = coeffs.add(&batch.coeffs).expect("all partials are b × r");
        }

        // Evicted full rows, assembled *before* any shard mutates its
        // window. Only the incremental statistics consume them.
        let evicted: Vec<Option<Vec<f64>>> = match self.strategy {
            RefitStrategy::Incremental => self.collect_evicted(block),
            RefitStrategy::FullSvd => vec![None; bins],
        };

        // Phase B: residual slices + SPE partials, then ingestion.
        let mut outs: Vec<Option<Result<ShardOut>>> =
            (0..self.shards.len()).map(|_| None).collect();
        let coeffs_ref = &coeffs;
        let evicted_ref = &evicted;
        if parallel {
            rayon::scope(|s| {
                let mut triples = self
                    .shards
                    .iter_mut()
                    .zip(batches.iter())
                    .zip(outs.iter_mut());
                let first = triples.next();
                for ((shard, batch), slot) in triples {
                    s.spawn(move |_| {
                        *slot = Some(shard.phase_b(batch, coeffs_ref, block, evicted_ref));
                    });
                }
                if let Some(((shard, batch), slot)) = first {
                    *slot = Some(shard.phase_b(batch, coeffs_ref, block, evicted_ref));
                }
            });
        } else {
            for ((shard, batch), slot) in self
                .shards
                .iter_mut()
                .zip(batches.iter())
                .zip(outs.iter_mut())
            {
                *slot = Some(shard.phase_b(batch, coeffs_ref, block, evicted_ref));
            }
        }
        let mut shard_outs = Vec::with_capacity(self.shards.len());
        for out in outs {
            shard_outs.push(out.expect("every shard ran phase B")?);
        }

        // Coordinator: sum SPE partials in shard order, detect, and
        // identify/quantify the fired bins on the assembled residual.
        let threshold = self.diagnoser.detector().threshold().delta_sq;
        let m = self.rm.num_links();
        let mut reports = Vec::with_capacity(bins);
        for t in 0..bins {
            let spe: f64 = shard_outs.iter().map(|o| o.norms[t]).sum();
            if spe <= threshold {
                reports.push(DiagnosisReport {
                    time: 0,
                    spe,
                    threshold,
                    detected: false,
                    identification: None,
                    estimated_bytes: None,
                });
                continue;
            }
            let mut residual = vec![0.0; m];
            for (shard, out) in self.shards.iter().zip(&shard_outs) {
                let row = out.residual.row(t);
                for (k, &l) in shard.links.iter().enumerate() {
                    residual[l] = row[k];
                }
            }
            let id = self.diagnoser.identifier().identify(&residual)?;
            let bytes = quantify(&id, &self.rm);
            reports.push(DiagnosisReport {
                time: 0,
                spe,
                threshold,
                detected: true,
                identification: Some(id),
                estimated_bytes: Some(bytes),
            });
        }
        Ok(reports)
    }

    /// The full rows evicted by each push of the block, in push order:
    /// `None` while the window is still filling, else the oldest row of
    /// the combined `[window, block]` sequence — assembled from the
    /// shard windows for pre-block rows, borrowed from the block beyond.
    fn collect_evicted(&self, block: &Matrix) -> Vec<Option<Vec<f64>>> {
        let cap = self.shards[0].window.capacity();
        let len = self.shards[0].window.len();
        (0..block.rows())
            .map(|t| {
                if len + t < cap {
                    None
                } else {
                    let idx = len + t - cap;
                    Some(if idx < len {
                        self.assemble_window_row(idx)
                    } else {
                        block.row(idx - len).to_vec()
                    })
                }
            })
            .collect()
    }

    /// Assemble the `i`-th retained row (arrival order) of the logical
    /// global window from the shard windows' slices.
    fn assemble_window_row(&self, i: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rm.num_links()];
        for shard in &self.shards {
            let row = shard.window.row(i);
            for (k, &l) in shard.links.iter().enumerate() {
                out[l] = row[k];
            }
        }
        out
    }

    /// Reassemble the logical global window (`len × m`, arrival order)
    /// from the shard windows — pure placement, bitwise equal to the
    /// single-process window.
    fn assemble_window(&self) -> Result<Matrix> {
        let len = self.shards[0].window.len();
        let row_ids: Vec<usize> = (0..len).collect();
        let slices: Vec<Matrix> = self.shards.iter().map(|s| s.window.to_matrix()).collect();
        let placements: Vec<BlockPlacement> = self
            .shards
            .iter()
            .zip(&slices)
            .map(|(shard, slice)| BlockPlacement {
                rows: &row_ids,
                cols: &shard.links,
                block: slice,
            })
            .collect();
        Ok(Matrix::assemble_blocks(
            len,
            self.rm.num_links(),
            &placements,
        )?)
    }

    /// Merge the shard statistics into the global accumulator — bitwise
    /// identical to the one a single-process
    /// [`StreamingEngine`](crate::StreamingEngine) maintains over the
    /// same stream.
    ///
    /// Errors with [`CoreError::ShardMismatch`] under
    /// [`RefitStrategy::FullSvd`], which maintains no statistics.
    pub fn merged_statistics(&self) -> Result<IncrementalCovariance> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            parts.push(shard.stats.as_ref().ok_or(CoreError::ShardMismatch {
                reason: "statistics are only maintained under RefitStrategy::Incremental",
            })?);
        }
        IncrementalCovariance::merge(parts)
    }

    /// Merge, refit, and broadcast: collect the shard state into a fresh
    /// global model through the configured [`RefitStrategy`], rebuild
    /// the coordinator's diagnoser, and hand every shard its new mean
    /// and basis slices.
    ///
    /// Exactly mirrors [`StreamingEngine::refit`](crate::StreamingEngine::refit),
    /// including the 3σ freeze of the normal dimension under incremental
    /// refits. Wall-clock spent here accumulates into
    /// [`ShardedEngine::refit_seconds`].
    pub fn refit(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let model = match self.strategy {
            RefitStrategy::FullSvd => {
                let window = self.assemble_window()?;
                SubspaceModel::fit(&window, self.config.separation, self.config.pca_method)?
            }
            RefitStrategy::Incremental => {
                let stats = self.merged_statistics()?;
                let policy = match self.config.separation {
                    SeparationPolicy::ThreeSigma { .. } => {
                        SeparationPolicy::FixedCount(self.diagnoser.model().normal_dim())
                    }
                    other => other,
                };
                stats.to_model(policy)?
            }
        };
        self.diagnoser
            .refit_model(model, &self.rm, self.config.confidence)?;
        self.broadcast_model();
        self.arrivals_since_fit = 0;
        self.refits += 1;
        self.refit_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Hand every shard its slice of the coordinator's current model:
    /// the mean entries and normal-basis rows of its links.
    fn broadcast_model(&mut self) {
        let model = self.diagnoser.model();
        let mean = model.mean();
        let basis = model.normal_basis();
        for shard in &mut self.shards {
            shard.mean = shard.links.iter().map(|&l| mean[l]).collect();
            shard.basis = Matrix::from_fn(shard.links.len(), basis.cols(), |k, j| {
                basis[(shard.links[k], j)]
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn construction_validates_dimensions() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 200, 0);
        let bad = LinkPartition::round_robin(m + 1, 2).unwrap();
        assert!(ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &bad).is_err());
        let narrow = training(m - 1, 200, 0);
        let good = LinkPartition::round_robin(m, 2).unwrap();
        assert!(ShardedEngine::new(&narrow, rm, config(), StreamConfig::new(200), &good).is_err());
    }

    #[test]
    fn detects_injected_anomaly_and_identifies_flow() {
        let net = builtin::sprint_europe();
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 400, 0);
        let partition = LinkPartition::per_pop(&net.topology);
        let mut engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(400), &partition).unwrap();
        assert_eq!(engine.num_shards(), net.topology.num_pops());

        let quiet = training(m, 1, 900).row(0).to_vec();
        let rep = engine.process(&quiet).unwrap();
        assert!(!rep.detected);

        let flow = 20;
        let mut y = quiet.clone();
        vector::axpy(2e7, &rm.column(flow), &mut y);
        let rep = engine.process(&y).unwrap();
        assert!(rep.detected, "spe {} vs {}", rep.spe, rep.threshold);
        assert_eq!(rep.identification.unwrap().flow, flow);
        assert_eq!(engine.arrivals(), 2);
    }

    #[test]
    fn batch_and_slices_paths_agree() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 300, 0);
        let partition = LinkPartition::round_robin(m, 3).unwrap();
        let mk = || {
            ShardedEngine::new(
                &train,
                rm,
                config(),
                StreamConfig::new(300).refit_every(40),
                &partition,
            )
            .unwrap()
        };
        let mut whole = mk();
        let mut sliced = mk();
        let fresh = training(m, 90, 300);
        let a = whole.process_batch(&fresh).unwrap();
        let slices: Vec<Matrix> = partition
            .groups()
            .iter()
            .map(|g| fresh.select_columns(g))
            .collect();
        let b = sliced.process_batch_slices(&slices).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.spe, y.spe);
            assert_eq!(x.detected, y.detected);
        }
        assert_eq!(whole.refits(), 2);
        assert_eq!(sliced.refits(), 2);
        assert!(whole.refit_seconds() > 0.0);
    }

    #[test]
    fn slices_path_validates_shapes() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 200, 0);
        let partition = LinkPartition::round_robin(m, 2).unwrap();
        let mut engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &partition).unwrap();
        assert!(engine.process_batch_slices(&[]).is_err());
        let wrong_rows = vec![
            Matrix::zeros(2, partition.group(0).len()),
            Matrix::zeros(3, partition.group(1).len()),
        ];
        assert!(engine.process_batch_slices(&wrong_rows).is_err());
        let wrong_cols = vec![
            Matrix::zeros(2, partition.group(0).len() + 1),
            Matrix::zeros(2, partition.group(1).len()),
        ];
        assert!(engine.process_batch_slices(&wrong_cols).is_err());
        // Non-finite values are rejected before any ingestion.
        let mut bad = Matrix::zeros(1, m);
        bad[(0, 1)] = f64::NAN;
        assert!(matches!(
            engine.process_batch(&bad),
            Err(CoreError::NonFiniteMeasurement { link: 1 })
        ));
        assert_eq!(engine.arrivals(), 0);
    }

    #[test]
    fn merged_statistics_requires_incremental_strategy() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let partition = LinkPartition::round_robin(rm.num_links(), 2).unwrap();
        let engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &partition).unwrap();
        assert!(matches!(
            engine.merged_statistics(),
            Err(CoreError::ShardMismatch { .. })
        ));
    }
}
