//! Sharded network-wide diagnosis: mergeable state across link
//! partitions, generic over the detection method.
//!
//! The paper's central claim is that a *network-wide* view separates
//! anomalies per-link analysis misses — yet real measurement planes are
//! distributed: each PoP's collector reports its own links, not the
//! whole network. [`ShardedEngine`] reconciles the two. The link set is
//! split into `K` shards by a [`LinkPartition`] (per-PoP, round-robin,
//! or explicit), and each shard runs its own
//! [`StreamingEngine`](crate::StreamingEngine)-style ingestion over its
//! column slice:
//!
//! ```text
//!        arrivals (full m-vector per bin, O(m) bandwidth)
//!            │ scatter column slices
//!   ┌────────┼─────────┬──────────────┐
//!   ▼        ▼         ▼              ▼
//! shard 0  shard 1   shard 2  …    shard K−1     each: slice window +
//!   │        │         │              │          backend shard state
//!   └────────┴────┬────┴───────────── ┘          (statistics rows,
//!                 ▼                               model slices, …)
//!          coordinator: merge partials in shard order
//!                 │ refit on cadence ([`ShardableBackend::refit_shards`])
//!                 ▼
//!          broadcast model slices back to shards
//!                 │
//!          shards: partial scores ──► coordinator sums,
//!          detects, finalizes ([`ShardableBackend::finalize`])
//! ```
//!
//! The engine is generic over a [`ShardableBackend`] (default: the
//! paper's [`SubspaceBackend`]). The backend defines what a shard
//! computes (phase A), what the coordinator merges (in shard order —
//! results are bitwise independent of the worker thread count), what a
//! shard finalizes after the merge (phase B), and how the periodic
//! refit collects shard state into a fresh global model. For the
//! subspace backend this reproduces the pre-refactor engine exactly:
//! per arrival each shard pays its share of the `O(m²)`
//! sufficient-statistic upkeep and the `O(m·r)` projection, the merge
//! is `O(K·r)` per bin, and the refit merges
//! [`CovarianceShard`](crate::incremental::CovarianceShard) rows into
//! the global covariance **bitwise** — refitted models match the
//! single-process engine exactly, merged SPEs agree within `1e-9`
//! relative, and detections and identifications match exactly on every
//! pinned stream (`tests/shard_parity.rs`). The temporal comparators in
//! `netanom-baselines::methods` shard trivially (per-link state), so
//! the same engine runs every method.
//!
//! On one box the shards execute on the rayon scope splitter (one worker
//! per shard when more than one hardware thread is available; the merge
//! order is fixed by shard index, so results are bitwise independent of
//! the thread count). The same shard/coordinator message pattern — slice
//! feeds in, partials out, model slices back — maps 1:1 onto a
//! multi-process deployment where each PoP collector hosts its shard,
//! with [`MethodState`](crate::method::MethodState) as the broadcast
//! wire format.
//!
//! # Example
//!
//! ```
//! use netanom_core::shard::ShardedEngine;
//! use netanom_core::{DiagnoserConfig, SeparationPolicy, StreamConfig};
//! use netanom_linalg::Matrix;
//! use netanom_topology::{builtin, LinkPartition};
//!
//! let net = builtin::line(3);
//! let rm = &net.routing_matrix;
//! let m = rm.num_links();
//! let training = Matrix::from_fn(240, m, |t, l| {
//!     let phase = t as f64 * std::f64::consts::TAU / 144.0;
//!     2e6 + 2e5 * phase.sin() * ((l % 3) as f64 + 1.0)
//!         + ((t * m + l) % 97) as f64
//! });
//! let config = DiagnoserConfig {
//!     separation: SeparationPolicy::FixedCount(2),
//!     ..DiagnoserConfig::default()
//! };
//! let partition = LinkPartition::round_robin(m, 3).unwrap();
//! let mut engine =
//!     ShardedEngine::new(&training, rm, config, StreamConfig::new(240), &partition).unwrap();
//! assert_eq!(engine.num_shards(), 3);
//! let report = engine.process(training.row(10)).unwrap();
//! assert!(!report.detected); // training data is quiet
//! ```

use std::time::Instant;

use netanom_linalg::{BlockPlacement, Matrix};
use netanom_topology::{LinkPartition, RoutingMatrix};

use crate::coordinate::Coordinator;
use crate::diagnose::{Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::incremental::IncrementalCovariance;
use crate::method::{ShardCtx, ShardScores, ShardableBackend, SubspaceBackend};
use crate::stream::{RefitStrategy, RingWindow, StreamConfig};
use crate::{CoreError, Result};

/// The sharded diagnosis engine: `K` shard workers over a link
/// partition, coordinated into exactly the single-process semantics of
/// [`StreamingEngine`](crate::StreamingEngine) — generic over the
/// [`ShardableBackend`] doing the scoring (default:
/// [`SubspaceBackend`]).
///
/// See the [module docs](self) for the architecture; the parity and
/// scale contracts for the subspace backend are:
///
/// * **Detections and identifications** equal the single-process
///   engine's (pinned by `tests/shard_parity.rs` for every partition
///   shape and `K ∈ {1, 2, 4, 8}`). Merged SPEs agree within `1e-9`
///   relative — shard partial sums reassociate floating-point
///   addition — so a decision could differ only for a bin whose
///   single-process SPE sits inside that sliver of the threshold,
///   which the parity suite shows does not happen on any pinned
///   stream (the same caveat the batch API documents for
///   [`Detector::detect_matrix`](crate::Detector::detect_matrix)).
/// * Under [`RefitStrategy::Incremental`] the merged covariance is
///   **bitwise identical** to the single-process
///   [`StreamingEngine`](crate::StreamingEngine)'s, so refitted models
///   match exactly; under [`RefitStrategy::FullSvd`] the reassembled
///   window is bitwise the single-process window, so full refits match
///   exactly too.
/// * Results are bitwise independent of the worker thread count: shard
///   partials are always merged in shard order.
#[derive(Debug, Clone)]
pub struct ShardedEngine<B: ShardableBackend = SubspaceBackend> {
    backend: B,
    /// Ascending global link indices per shard.
    links: Vec<Vec<usize>>,
    /// Sliding window over each shard's column slice (`capacity × m_s`).
    windows: Vec<RingWindow>,
    /// Backend-specific per-shard state.
    states: Vec<B::Shard>,
    refit_every: Option<usize>,
    arrivals_since_fit: usize,
    arrivals_total: usize,
    refits: usize,
    refit_seconds: f64,
}

impl ShardedEngine<SubspaceBackend> {
    /// Bootstrap the subspace engine from historical training data,
    /// exactly like [`StreamingEngine::new`](crate::StreamingEngine::new),
    /// with the link set split across `partition`'s shards.
    ///
    /// The global fit happens once at the coordinator; every shard is
    /// seeded with its column slice of the trailing window and (under
    /// [`RefitStrategy::Incremental`]) its rows of the sufficient
    /// statistics over the same rows.
    pub fn new(
        training: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        stream: StreamConfig,
        partition: &LinkPartition,
    ) -> Result<Self> {
        if training.cols() != rm.num_links() {
            return Err(CoreError::DimensionMismatch {
                expected: rm.num_links(),
                got: training.cols(),
            });
        }
        // fit_sharded: shard statistics live in the per-shard states,
        // so the backend's global streaming accumulator is skipped.
        let backend = SubspaceBackend::fit_sharded(training, rm, config, stream.strategy)?;
        Self::with_backend(backend, training, stream, partition)
    }

    /// The coordinator's current (frozen) diagnoser.
    pub fn diagnoser(&self) -> &Diagnoser {
        self.backend.diagnoser()
    }

    /// The active refit strategy.
    pub fn strategy(&self) -> RefitStrategy {
        self.backend.strategy()
    }

    /// Merge the shard statistics into the global accumulator — bitwise
    /// identical to the one a single-process
    /// [`StreamingEngine`](crate::StreamingEngine) maintains over the
    /// same stream.
    ///
    /// Errors with [`CoreError::ShardMismatch`] under
    /// [`RefitStrategy::FullSvd`], which maintains no statistics.
    pub fn merged_statistics(&self) -> Result<IncrementalCovariance> {
        let mut parts = Vec::with_capacity(self.states.len());
        for state in &self.states {
            parts.push(state.stats.as_ref().ok_or(CoreError::ShardMismatch {
                reason: "statistics are only maintained under the incremental \
                         and truncated refit strategies",
            })?);
        }
        IncrementalCovariance::merge(parts)
    }
}

impl<B: ShardableBackend> ShardedEngine<B> {
    /// Assemble a sharded engine around an already-fitted backend;
    /// `training` must be the matrix the backend was fitted on. Every
    /// shard is seeded with its column slice of the trailing window and
    /// whatever per-shard state the backend's
    /// [`ShardableBackend::make_shards`] builds.
    pub fn with_backend(
        backend: B,
        training: &Matrix,
        stream: StreamConfig,
        partition: &LinkPartition,
    ) -> Result<Self> {
        let m = backend.dim();
        if training.cols() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: training.cols(),
            });
        }
        if partition.num_links() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: partition.num_links(),
            });
        }
        let states = backend.make_shards(partition, training)?;
        let capacity = stream.window_capacity.max(training.rows());
        let start = training.rows().saturating_sub(capacity);
        let mut links = Vec::with_capacity(partition.num_shards());
        let mut windows = Vec::with_capacity(partition.num_shards());
        for group in partition.groups() {
            let mut window = RingWindow::new(capacity, group.len());
            let mut slice = vec![0.0; group.len()];
            for t in start..training.rows() {
                let row = training.row(t);
                for (k, &l) in group.iter().enumerate() {
                    slice[k] = row[l];
                }
                window.push(&slice);
            }
            links.push(group.clone());
            windows.push(window);
        }
        Ok(ShardedEngine {
            backend,
            links,
            windows,
            states,
            refit_every: stream.refit_every,
            arrivals_since_fit: 0,
            arrivals_total: 0,
            refits: 0,
            refit_seconds: 0.0,
        })
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.states.len()
    }

    /// The ascending global link indices owned by shard `s`.
    ///
    /// # Panics
    /// Panics if `s >= num_shards()`.
    pub fn shard_links(&self, s: usize) -> &[usize] {
        &self.links[s]
    }

    /// Total measurements processed so far.
    pub fn arrivals(&self) -> usize {
        self.arrivals_total
    }

    /// Arrivals since the most recent (re)fit.
    pub fn arrivals_since_refit(&self) -> usize {
        self.arrivals_since_fit
    }

    /// Number of refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// Wall-clock seconds spent in merge + refit + broadcast so far —
    /// the coordination overhead a deployment pays for the global view.
    pub fn refit_seconds(&self) -> f64 {
        self.refit_seconds
    }

    /// The coordinator's detection backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Process one arriving full measurement vector.
    ///
    /// Semantically identical to
    /// [`StreamingEngine::process`](crate::StreamingEngine::process):
    /// score against the frozen model, slide every shard's window and
    /// state, refit when due. Implemented as a one-row
    /// [`ShardedEngine::process_batch`], so the per-arrival and batched
    /// paths cannot drift apart.
    pub fn process(&mut self, y: &[f64]) -> Result<DiagnosisReport> {
        let m = self.backend.dim();
        if y.len() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: y.len(),
            });
        }
        let block = Matrix::from_vec(1, m, y.to_vec()).expect("sized to shape");
        let mut reports = self.process_batch(&block)?;
        Ok(reports.pop().expect("one report per row"))
    }

    /// Process a whole block of arrivals (rows of a `b × m` matrix),
    /// honoring mid-block refit boundaries exactly like
    /// [`StreamingEngine::process_batch`](crate::StreamingEngine::process_batch).
    ///
    /// Inputs are validated up front (width, finiteness) so no shard
    /// ingests a row unless all will; an internal error mid-block (which
    /// validated input cannot trigger) leaves the engine inconsistent
    /// and should be treated as fatal.
    pub fn process_batch(&mut self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let m = self.backend.dim();
        if links.cols() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: links.cols(),
            });
        }
        for t in 0..links.rows() {
            if let Some(link) = links.row(t).iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteMeasurement { link });
            }
        }
        let mut out = Vec::with_capacity(links.rows());
        let mut next = 0;
        while next < links.rows() {
            let until_refit = match self.refit_every {
                Some(k) => k.saturating_sub(self.arrivals_since_fit).max(1),
                None => links.rows() - next,
            };
            let take = until_refit.min(links.rows() - next);
            let block = links.row_block(next, take).expect("range checked");
            let mut reports = self.run_block(&block)?;
            for rep in &mut reports {
                rep.time = self.arrivals_total;
                self.arrivals_total += 1;
                self.arrivals_since_fit += 1;
            }
            out.append(&mut reports);
            next += take;
            if let Some(k) = self.refit_every {
                if self.arrivals_since_fit >= k {
                    self.refit()?;
                }
            }
        }
        Ok(out)
    }

    /// Process a block delivered as per-shard column slices —
    /// `slices[s]` is the `b × m_s` feed of shard `s`'s links, as a
    /// per-PoP collector would ship it
    /// (see `netanom_traffic::io::ShardedChunks`).
    ///
    /// The coordinator reassembles the full block (pure placement) and
    /// runs [`ShardedEngine::process_batch`]; backends that maintain
    /// statistics over full arrival vectors need the slices to cover
    /// every link.
    pub fn process_batch_slices(&mut self, slices: &[Matrix]) -> Result<Vec<DiagnosisReport>> {
        if slices.len() != self.states.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.states.len(),
                got: slices.len(),
            });
        }
        let bins = slices.first().map_or(0, Matrix::rows);
        for (links, slice) in self.links.iter().zip(slices) {
            if slice.rows() != bins {
                return Err(CoreError::DimensionMismatch {
                    expected: bins,
                    got: slice.rows(),
                });
            }
            if slice.cols() != links.len() {
                return Err(CoreError::DimensionMismatch {
                    expected: links.len(),
                    got: slice.cols(),
                });
            }
        }
        let row_ids: Vec<usize> = (0..bins).collect();
        let placements: Vec<BlockPlacement> = self
            .links
            .iter()
            .zip(slices)
            .map(|(links, slice)| BlockPlacement {
                rows: &row_ids,
                cols: links,
                block: slice,
            })
            .collect();
        let full = Matrix::assemble_blocks(bins, self.backend.dim(), &placements)?;
        self.process_batch(&full)
    }

    /// Whether to fan the shard phases out over scoped worker threads.
    ///
    /// Serial execution computes exactly the same values (partials are
    /// always merged in shard order), so this is purely a wall-clock
    /// decision: more than one shard, more than one hardware thread, and
    /// enough rows to amortize the spawns.
    fn parallel(&self, rows: usize) -> bool {
        self.states.len() > 1 && rows >= 4 && rayon::current_num_threads() > 1
    }

    /// Score a refit-free block against the frozen model and ingest it.
    /// Reports come back with `time == 0`; the caller stamps them.
    fn run_block(&mut self, block: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let bins = block.rows();
        let parallel = self.parallel(bins);
        let backend = &self.backend;

        // Phase A: per-shard computation over the raw column slices.
        let mut partials: Vec<Option<B::Partial>> = (0..self.states.len()).map(|_| None).collect();
        if parallel {
            rayon::scope(|s| {
                let mut triples = self
                    .states
                    .iter()
                    .zip(self.links.iter())
                    .zip(partials.iter_mut());
                let first = triples.next();
                for ((state, links), slot) in triples {
                    s.spawn(move |_| *slot = Some(backend.shard_phase_a(state, links, block)));
                }
                if let Some(((state, links), slot)) = first {
                    *slot = Some(backend.shard_phase_a(state, links, block));
                }
            });
        } else {
            for ((state, links), slot) in self
                .states
                .iter()
                .zip(self.links.iter())
                .zip(partials.iter_mut())
            {
                *slot = Some(backend.shard_phase_a(state, links, block));
            }
        }
        let partials: Vec<B::Partial> = partials
            .into_iter()
            .map(|p| p.expect("every shard ran phase A"))
            .collect();

        // Merge the phase-A partials in shard order (fixed order =
        // thread-count-independent results).
        let partial_refs: Vec<&B::Partial> = partials.iter().collect();
        let merged = backend.merge_partials(bins, &partial_refs);

        // Evicted full rows, assembled *before* any shard mutates its
        // window. Only backends with sliding statistics consume them.
        let evicted: Vec<Option<Vec<f64>>> = if backend.needs_evicted() {
            self.collect_evicted(block)
        } else {
            vec![None; bins]
        };

        // Phase B: partial scores (+ residual slices), advancing
        // shard-local state.
        let mut outs: Vec<Option<Result<ShardScores>>> =
            (0..self.states.len()).map(|_| None).collect();
        let merged_ref = &merged;
        let evicted_ref = &evicted;
        if parallel {
            rayon::scope(|s| {
                let mut quads = self
                    .states
                    .iter_mut()
                    .zip(self.links.iter())
                    .zip(partials.iter())
                    .zip(outs.iter_mut());
                let first = quads.next();
                for (((state, links), partial), slot) in quads {
                    s.spawn(move |_| {
                        *slot = Some(backend.shard_phase_b(
                            state,
                            links,
                            partial,
                            merged_ref,
                            block,
                            evicted_ref,
                        ));
                    });
                }
                if let Some((((state, links), partial), slot)) = first {
                    *slot = Some(backend.shard_phase_b(
                        state,
                        links,
                        partial,
                        merged_ref,
                        block,
                        evicted_ref,
                    ));
                }
            });
        } else {
            for (((state, links), partial), slot) in self
                .states
                .iter_mut()
                .zip(self.links.iter())
                .zip(partials.iter())
                .zip(outs.iter_mut())
            {
                *slot = Some(backend.shard_phase_b(
                    state,
                    links,
                    partial,
                    merged_ref,
                    block,
                    evicted_ref,
                ));
            }
        }
        let mut shard_outs = Vec::with_capacity(self.states.len());
        for out in outs {
            shard_outs.push(out.expect("every shard ran phase B")?);
        }

        // Slide every shard window by the block's raw slice rows.
        for (window, partial) in self.windows.iter_mut().zip(&partials) {
            let raw = backend.partial_raw(partial);
            for t in 0..bins {
                window.push(raw.row(t));
            }
        }

        // Coordinator: sum score partials in shard order, detect, and
        // finalize the fired bins on the assembled residual — the
        // [`Coordinator`] default method, shared with the TCP tracker.
        self.finalize_block(bins, &shard_outs)
    }

    /// The full rows evicted by each push of the block, in push order:
    /// `None` while the window is still filling, else the oldest row of
    /// the combined `[window, block]` sequence — assembled from the
    /// shard windows for pre-block rows, borrowed from the block beyond.
    fn collect_evicted(&self, block: &Matrix) -> Vec<Option<Vec<f64>>> {
        let cap = self.windows[0].capacity();
        let len = self.windows[0].len();
        (0..block.rows())
            .map(|t| {
                if len + t < cap {
                    None
                } else {
                    let idx = len + t - cap;
                    Some(if idx < len {
                        self.assemble_window_row(idx)
                    } else {
                        block.row(idx - len).to_vec()
                    })
                }
            })
            .collect()
    }

    /// Assemble the `i`-th retained row (arrival order) of the logical
    /// global window from the shard windows' slices.
    fn assemble_window_row(&self, i: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.backend.dim()];
        for (links, window) in self.links.iter().zip(&self.windows) {
            let row = window.row(i);
            for (k, &l) in links.iter().enumerate() {
                out[l] = row[k];
            }
        }
        out
    }

    /// Merge, refit, and broadcast: collect the shard state into a fresh
    /// global model through the backend's
    /// [`ShardableBackend::refit_shards`], and hand every shard its new
    /// model slice.
    ///
    /// For the subspace backend this exactly mirrors
    /// [`StreamingEngine::refit`](crate::StreamingEngine::refit),
    /// including the 3σ freeze of the normal dimension under incremental
    /// refits. Wall-clock spent here accumulates into
    /// [`ShardedEngine::refit_seconds`].
    pub fn refit(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let ctx: Vec<ShardCtx<'_>> = self
            .links
            .iter()
            .zip(&self.windows)
            .map(|(links, window)| ShardCtx { links, window })
            .collect();
        self.backend.refit_shards(&mut self.states, &ctx)?;
        self.arrivals_since_fit = 0;
        self.refits += 1;
        self.refit_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }
}

impl<B: ShardableBackend> Coordinator for ShardedEngine<B> {
    type Backend = B;

    fn backend(&self) -> &B {
        &self.backend
    }

    fn shard_links(&self) -> &[Vec<usize>] {
        &self.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize, seed: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            pca_method: PcaMethod::Svd,
            confidence: 0.999,
        }
    }

    #[test]
    fn construction_validates_dimensions() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 200, 0);
        let bad = LinkPartition::round_robin(m + 1, 2).unwrap();
        assert!(ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &bad).is_err());
        let narrow = training(m - 1, 200, 0);
        let good = LinkPartition::round_robin(m, 2).unwrap();
        assert!(ShardedEngine::new(&narrow, rm, config(), StreamConfig::new(200), &good).is_err());
    }

    #[test]
    fn detects_injected_anomaly_and_identifies_flow() {
        let net = builtin::sprint_europe();
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 400, 0);
        let partition = LinkPartition::per_pop(&net.topology);
        let mut engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(400), &partition).unwrap();
        assert_eq!(engine.num_shards(), net.topology.num_pops());

        let quiet = training(m, 1, 900).row(0).to_vec();
        let rep = engine.process(&quiet).unwrap();
        assert!(!rep.detected);

        let flow = 20;
        let mut y = quiet.clone();
        vector::axpy(2e7, &rm.column(flow), &mut y);
        let rep = engine.process(&y).unwrap();
        assert!(rep.detected, "spe {} vs {}", rep.spe, rep.threshold);
        assert_eq!(rep.identification.unwrap().flow, flow);
        assert_eq!(engine.arrivals(), 2);
    }

    #[test]
    fn batch_and_slices_paths_agree() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 300, 0);
        let partition = LinkPartition::round_robin(m, 3).unwrap();
        let mk = || {
            ShardedEngine::new(
                &train,
                rm,
                config(),
                StreamConfig::new(300).refit_every(40),
                &partition,
            )
            .unwrap()
        };
        let mut whole = mk();
        let mut sliced = mk();
        let fresh = training(m, 90, 300);
        let a = whole.process_batch(&fresh).unwrap();
        let slices: Vec<Matrix> = partition
            .groups()
            .iter()
            .map(|g| fresh.select_columns(g))
            .collect();
        let b = sliced.process_batch_slices(&slices).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.spe, y.spe);
            assert_eq!(x.detected, y.detected);
        }
        assert_eq!(whole.refits(), 2);
        assert_eq!(sliced.refits(), 2);
        assert!(whole.refit_seconds() > 0.0);
    }

    #[test]
    fn slices_path_validates_shapes() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 200, 0);
        let partition = LinkPartition::round_robin(m, 2).unwrap();
        let mut engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &partition).unwrap();
        assert!(engine.process_batch_slices(&[]).is_err());
        let wrong_rows = vec![
            Matrix::zeros(2, partition.group(0).len()),
            Matrix::zeros(3, partition.group(1).len()),
        ];
        assert!(engine.process_batch_slices(&wrong_rows).is_err());
        let wrong_cols = vec![
            Matrix::zeros(2, partition.group(0).len() + 1),
            Matrix::zeros(2, partition.group(1).len()),
        ];
        assert!(engine.process_batch_slices(&wrong_cols).is_err());
        // Non-finite values are rejected before any ingestion.
        let mut bad = Matrix::zeros(1, m);
        bad[(0, 1)] = f64::NAN;
        assert!(matches!(
            engine.process_batch(&bad),
            Err(CoreError::NonFiniteMeasurement { link: 1 })
        ));
        assert_eq!(engine.arrivals(), 0);
    }

    #[test]
    fn merged_statistics_requires_incremental_strategy() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let train = training(rm.num_links(), 200, 0);
        let partition = LinkPartition::round_robin(rm.num_links(), 2).unwrap();
        let engine =
            ShardedEngine::new(&train, rm, config(), StreamConfig::new(200), &partition).unwrap();
        assert!(matches!(
            engine.merged_statistics(),
            Err(CoreError::ShardMismatch { .. })
        ));
    }

    #[test]
    fn generic_construction_matches_sugar_bitwise() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let train = training(m, 250, 0);
        let partition = LinkPartition::round_robin(m, 3).unwrap();
        let stream_cfg = StreamConfig::new(250)
            .refit_every(40)
            .strategy(RefitStrategy::Incremental);
        let mut sugar = ShardedEngine::new(&train, rm, config(), stream_cfg, &partition).unwrap();
        let backend =
            SubspaceBackend::fit(&train, rm, config(), RefitStrategy::Incremental).unwrap();
        let mut generic =
            ShardedEngine::with_backend(backend, &train, stream_cfg, &partition).unwrap();
        let fresh = training(m, 90, 250);
        let a = sugar.process_batch(&fresh).unwrap();
        let b = generic.process_batch(&fresh).unwrap();
        assert_eq!(a, b);
    }
}
