//! The PCA subspace method for diagnosing network-wide traffic anomalies.
//!
//! This crate implements the contribution of *Lakhina, Crovella, Diot —
//! "Diagnosing Network-Wide Traffic Anomalies" (SIGCOMM 2004)*: treat the
//! ensemble of link measurements as points in `R^m`, split `R^m` into a
//! **normal subspace** `S` (spanned by the top principal components, which
//! capture the diurnal/weekly structure shared by all links) and an
//! **anomalous subspace** `S̃`, and diagnose volume anomalies in three
//! steps:
//!
//! 1. **Detection** ([`Detector`]) — project each measurement vector onto
//!    `S̃`; flag timesteps whose squared prediction error
//!    `SPE = ‖ỹ‖²` exceeds the Jackson–Mudholkar Q-statistic threshold
//!    [`qstat::q_threshold`] at a chosen confidence level.
//! 2. **Identification** ([`Identifier`]) — find the OD flow whose routing
//!    direction best explains the residual: minimize `‖C̃(y − θᵢ f̂ᵢ)‖`
//!    over candidate flows `i` (paper Equation 1).
//! 3. **Quantification** ([`quantify`]) — convert the per-link anomalous
//!    traffic back to flow bytes with the unit-sum routing weights `Āᵢ`.
//!
//! [`Diagnoser`] bundles the three steps. The online path is the
//! [`stream`] module: [`StreamingEngine`] diagnoses each arrival against
//! a frozen model in `O(m·r)` (Section 7.1) from a flat ring-buffer
//! window, refitting periodically either with a full fit or from the
//! [`incremental`] sufficient statistics (`O(m²)` per arrival plus one
//! Jacobi eigen-solve per refit, independent of the window length);
//! [`MultiwayEngine`] runs several measurement kinds (bytes, packets,
//! entropy) in lockstep, and [`OnlineDiagnoser`] remains as a thin
//! compatibility wrapper. The detection method itself is a pluggable
//! backend ([`method`]): every engine is generic over a
//! [`DetectionBackend`] (default: the [`SubspaceBackend`] reference
//! implementation, bitwise the historical behavior), so the temporal
//! comparators in `netanom-baselines` stream and shard through the
//! identical machinery. The [`shard`] module scales the same semantics
//! across link partitions: [`ShardedEngine`] runs one ingestion worker
//! per shard and merges mergeable per-shard state — sufficient
//! statistics ([`incremental::CovarianceShard`]) for the subspace
//! backend — back into the global model, bitwise. [`multiflow`]
//! implements the Section 7.2
//! extension to anomalies spanning several OD flows; [`timescale`]
//! implements the Section 7.3 multi-timescale extension; and
//! [`detectability`] computes the Section 5.4 per-flow detectability
//! floor.
//!
//! # Example
//!
//! ```
//! use netanom_core::{Diagnoser, DiagnoserConfig};
//! use netanom_traffic::datasets;
//!
//! let ds = datasets::mini(42);
//! let diagnoser = Diagnoser::fit(
//!     ds.links.matrix(),
//!     &ds.network.routing_matrix,
//!     DiagnoserConfig::default(),
//! ).unwrap();
//! let reports = diagnoser.diagnose_series(ds.links.matrix()).unwrap();
//! let detected = reports.iter().filter(|r| r.detected).count();
//! assert!(detected < reports.len()); // most bins are normal
//! ```

#![deny(missing_docs)]
// Indexed loops in numerical kernels mirror the published algorithms;
// iterator chains would obscure the math without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

pub mod coordinate;
pub mod detectability;
mod diagnose;
mod error;
mod identify;
pub mod incremental;
pub mod method;
pub mod multiflow;
mod online;
mod pca;
pub mod qstat;
mod separation;
pub mod service;
pub mod shard;
pub mod stream;
mod subspace;
pub mod timescale;

pub use coordinate::Coordinator;
pub use diagnose::{quantify, Diagnoser, DiagnoserConfig, DiagnosisReport};
pub use error::CoreError;
pub use identify::{Identification, Identifier};
pub use method::{
    merge_coeff_partials, subspace_model_from_state, DetectionBackend, MethodState, ShardCtx,
    ShardScores, ShardableBackend, SubspaceBackend, SubspacePartial, SubspaceShard,
};
pub use online::OnlineDiagnoser;
pub use pca::{Pca, PcaMethod};
pub use separation::SeparationPolicy;
pub use service::{EngineConfig, PartitionSpec};
pub use shard::ShardedEngine;
pub use stream::{
    MultiwayEngine, MultiwayReport, RefitStrategy, RingWindow, StreamConfig, StreamingEngine,
};
pub use subspace::{Detection, Detector, SubspaceModel};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
