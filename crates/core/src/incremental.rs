//! Incremental model maintenance for online deployment.
//!
//! The paper notes that recomputing the SVD per timestep is unnecessary
//! ("one need only compute the SVD occasionally") and points to the
//! decomposition-updating literature for busier settings. This module
//! implements the practical middle ground: maintain the sufficient
//! statistics of the measurement window — column sums and the raw
//! cross-product matrix `Σ y yᵀ` — under `O(m²)` row additions and
//! removals, and rebuild the `m × m` covariance eigendecomposition on
//! demand (a ~3 ms Jacobi solve at backbone sizes, versus ~30 ms for the
//! full-window SVD).
//!
//! A sliding one-week window over 10-minute bins therefore costs `O(m²)`
//! per arrival plus one small eigen-solve per refit, independent of the
//! window length.

use netanom_linalg::decomposition::{self, SymmetricEigen, TruncatedEigen};
use netanom_linalg::{vector, BlockPlacement, Matrix};

use crate::separation::SeparationPolicy;
use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// Running sufficient statistics (`n`, `Σy`, `Σyyᵀ`) of a set of
/// measurement vectors, supporting O(m²) add/remove.
///
/// # Numerical note
///
/// The covariance is formed as `(Σyyᵀ − n·μμᵀ)/(n−1)`, which cancels
/// ~`(μ/σ)²` of precision. At backbone scales (`μ/σ` ≈ 10–100) this
/// costs 2–4 of the 16 significant digits — harmless here, but callers
/// with extreme mean-to-variance ratios should refit from raw data
/// occasionally. The `from_matrix` → `covariance` path is tested against
/// the direct two-pass computation to 1e-9 relative accuracy.
#[derive(Debug, Clone)]
pub struct IncrementalCovariance {
    dim: usize,
    count: usize,
    sum: Vec<f64>,
    /// Upper triangle (including diagonal) of `Σ y yᵀ`, row-major.
    cross: Matrix,
}

impl IncrementalCovariance {
    /// Empty statistics over `m`-dimensional measurements.
    pub fn new(dim: usize) -> Self {
        IncrementalCovariance {
            dim,
            count: 0,
            sum: vec![0.0; dim],
            cross: Matrix::zeros(dim, dim),
        }
    }

    /// Statistics of every row of a `t × m` matrix.
    pub fn from_matrix(data: &Matrix) -> Self {
        let mut acc = Self::new(data.cols());
        for t in 0..data.rows() {
            acc.add(data.row(t))
                .expect("row length matches by construction");
        }
        acc
    }

    /// Number of accumulated measurements.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Measurement dimension `m`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn check(&self, y: &[f64]) -> Result<()> {
        if y.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: y.len(),
            });
        }
        Ok(())
    }

    /// Add one measurement (`O(m²)`).
    pub fn add(&mut self, y: &[f64]) -> Result<()> {
        self.check(y)?;
        self.count += 1;
        vector::axpy(1.0, y, &mut self.sum);
        for i in 0..self.dim {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            // Entry (i, j) accumulates `+= yi * y[j]`; the axpy performs
            // exactly that per element, so results are bitwise identical
            // to the scalar loop while vectorizing cleanly.
            vector::axpy(yi, &y[i..], &mut self.cross.row_mut(i)[i..]);
        }
        Ok(())
    }

    /// Remove a previously-added measurement (`O(m²)`).
    ///
    /// The caller is responsible for passing exactly a vector that was
    /// added earlier (the sliding-window pattern); removing anything else
    /// silently corrupts the statistics. Removing below zero measurements
    /// is an error.
    pub fn remove(&mut self, y: &[f64]) -> Result<()> {
        self.check(y)?;
        if self.count == 0 {
            return Err(CoreError::TooFewSamples { got: 0, need: 1 });
        }
        self.count -= 1;
        vector::axpy(-1.0, y, &mut self.sum);
        for i in 0..self.dim {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            // `a -= yi * y[j]` and `a += (-yi) * y[j]` are the same
            // floating-point operation (sign flips are exact).
            vector::axpy(-yi, &y[i..], &mut self.cross.row_mut(i)[i..]);
        }
        Ok(())
    }

    /// Slide the window by one measurement: remove `old`, add `new`
    /// (`O(m²)`, the steady-state cost of a full ring buffer).
    ///
    /// Equivalent to `remove(old)` followed by `add(new)`; the same
    /// caller obligations as [`IncrementalCovariance::remove`] apply to
    /// `old`.
    pub fn slide(&mut self, old: &[f64], new: &[f64]) -> Result<()> {
        self.remove(old)?;
        self.add(new)
    }

    /// Current mean vector.
    ///
    /// Returns an error with zero measurements.
    pub fn mean(&self) -> Result<Vec<f64>> {
        if self.count == 0 {
            return Err(CoreError::TooFewSamples { got: 0, need: 1 });
        }
        Ok(vector::scaled(&self.sum, 1.0 / self.count as f64))
    }

    /// Sample covariance `(Σyyᵀ − n·μμᵀ)/(n−1)`.
    ///
    /// Requires at least two measurements. Tiny negative diagonal values
    /// from cancellation are clamped to zero.
    pub fn covariance(&self) -> Result<Matrix> {
        if self.count < 2 {
            return Err(CoreError::TooFewSamples {
                got: self.count,
                need: 2,
            });
        }
        let n = self.count as f64;
        let mean = self.mean()?;
        let denom = n - 1.0;
        let mut cov = Matrix::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in i..self.dim {
                let v = (self.cross[(i, j)] - n * mean[i] * mean[j]) / denom;
                let v = if i == j { v.max(0.0) } else { v };
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        Ok(cov)
    }

    /// Serialize to the crate's little-endian binary layout with a
    /// `"NAIC"` magic (netanom incremental covariance) — the statistics
    /// half of a service-session checkpoint. Every `f64` bit pattern is
    /// preserved exactly, so a decoded accumulator continues the exact
    /// add/remove history of the original: refits after a restore are
    /// bitwise the refits of an uninterrupted run.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STATS_MAGIC);
        out.extend_from_slice(&STATS_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        for &v in &self.sum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for i in 0..self.dim {
            for &v in self.cross.row(i) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decode a buffer produced by [`IncrementalCovariance::to_bytes`],
    /// rejecting bad magic/version, truncation, and trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
            let end = at.checked_add(n).filter(|&e| e <= bytes.len());
            let Some(end) = end else {
                return Err(CoreError::InvalidState {
                    reason: "truncated statistics buffer",
                });
            };
            let out = &bytes[*at..end];
            *at = end;
            Ok(out)
        };
        let mut at = 0usize;
        if take(&mut at, 4)? != STATS_MAGIC {
            return Err(CoreError::InvalidState {
                reason: "bad statistics magic prefix",
            });
        }
        if u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) != STATS_VERSION {
            return Err(CoreError::InvalidState {
                reason: "unsupported statistics version",
            });
        }
        let u64_at = |at: &mut usize| -> Result<u64> {
            let b = take(at, 8)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        let dim = u64_at(&mut at)? as usize;
        let count = u64_at(&mut at)? as usize;
        let f64s_at = |at: &mut usize, n: usize| -> Result<Vec<f64>> {
            let b = take(
                at,
                n.checked_mul(8).ok_or(CoreError::InvalidState {
                    reason: "statistics length overflow",
                })?,
            )?;
            Ok(b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect())
        };
        let sum = f64s_at(&mut at, dim)?;
        let cross_len = dim.checked_mul(dim).ok_or(CoreError::InvalidState {
            reason: "statistics shape overflow",
        })?;
        let cross_data = f64s_at(&mut at, cross_len)?;
        if at != bytes.len() {
            return Err(CoreError::InvalidState {
                reason: "trailing bytes after statistics",
            });
        }
        let cross =
            Matrix::from_vec(dim, dim, cross_data).map_err(|_| CoreError::InvalidState {
                reason: "statistics data does not match its shape",
            })?;
        Ok(IncrementalCovariance {
            dim,
            count,
            sum,
            cross,
        })
    }

    /// Rebuild a [`SubspaceModel`] from the current window under the
    /// given separation policy.
    ///
    /// The 3σ policy needs the temporal projections, which sufficient
    /// statistics cannot provide; use [`SeparationPolicy::FixedCount`] or
    /// [`SeparationPolicy::VarianceFraction`] here (typically with the
    /// `r` the 3σ rule chose at the last full fit — the subspace is
    /// stable week over week, which is the paper's whole argument for
    /// fitting occasionally).
    pub fn to_model(&self, policy: SeparationPolicy) -> Result<SubspaceModel> {
        if let SeparationPolicy::ThreeSigma { .. } = policy {
            return Err(CoreError::DegenerateResidual { r: usize::MAX });
        }
        let cov = self.covariance()?;
        let eig = SymmetricEigen::of_covariance(&cov)?;
        let eigenvalues = &eig.eigenvalues;
        let r = match policy {
            SeparationPolicy::FixedCount(r) => r.min(self.dim),
            SeparationPolicy::VarianceFraction(f) => {
                let total: f64 = eigenvalues.iter().sum();
                if total <= 0.0 {
                    0
                } else {
                    let target = f.clamp(0.0, 1.0) * total;
                    let mut acc = 0.0;
                    let mut r = eigenvalues.len();
                    for (i, &l) in eigenvalues.iter().enumerate() {
                        acc += l;
                        if acc >= target {
                            r = i + 1;
                            break;
                        }
                    }
                    r
                }
            }
            SeparationPolicy::ThreeSigma { .. } => unreachable!("rejected above"),
        };
        SubspaceModel::from_symmetric_eigen(self.mean()?, &eig, r)
    }

    /// Rebuild a [`SubspaceModel`] from the current window with a
    /// **truncated** eigensolve: only the top `k` eigenpairs of the
    /// covariance are computed
    /// ([`TruncatedEigen::of_covariance`]), `O(m²·k)` per sweep instead
    /// of the full Jacobi `O(m³)` of [`IncrementalCovariance::to_model`]
    /// — the refit route for thousand-link topologies.
    ///
    /// The Q-statistic threshold stays exact: the covariance's power
    /// traces ([`power_traces`]) supply the residual moments without the
    /// tail spectrum. `k` is raised to the policy's normal dimension
    /// when smaller, and under [`SeparationPolicy::VarianceFraction`]
    /// the dimension search is confined to the computed block (`r ≤ k`);
    /// the 3σ policy is rejected exactly like
    /// [`IncrementalCovariance::to_model`].
    ///
    /// [`TruncatedEigen::of_covariance`]:
    /// netanom_linalg::decomposition::TruncatedEigen::of_covariance
    /// [`power_traces`]: netanom_linalg::decomposition::power_traces
    pub fn to_model_truncated(
        &self,
        policy: SeparationPolicy,
        k: usize,
        tol: f64,
    ) -> Result<SubspaceModel> {
        if let SeparationPolicy::ThreeSigma { .. } = policy {
            return Err(CoreError::DegenerateResidual { r: usize::MAX });
        }
        let cov = self.covariance()?;
        let k_eff = match policy {
            SeparationPolicy::FixedCount(r) => k.max(r.min(self.dim.saturating_sub(1))),
            _ => k,
        }
        .clamp(1, self.dim);
        let eig = TruncatedEigen::of_covariance(&cov, k_eff, tol)?;
        let traces = decomposition::power_traces(&cov)?;
        let r = match policy {
            SeparationPolicy::FixedCount(r) => r.min(self.dim),
            SeparationPolicy::VarianceFraction(f) => {
                let total = traces.0.max(0.0);
                if total <= 0.0 {
                    0
                } else {
                    let target = f.clamp(0.0, 1.0) * total;
                    let mut acc = 0.0;
                    let mut r = None;
                    for (i, &l) in eig.eigenvalues.iter().enumerate() {
                        acc += l;
                        if acc >= target {
                            r = Some(i + 1);
                            break;
                        }
                    }
                    match r {
                        Some(r) => r,
                        // The variance target lies beyond the computed
                        // block: silently shrinking the subspace would
                        // diverge from `to_model`'s choice, so refuse —
                        // the caller must raise `k` (or the block
                        // already spans the whole space and the policy
                        // is degenerate either way).
                        None if eig.len() < self.dim => {
                            return Err(CoreError::TruncatedBlockTooSmall { k: eig.len() });
                        }
                        None => eig.len(),
                    }
                }
            }
            SeparationPolicy::ThreeSigma { .. } => unreachable!("rejected above"),
        };
        if r >= self.dim {
            // Same degenerate-separation semantics as `to_model`.
            return Err(CoreError::DegenerateResidual { r });
        }
        SubspaceModel::from_truncated(self.mean()?, &eig, r, traces)
    }

    /// Merge per-shard statistics ([`CovarianceShard`]) covering disjoint
    /// link sets back into one global accumulator.
    ///
    /// The shards must all have seen the same number of measurements and
    /// their link sets must partition `0..dim`. Because every shard
    /// maintains exactly the rows of the global upper-triangle
    /// cross-product its links own — with the same per-entry operation
    /// sequence a single global accumulator would have used — the merge
    /// is pure placement ([`Matrix::assemble_blocks`]) and the result is
    /// **bitwise identical** to the [`IncrementalCovariance`] a single
    /// process would have maintained over the same arrival stream.
    /// Sharding is therefore a pure scale transform, not an
    /// approximation.
    pub fn merge<'a, I: IntoIterator<Item = &'a CovarianceShard>>(shards: I) -> Result<Self> {
        let shards: Vec<&CovarianceShard> = shards.into_iter().collect();
        let Some(&first) = shards.first() else {
            return Err(CoreError::ShardMismatch {
                reason: "no shard statistics to merge",
            });
        };
        let dim = first.dim;
        let count = first.count;
        let mut sum = vec![0.0; dim];
        let mut owned = vec![false; dim];
        for &shard in &shards {
            if shard.dim != dim {
                return Err(CoreError::ShardMismatch {
                    reason: "shards disagree on the measurement dimension",
                });
            }
            if shard.count != count {
                return Err(CoreError::ShardMismatch {
                    reason: "shards have seen different numbers of measurements",
                });
            }
            for (k, &i) in shard.links.iter().enumerate() {
                if owned[i] {
                    return Err(CoreError::ShardMismatch {
                        reason: "a link is owned by more than one shard",
                    });
                }
                owned[i] = true;
                sum[i] = shard.sum[k];
            }
        }
        if !owned.iter().all(|&o| o) {
            return Err(CoreError::ShardMismatch {
                reason: "some link is owned by no shard",
            });
        }
        let all_cols: Vec<usize> = (0..dim).collect();
        let placements: Vec<BlockPlacement> = shards
            .iter()
            .map(|&shard| BlockPlacement {
                rows: &shard.links,
                cols: &all_cols,
                block: &shard.cross,
            })
            .collect();
        let cross = Matrix::assemble_blocks(dim, dim, &placements)?;
        Ok(IncrementalCovariance {
            dim,
            count,
            sum,
            cross,
        })
    }
}

/// Magic prefix of [`CovarianceShard`]'s binary encoding.
/// Magic prefix of the serialized global accumulator
/// ([`IncrementalCovariance::to_bytes`]).
const STATS_MAGIC: [u8; 4] = *b"NAIC";
/// Version of the serialized global accumulator layout.
const STATS_VERSION: u32 = 1;

const SHARD_MAGIC: [u8; 4] = *b"NACS";
/// Encoding version.
const SHARD_VERSION: u32 = 1;

/// One shard's slice of the global sufficient statistics: the rows of
/// `Σ y yᵀ` (upper triangle) belonging to the shard's links, plus the
/// matching entries of `Σ y` and the shared measurement count.
///
/// Each arriving (or evicted) measurement is the **full** `m`-vector —
/// statistics row `i` needs `y[j]` for every `j ≥ i` — but the per-shard
/// *compute* is only the shard's share of the `O(m²)` upper triangle,
/// which is the per-arrival hot cost the sharded engine splits across
/// workers. (Bandwidth is `O(m)` doubles per arrival; the compute is
/// `O(m²)` multiply-adds, so shipping the row is the cheap part.)
///
/// Accumulation order per entry is identical to
/// [`IncrementalCovariance`]'s, so [`IncrementalCovariance::merge`]
/// reassembles the global statistics bitwise.
#[derive(Debug, Clone)]
pub struct CovarianceShard {
    /// Global measurement dimension `m`.
    dim: usize,
    /// Owned global link indices, strictly ascending.
    links: Vec<usize>,
    count: usize,
    /// `sum[k] = Σ y[links[k]]`.
    sum: Vec<f64>,
    /// Row `k` holds `Σ y[i]·y[j]` for `i = links[k]`, `j ∈ i..dim`
    /// (full `dim` width, zeros left of the diagonal).
    cross: Matrix,
}

impl CovarianceShard {
    /// Empty statistics for a shard owning `links` (strictly ascending
    /// global indices into `0..dim`).
    pub fn new(dim: usize, links: &[usize]) -> Result<Self> {
        if links.is_empty() {
            return Err(CoreError::ShardMismatch {
                reason: "a shard must own at least one link",
            });
        }
        for w in links.windows(2) {
            if w[0] >= w[1] {
                return Err(CoreError::ShardMismatch {
                    reason: "shard links must be strictly ascending",
                });
            }
        }
        if *links.last().expect("non-empty") >= dim {
            return Err(CoreError::ShardMismatch {
                reason: "shard links exceed the measurement dimension",
            });
        }
        Ok(CovarianceShard {
            dim,
            links: links.to_vec(),
            count: 0,
            sum: vec![0.0; links.len()],
            cross: Matrix::zeros(links.len(), dim),
        })
    }

    /// Number of accumulated measurements.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Global measurement dimension `m`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The owned global link indices.
    pub fn links(&self) -> &[usize] {
        &self.links
    }

    fn check(&self, y: &[f64]) -> Result<()> {
        if y.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: y.len(),
            });
        }
        Ok(())
    }

    /// Add one full measurement vector, updating only the owned rows.
    pub fn add(&mut self, y: &[f64]) -> Result<()> {
        self.check(y)?;
        self.count += 1;
        for (k, &i) in self.links.iter().enumerate() {
            let yi = y[i];
            self.sum[k] += yi;
            if yi == 0.0 {
                continue;
            }
            vector::axpy(yi, &y[i..], &mut self.cross.row_mut(k)[i..]);
        }
        Ok(())
    }

    /// Remove a previously-added measurement. Same caller obligations as
    /// [`IncrementalCovariance::remove`].
    pub fn remove(&mut self, y: &[f64]) -> Result<()> {
        self.check(y)?;
        if self.count == 0 {
            return Err(CoreError::TooFewSamples { got: 0, need: 1 });
        }
        self.count -= 1;
        for (k, &i) in self.links.iter().enumerate() {
            let yi = y[i];
            self.sum[k] -= yi;
            if yi == 0.0 {
                continue;
            }
            vector::axpy(-yi, &y[i..], &mut self.cross.row_mut(k)[i..]);
        }
        Ok(())
    }

    /// Slide the window by one measurement: remove `old`, add `new`.
    pub fn slide(&mut self, old: &[f64], new: &[f64]) -> Result<()> {
        self.remove(old)?;
        self.add(new)
    }

    /// Encode as a self-contained little-endian byte buffer — the wire
    /// format workers use to ship statistics partials to the tracker
    /// (`"NACS"` = netanom covariance shard). Every `f64` bit pattern is
    /// preserved exactly, so a decoded shard merges bitwise identically
    /// to the original.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SHARD_MAGIC);
        out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.extend_from_slice(&(self.links.len() as u64).to_le_bytes());
        for &l in &self.links {
            out.extend_from_slice(&(l as u64).to_le_bytes());
        }
        for &v in &self.sum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for k in 0..self.cross.rows() {
            for &v in self.cross.row(k) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decode a buffer produced by [`CovarianceShard::to_bytes`],
    /// re-validating every structural invariant (`links` strictly
    /// ascending and inside `0..dim`, exact buffer length).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
            let end = at.checked_add(n).filter(|&e| e <= bytes.len());
            let Some(end) = end else {
                return Err(CoreError::InvalidState {
                    reason: "truncated statistics buffer",
                });
            };
            let out = &bytes[*at..end];
            *at = end;
            Ok(out)
        };
        let u64_at = |at: &mut usize| -> Result<u64> {
            let b = take(at, 8)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        let mut at = 0usize;
        if take(&mut at, 4)? != SHARD_MAGIC {
            return Err(CoreError::InvalidState {
                reason: "bad statistics magic prefix",
            });
        }
        if u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) != SHARD_VERSION {
            return Err(CoreError::InvalidState {
                reason: "unsupported statistics version",
            });
        }
        let dim = u64_at(&mut at)? as usize;
        let count = u64_at(&mut at)? as usize;
        let nlinks = u64_at(&mut at)? as usize;
        let mut links = Vec::with_capacity(nlinks.min(1 << 20));
        for _ in 0..nlinks {
            links.push(u64_at(&mut at)? as usize);
        }
        let f64s_at = |at: &mut usize, n: usize| -> Result<Vec<f64>> {
            let b = take(
                at,
                n.checked_mul(8).ok_or(CoreError::InvalidState {
                    reason: "statistics length overflow",
                })?,
            )?;
            Ok(b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect())
        };
        let sum = f64s_at(&mut at, nlinks)?;
        let cross_len = nlinks.checked_mul(dim).ok_or(CoreError::InvalidState {
            reason: "statistics shape overflow",
        })?;
        let cross_data = f64s_at(&mut at, cross_len)?;
        if at != bytes.len() {
            return Err(CoreError::InvalidState {
                reason: "trailing bytes after statistics",
            });
        }
        // Reuse the constructor's link validation, then install the
        // decoded payload over the empty shell.
        let mut shard = CovarianceShard::new(dim, &links)?;
        shard.count = count;
        shard.sum = sum;
        shard.cross =
            Matrix::from_vec(nlinks, dim, cross_data).map_err(|_| CoreError::InvalidState {
                reason: "statistics data does not match its shape",
            })?;
        Ok(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::{Pca, PcaMethod};

    fn data(t: usize, m: usize, seed: usize) -> Matrix {
        Matrix::from_fn(t, m, |i, j| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 1e5 * phase.sin() * ((j % 3) as f64 + 1.0);
            let noise = (((i * m + j + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            1e6 + smooth + noise
        })
    }

    #[test]
    fn matches_two_pass_covariance() {
        let y = data(300, 6, 0);
        let inc = IncrementalCovariance::from_matrix(&y);
        let (centered, mean) = y.mean_centered_columns();
        let direct = centered.gram().scaled(1.0 / 299.0);
        let cov = inc.covariance().unwrap();
        assert!(
            cov.approx_eq(&direct, 1e-9 * direct.max_abs()),
            "incremental covariance diverges from two-pass"
        );
        assert!(vector::approx_eq(&inc.mean().unwrap(), &mean, 1e-9));
    }

    #[test]
    fn sliding_window_equals_batch_on_window() {
        let y = data(400, 5, 1);
        let window = 250;
        let mut inc = IncrementalCovariance::from_matrix(&y.row_block(0, window).unwrap());
        // Slide by 150 steps.
        for t in 0..150 {
            inc.remove(y.row(t)).unwrap();
            inc.add(y.row(window + t)).unwrap();
        }
        let batch = IncrementalCovariance::from_matrix(&y.row_block(150, window).unwrap());
        assert_eq!(inc.count(), window);
        let a = inc.covariance().unwrap();
        let b = batch.covariance().unwrap();
        assert!(a.approx_eq(&b, 1e-6 * b.max_abs().max(1.0)));
    }

    #[test]
    fn model_matches_full_pca_fit() {
        let y = data(500, 6, 2);
        let inc = IncrementalCovariance::from_matrix(&y);
        let model_inc = inc.to_model(SeparationPolicy::FixedCount(2)).unwrap();
        let pca = Pca::fit(&y, PcaMethod::Covariance).unwrap();
        let model_batch = SubspaceModel::from_pca(&pca, 2).unwrap();

        // Same SPE on arbitrary probes (sign flips in eigenvectors cancel
        // inside the projector).
        for t in [0usize, 123, 499] {
            let a = model_inc.spe(y.row(t)).unwrap();
            let b = model_batch.spe(y.row(t)).unwrap();
            assert!(
                (a - b).abs() <= 1e-6 * b.max(1.0),
                "SPE mismatch at row {t}: {a} vs {b}"
            );
        }
        // Same spectrum.
        for (a, b) in model_inc
            .eigenvalues()
            .iter()
            .zip(model_batch.eigenvalues())
        {
            assert!((a - b).abs() <= 1e-6 * b.max(1.0));
        }
    }

    #[test]
    fn variance_fraction_policy_works_without_temporal_data() {
        let y = data(300, 6, 3);
        let inc = IncrementalCovariance::from_matrix(&y);
        let model = inc
            .to_model(SeparationPolicy::VarianceFraction(0.9))
            .unwrap();
        assert!(model.normal_dim() >= 1);
        assert!(model.normal_dim() < 6);
    }

    #[test]
    fn three_sigma_policy_is_rejected() {
        let y = data(100, 4, 4);
        let inc = IncrementalCovariance::from_matrix(&y);
        assert!(inc.to_model(SeparationPolicy::default()).is_err());
    }

    #[test]
    fn empty_and_underfull_errors() {
        let mut inc = IncrementalCovariance::new(3);
        assert!(inc.mean().is_err());
        assert!(inc.covariance().is_err());
        assert!(inc.remove(&[1.0, 2.0, 3.0]).is_err());
        inc.add(&[1.0, 2.0, 3.0]).unwrap();
        assert!(inc.covariance().is_err()); // needs 2
        assert!(inc.add(&[1.0]).is_err()); // dim check
    }

    #[test]
    fn sharded_statistics_merge_bitwise_to_global() {
        let y = data(120, 7, 6);
        // Uneven, non-contiguous ownership.
        let groups: [&[usize]; 3] = [&[0, 3, 6], &[1, 2], &[4, 5]];
        let mut shards: Vec<CovarianceShard> = groups
            .iter()
            .map(|g| CovarianceShard::new(7, g).unwrap())
            .collect();
        let mut global = IncrementalCovariance::new(7);
        // Interleave adds and a sliding phase.
        for t in 0..80 {
            global.add(y.row(t)).unwrap();
            for s in &mut shards {
                s.add(y.row(t)).unwrap();
            }
        }
        for t in 80..120 {
            global.slide(y.row(t - 80), y.row(t)).unwrap();
            for s in &mut shards {
                s.slide(y.row(t - 80), y.row(t)).unwrap();
            }
        }
        let merged = IncrementalCovariance::merge(&shards).unwrap();
        assert_eq!(merged.count(), global.count());
        assert!(
            merged
                .covariance()
                .unwrap()
                .approx_eq(&global.covariance().unwrap(), 0.0),
            "merged covariance must be bitwise identical to the global accumulator"
        );
        assert_eq!(merged.mean().unwrap(), global.mean().unwrap());
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let mk = |links: &[usize]| CovarianceShard::new(4, links).unwrap();
        // Empty input.
        let none: Vec<CovarianceShard> = Vec::new();
        assert!(matches!(
            IncrementalCovariance::merge(&none),
            Err(CoreError::ShardMismatch { .. })
        ));
        // Overlapping ownership.
        assert!(IncrementalCovariance::merge(&[mk(&[0, 1]), mk(&[1, 2, 3])]).is_err());
        // Missing links.
        assert!(IncrementalCovariance::merge(&[mk(&[0, 1]), mk(&[2])]).is_err());
        // Count mismatch.
        let mut a = mk(&[0, 1]);
        let b = mk(&[2, 3]);
        a.add(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(matches!(
            IncrementalCovariance::merge(&[a, b]),
            Err(CoreError::ShardMismatch { .. })
        ));
        // Dim mismatch.
        let c = CovarianceShard::new(5, &[0, 1, 2, 3, 4]).unwrap();
        assert!(IncrementalCovariance::merge(&[mk(&[0, 1, 2, 3]), c]).is_err());
    }

    #[test]
    fn covariance_shard_validates_construction_and_rows() {
        assert!(CovarianceShard::new(4, &[]).is_err());
        assert!(CovarianceShard::new(4, &[1, 1]).is_err());
        assert!(CovarianceShard::new(4, &[2, 1]).is_err());
        assert!(CovarianceShard::new(4, &[0, 4]).is_err());
        let mut s = CovarianceShard::new(4, &[0, 2]).unwrap();
        assert_eq!(s.links(), &[0, 2]);
        assert_eq!(s.dim(), 4);
        assert!(s.add(&[1.0, 2.0]).is_err());
        assert!(s.remove(&[1.0; 4]).is_err()); // nothing added yet
        s.add(&[1.0; 4]).unwrap();
        assert_eq!(s.count(), 1);
        s.remove(&[1.0; 4]).unwrap();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn covariance_shard_bytes_roundtrip_is_bitwise() {
        let y = data(40, 6, 11);
        let mut s = CovarianceShard::new(6, &[1, 3, 4]).unwrap();
        for t in 0..y.rows() {
            s.add(y.row(t)).unwrap();
        }
        let bytes = s.to_bytes();
        let back = CovarianceShard::from_bytes(&bytes).unwrap();
        assert_eq!(back.dim(), s.dim());
        assert_eq!(back.links(), s.links());
        assert_eq!(back.count(), s.count());
        assert_eq!(back.sum, s.sum, "sum must round-trip bitwise");
        assert!(back.cross == s.cross, "cross rows must round-trip bitwise");
        // A decoded shard must merge exactly like the original.
        let mut other = CovarianceShard::new(6, &[0, 2, 5]).unwrap();
        for t in 0..y.rows() {
            other.add(y.row(t)).unwrap();
        }
        let merged_orig = IncrementalCovariance::merge([&s, &other]).unwrap();
        let merged_back = IncrementalCovariance::merge([&back, &other]).unwrap();
        assert!(merged_orig.covariance().unwrap() == merged_back.covariance().unwrap());
    }

    #[test]
    fn covariance_shard_bytes_rejects_corruption() {
        let mut s = CovarianceShard::new(3, &[0, 2]).unwrap();
        s.add(&[1.0, 2.0, 3.0]).unwrap();
        let bytes = s.to_bytes();
        // Truncation at every prefix length fails cleanly.
        for cut in 0..bytes.len() {
            assert!(CovarianceShard::from_bytes(&bytes[..cut]).is_err());
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(CovarianceShard::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(CovarianceShard::from_bytes(&long).is_err());
        // Non-ascending links are re-validated on decode.
        let mut swapped = bytes;
        // links live after magic(4)+version(4)+dim(8)+count(8)+len(8).
        let at = 4 + 4 + 8 + 8 + 8;
        let (a, b) = (at, at + 8);
        for i in 0..8 {
            swapped.swap(a + i, b + i);
        }
        assert!(CovarianceShard::from_bytes(&swapped).is_err());
    }

    #[test]
    fn add_remove_roundtrip_restores_state() {
        let y = data(50, 4, 5);
        let mut inc = IncrementalCovariance::from_matrix(&y);
        let before = inc.covariance().unwrap();
        let probe = vec![5e6, -1e6, 3e6, 0.0];
        inc.add(&probe).unwrap();
        inc.remove(&probe).unwrap();
        let after = inc.covariance().unwrap();
        assert!(after.approx_eq(&before, 1e-6 * before.max_abs()));
    }
}
