//! The fitted subspace model and the detection step.

use netanom_linalg::{vector, Matrix};

use crate::pca::{Pca, PcaMethod};
use crate::qstat::{q_threshold, QStatistic};
use crate::separation::SeparationPolicy;
use crate::{CoreError, Result};

/// A fitted subspace model: the separation `R^m = S ⊕ S̃` plus everything
/// needed to project new measurements onto the two subspaces.
///
/// The projector onto the normal subspace is `C = PPᵀ` with `P` the
/// `m × r` matrix of leading principal axes; the residual projector is
/// `C̃ = I − PPᵀ`. Projection is implemented as `ỹ = z − P(Pᵀz)` which is
/// `O(m·r)` per vector — the per-arrival cost quoted in the paper's
/// Section 7.1 deployment discussion.
#[derive(Debug, Clone)]
pub struct SubspaceModel {
    mean: Vec<f64>,
    /// Normal basis: `m × r`, orthonormal columns.
    p: Matrix,
    /// Full spectrum (covariance scale), decreasing.
    eigenvalues: Vec<f64>,
    r: usize,
}

impl SubspaceModel {
    /// Fit a model to a `t × m` measurement matrix: PCA, then subspace
    /// separation under `policy`.
    ///
    /// Returns [`CoreError::DegenerateResidual`] if the policy assigns
    /// every axis to the normal subspace or the residual carries no
    /// variance (in either case there is nothing to detect with).
    pub fn fit(links: &Matrix, policy: SeparationPolicy, method: PcaMethod) -> Result<Self> {
        let pca = Pca::fit(links, method)?;
        let r = policy.normal_dim(&pca);
        Self::from_pca(&pca, r)
    }

    /// Build a model directly from a mean vector and a covariance
    /// eigendecomposition (components as columns, eigenvalues decreasing,
    /// covariance scale).
    ///
    /// This is the constructor used by incremental maintenance
    /// ([`crate::incremental::IncrementalCovariance`]), where no centered
    /// data matrix exists to run the full [`Pca`] path on.
    pub fn from_eigen(
        mean: Vec<f64>,
        components: &Matrix,
        eigenvalues: Vec<f64>,
        r: usize,
    ) -> Result<Self> {
        let m = mean.len();
        if components.shape() != (m, m) || eigenvalues.len() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: components.rows(),
            });
        }
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        let resid_var: f64 = eigenvalues[r..].iter().sum();
        let scale = eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
        if resid_var <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        let indices: Vec<usize> = (0..r).collect();
        Ok(SubspaceModel {
            mean,
            p: components.select_columns(&indices),
            eigenvalues,
            r,
        })
    }

    /// Build a model from an existing PCA with an explicit normal
    /// dimension `r`.
    pub fn from_pca(pca: &Pca, r: usize) -> Result<Self> {
        let m = pca.dim();
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        // Verify the residual carries variance; otherwise SPE ≡ 0.
        let resid_var: f64 = pca.eigenvalues()[r..].iter().sum();
        let scale = pca.eigenvalues().first().copied().unwrap_or(0.0).max(1.0);
        if resid_var <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        let indices: Vec<usize> = (0..r).collect();
        let p = pca.components().select_columns(&indices);
        Ok(SubspaceModel {
            mean: pca.mean().to_vec(),
            p,
            eigenvalues: pca.eigenvalues().to_vec(),
            r,
        })
    }

    /// Number of links `m`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Dimension `r` of the normal subspace.
    pub fn normal_dim(&self) -> usize {
        self.r
    }

    /// The per-link training means subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The `m × r` normal basis `P`.
    pub fn normal_basis(&self) -> &Matrix {
        &self.p
    }

    /// The full eigenvalue spectrum (covariance scale).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    fn check_dim(&self, y: &[f64]) -> Result<()> {
        if y.len() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: y.len(),
            });
        }
        Ok(())
    }

    /// Split a measurement into modeled and residual parts:
    /// `y − μ = ŷ + ỹ` with `ŷ ∈ S`, `ỹ ∈ S̃`.
    ///
    /// Rejects non-finite measurements (a NaN would otherwise poison the
    /// SPE and silently disable detection — `NaN > δ²` is `false`).
    pub fn decompose(&self, y: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_dim(y)?;
        if let Some(link) = y.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteMeasurement { link });
        }
        let z = vector::sub(y, &self.mean);
        let coeffs = self.p.matvec_t(&z).expect("dim checked");
        let modeled = self.p.matvec(&coeffs).expect("dim checked");
        let residual = vector::sub(&z, &modeled);
        Ok((modeled, residual))
    }

    /// The residual (anomalous-subspace) part `ỹ = C̃(y − μ)`.
    pub fn residual(&self, y: &[f64]) -> Result<Vec<f64>> {
        Ok(self.decompose(y)?.1)
    }

    /// Project an arbitrary *direction* (not a measurement — no mean
    /// subtraction) onto the anomalous subspace: `C̃ v`.
    ///
    /// Used to compute `θ̃ᵢ = C̃θᵢ` for identification and detectability.
    pub fn residual_direction(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.check_dim(v)?;
        let coeffs = self.p.matvec_t(v).expect("dim checked");
        let modeled = self.p.matvec(&coeffs).expect("dim checked");
        Ok(vector::sub(v, &modeled))
    }

    /// The squared prediction error `SPE = ‖ỹ‖²` of a measurement.
    pub fn spe(&self, y: &[f64]) -> Result<f64> {
        Ok(vector::norm_sq(&self.residual(y)?))
    }

    /// The Q-statistic threshold `δ²_α` at the given confidence level.
    pub fn q_threshold(&self, confidence: f64) -> Result<QStatistic> {
        q_threshold(&self.eigenvalues, self.r, confidence)
    }
}

/// Result of the detection step at one timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Timestep index within the diagnosed series.
    pub time: usize,
    /// The squared prediction error `‖ỹ‖²`.
    pub spe: f64,
    /// The threshold `δ²_α` it was compared against.
    pub threshold: f64,
    /// `spe > threshold`.
    pub anomalous: bool,
}

/// The detection step: SPE vs. the Q-statistic threshold.
#[derive(Debug, Clone)]
pub struct Detector {
    model: SubspaceModel,
    q: QStatistic,
}

impl Detector {
    /// Build a detector from a fitted model at a confidence level
    /// (the paper evaluates 0.995 and 0.999).
    pub fn new(model: SubspaceModel, confidence: f64) -> Result<Self> {
        let q = model.q_threshold(confidence)?;
        Ok(Detector { model, q })
    }

    /// The underlying model.
    pub fn model(&self) -> &SubspaceModel {
        &self.model
    }

    /// The active threshold.
    pub fn threshold(&self) -> &QStatistic {
        &self.q
    }

    /// Test a single measurement vector (timestep recorded as 0).
    pub fn detect_vector(&self, y: &[f64]) -> Result<Detection> {
        let spe = self.model.spe(y)?;
        Ok(Detection {
            time: 0,
            spe,
            threshold: self.q.delta_sq,
            anomalous: spe > self.q.delta_sq,
        })
    }

    /// Test every row of a `t × m` measurement matrix.
    pub fn detect_series(&self, links: &Matrix) -> Result<Vec<Detection>> {
        if links.cols() != self.model.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.model.dim(),
                got: links.cols(),
            });
        }
        let mut out = Vec::with_capacity(links.rows());
        for t in 0..links.rows() {
            let mut d = self.detect_vector(links.row(t))?;
            d.time = t;
            out.push(d);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 300 bins, 6 links: strong sinusoid on links 0–3, noise everywhere.
    fn training_data() -> Matrix {
        Matrix::from_fn(300, 6, |i, j| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = if j < 4 { 1e4 * ((j + 1) as f64) * phase.sin() } else { 0.0 };
            let noise = (((i * 6 + j).wrapping_mul(2654435761)) % 2048) as f64 - 1024.0;
            1e5 + smooth + noise
        })
    }

    fn model() -> SubspaceModel {
        SubspaceModel::fit(
            &training_data(),
            SeparationPolicy::FixedCount(2),
            PcaMethod::Svd,
        )
        .unwrap()
    }

    #[test]
    fn decompose_reconstructs_centered_vector() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 1e5 + 100.0 * j as f64).collect();
        let (modeled, residual) = m.decompose(&y).unwrap();
        let z = vector::sub(&y, m.mean());
        let back = vector::add(&modeled, &residual);
        assert!(vector::approx_eq(&back, &z, 1e-9));
    }

    #[test]
    fn modeled_and_residual_are_orthogonal() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 9e4 + 500.0 * (j as f64).powi(2)).collect();
        let (modeled, residual) = m.decompose(&y).unwrap();
        assert!(vector::dot(&modeled, &residual).abs() < 1e-6 * vector::norm(&modeled).max(1.0));
    }

    #[test]
    fn residual_projector_is_idempotent() {
        let m = model();
        let v: Vec<f64> = (0..6).map(|j| (j as f64 + 1.0).sin()).collect();
        let once = m.residual_direction(&v).unwrap();
        let twice = m.residual_direction(&once).unwrap();
        assert!(vector::approx_eq(&once, &twice, 1e-10));
    }

    #[test]
    fn residual_kills_normal_basis_vectors() {
        let m = model();
        for k in 0..m.normal_dim() {
            let v = m.normal_basis().col(k);
            let r = m.residual_direction(&v).unwrap();
            assert!(vector::norm(&r) < 1e-9, "basis vector {k} leaks");
        }
    }

    #[test]
    fn spe_is_residual_norm_sq() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 1.1e5 - 30.0 * j as f64).collect();
        let r = m.residual(&y).unwrap();
        assert!((m.spe(&y).unwrap() - vector::norm_sq(&r)).abs() < 1e-9);
    }

    #[test]
    fn training_rows_rarely_exceed_999_threshold() {
        let y = training_data();
        let det = Detector::new(model(), 0.999).unwrap();
        let detections = det.detect_series(&y).unwrap();
        let alarms = detections.iter().filter(|d| d.anomalous).count();
        // Nominal rate 0.1% of 300 ≈ 0.3; the noise here is uniform
        // (lighter-tailed than Gaussian), so a handful at most.
        assert!(alarms <= 3, "{alarms} alarms on clean training data");
    }

    #[test]
    fn obvious_spike_is_detected() {
        let det = Detector::new(model(), 0.999).unwrap();
        // Take a typical row and slam links 4 and 5 (residual-aligned).
        let y = training_data();
        let mut v = y.row(10).to_vec();
        v[4] += 1e5;
        v[5] += 1e5;
        let d = det.detect_vector(&v).unwrap();
        assert!(d.anomalous, "spe {} vs threshold {}", d.spe, d.threshold);
    }

    #[test]
    fn perturbation_inside_normal_subspace_is_invisible() {
        let m = model();
        let y = training_data();
        let base = y.row(20).to_vec();
        let spe0 = m.spe(&base).unwrap();
        // Move along the first normal axis — SPE must not change.
        let v1 = m.normal_basis().col(0);
        let moved = vector::add(&base, &vector::scaled(&v1, 1e6));
        let spe1 = m.spe(&moved).unwrap();
        assert!(
            (spe0 - spe1).abs() < 1e-6 * spe0.max(1.0),
            "SPE moved from {spe0} to {spe1}"
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let m = model();
        assert!(matches!(
            m.spe(&[1.0, 2.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        let det = Detector::new(m, 0.999).unwrap();
        assert!(det.detect_series(&Matrix::zeros(5, 3)).is_err());
    }

    #[test]
    fn degenerate_separation_rejected() {
        let y = training_data();
        // r = m leaves no residual.
        assert!(matches!(
            SubspaceModel::fit(&y, SeparationPolicy::FixedCount(6), PcaMethod::Svd),
            Err(CoreError::DegenerateResidual { .. })
        ));
        // Constant data has no variance anywhere.
        let flat = Matrix::from_fn(50, 4, |_, _| 7.0);
        assert!(matches!(
            SubspaceModel::fit(&flat, SeparationPolicy::FixedCount(1), PcaMethod::Svd),
            Err(CoreError::DegenerateResidual { .. })
        ));
    }

    #[test]
    fn detect_series_indexes_time() {
        let det = Detector::new(model(), 0.995).unwrap();
        let y = training_data();
        let ds = det.detect_series(&y).unwrap();
        assert_eq!(ds.len(), 300);
        for (t, d) in ds.iter().enumerate() {
            assert_eq!(d.time, t);
        }
    }

    #[test]
    fn threshold_ordering_matches_confidence() {
        let m = model();
        let lo = m.q_threshold(0.995).unwrap().delta_sq;
        let hi = m.q_threshold(0.999).unwrap().delta_sq;
        assert!(hi > lo);
    }
}
