//! The fitted subspace model and the detection step.

use netanom_linalg::{kernel, vector, Matrix};

use crate::pca::{Pca, PcaMethod};
use crate::qstat::{q_threshold, QStatistic};
use crate::separation::SeparationPolicy;
use crate::{CoreError, Result};

/// A fitted subspace model: the separation `R^m = S ⊕ S̃` plus everything
/// needed to project new measurements onto the two subspaces.
///
/// The projector onto the normal subspace is `C = PPᵀ` with `P` the
/// `m × r` matrix of leading principal axes; the residual projector is
/// `C̃ = I − PPᵀ`. Projection is implemented as `ỹ = z − P(Pᵀz)` which is
/// `O(m·r)` per vector — the per-arrival cost quoted in the paper's
/// Section 7.1 deployment discussion.
#[derive(Debug, Clone)]
pub struct SubspaceModel {
    mean: Vec<f64>,
    /// Normal basis: `m × r`, orthonormal columns.
    p: Matrix,
    /// Captured spectrum (covariance scale), decreasing. Full `m`
    /// entries for dense fits; only the leading `k` computed entries for
    /// truncated refits (see [`SubspaceModel::from_truncated`]).
    eigenvalues: Vec<f64>,
    r: usize,
    /// Exact residual power sums `(φ₁, φ₂, φ₃)` over axes `r..m`,
    /// carried when the model was built without the full spectrum
    /// (truncated refits). When present, [`SubspaceModel::q_threshold`]
    /// uses them instead of summing `eigenvalues[r..]`.
    residual_moments: Option<(f64, f64, f64)>,
}

impl SubspaceModel {
    /// Fit a model to a `t × m` measurement matrix: PCA, then subspace
    /// separation under `policy`.
    ///
    /// Returns [`CoreError::DegenerateResidual`] if the policy assigns
    /// every axis to the normal subspace or the residual carries no
    /// variance (in either case there is nothing to detect with).
    pub fn fit(links: &Matrix, policy: SeparationPolicy, method: PcaMethod) -> Result<Self> {
        let pca = Pca::fit(links, method)?;
        let r = policy.normal_dim(&pca);
        Self::from_pca(&pca, r)
    }

    /// Build a model directly from a mean vector and a covariance
    /// eigendecomposition (components as columns, eigenvalues decreasing,
    /// covariance scale).
    ///
    /// This is the constructor used by incremental maintenance
    /// ([`crate::incremental::IncrementalCovariance`]), where no centered
    /// data matrix exists to run the full [`Pca`] path on.
    pub fn from_eigen(
        mean: Vec<f64>,
        components: &Matrix,
        eigenvalues: Vec<f64>,
        r: usize,
    ) -> Result<Self> {
        let m = mean.len();
        if components.shape() != (m, m) || eigenvalues.len() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: components.rows(),
            });
        }
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        let resid_var: f64 = eigenvalues[r..].iter().sum();
        let scale = eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
        if resid_var <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        let indices: Vec<usize> = (0..r).collect();
        Ok(SubspaceModel {
            mean,
            p: components.select_columns(&indices),
            eigenvalues,
            r,
            residual_moments: None,
        })
    }

    /// Build a model from a covariance eigendecomposition produced by
    /// [`SymmetricEigen::of_covariance`] — the streaming refit entry
    /// point, where the decomposition comes from incremental sufficient
    /// statistics rather than a centered data matrix.
    ///
    /// [`SymmetricEigen::of_covariance`]:
    /// netanom_linalg::decomposition::SymmetricEigen::of_covariance
    pub fn from_symmetric_eigen(
        mean: Vec<f64>,
        eig: &netanom_linalg::decomposition::SymmetricEigen,
        r: usize,
    ) -> Result<Self> {
        Self::from_eigen(mean, &eig.eigenvectors, eig.eigenvalues.clone(), r)
    }

    /// Reassemble a model from its exported parts: the mean, the `m × r`
    /// normal basis (already column-selected), the full spectrum, and
    /// `r`. Used by [`crate::method::MethodState`] import, where the full
    /// eigenvector matrix is not available.
    pub(crate) fn from_parts(
        mean: Vec<f64>,
        p: Matrix,
        eigenvalues: Vec<f64>,
        r: usize,
    ) -> Result<Self> {
        let m = mean.len();
        if p.rows() != m || p.cols() != r || eigenvalues.len() != m {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: p.rows(),
            });
        }
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        let resid_var: f64 = eigenvalues[r..].iter().sum();
        let scale = eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
        if resid_var <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        Ok(SubspaceModel {
            mean,
            p,
            eigenvalues,
            r,
            residual_moments: None,
        })
    }

    /// Build a model from an existing PCA with an explicit normal
    /// dimension `r`.
    pub fn from_pca(pca: &Pca, r: usize) -> Result<Self> {
        let m = pca.dim();
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        // Verify the residual carries variance; otherwise SPE ≡ 0.
        let resid_var: f64 = pca.eigenvalues()[r..].iter().sum();
        let scale = pca.eigenvalues().first().copied().unwrap_or(0.0).max(1.0);
        if resid_var <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        let indices: Vec<usize> = (0..r).collect();
        let p = pca.components().select_columns(&indices);
        Ok(SubspaceModel {
            mean: pca.mean().to_vec(),
            p,
            eigenvalues: pca.eigenvalues().to_vec(),
            r,
            residual_moments: None,
        })
    }

    /// Build a model from a *truncated* covariance eigendecomposition
    /// ([`TruncatedEigen`]) plus the covariance's exact power traces
    /// `(tr Σ, tr Σ², tr Σ³)` — the large-`m` refit entry point, where
    /// only the top `k` eigenpairs are ever computed.
    ///
    /// The residual moments the Q-statistic threshold needs are formed
    /// exactly as the traces minus the leading eigenvalues'
    /// contributions, so the threshold matches a full
    /// eigendecomposition's to roundoff — truncation changes the refit
    /// *cost*, not its detection semantics. Requires `r ≤ k < m`; the
    /// stored spectrum is the `k` computed entries
    /// (see [`SubspaceModel::eigenvalues`]).
    ///
    /// [`TruncatedEigen`]: netanom_linalg::decomposition::TruncatedEigen
    pub fn from_truncated(
        mean: Vec<f64>,
        eig: &netanom_linalg::decomposition::TruncatedEigen,
        r: usize,
        traces: (f64, f64, f64),
    ) -> Result<Self> {
        let m = mean.len();
        let k = eig.len();
        if eig.eigenvectors.shape() != (m, k) {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: eig.eigenvectors.rows(),
            });
        }
        if r > k {
            return Err(CoreError::DimensionMismatch {
                expected: r,
                got: k,
            });
        }
        let (t1, t2, t3) = traces;
        let head = &eig.eigenvalues[..r];
        // Clamp against cancellation: the head sums approach the traces
        // when the residual variance is (numerically) zero.
        let phi1 = (t1 - head.iter().sum::<f64>()).max(0.0);
        let phi2 = (t2 - head.iter().map(|l| l * l).sum::<f64>()).max(0.0);
        let phi3 = (t3 - head.iter().map(|l| l * l * l).sum::<f64>()).max(0.0);
        let indices: Vec<usize> = (0..r).collect();
        Self::finish_truncated(
            mean,
            eig.eigenvectors.select_columns(&indices),
            eig.eigenvalues.clone(),
            r,
            (phi1, phi2, phi3),
        )
    }

    /// Reassemble a truncated-refit model from its exported parts (the
    /// [`crate::method::MethodState`] import path): mean, `m × r` basis,
    /// the `k ≥ r` computed eigenvalues, and the already-derived
    /// residual moments `(φ₁, φ₂, φ₃)`.
    pub(crate) fn from_parts_truncated(
        mean: Vec<f64>,
        p: Matrix,
        eigenvalues: Vec<f64>,
        r: usize,
        moments: (f64, f64, f64),
    ) -> Result<Self> {
        let m = mean.len();
        if p.rows() != m || p.cols() != r || eigenvalues.len() < r {
            return Err(CoreError::DimensionMismatch {
                expected: m,
                got: p.rows(),
            });
        }
        Self::finish_truncated(mean, p, eigenvalues, r, moments)
    }

    /// Shared tail of the truncated constructors: validate the residual
    /// moments and degeneracy the same way the dense constructors do.
    fn finish_truncated(
        mean: Vec<f64>,
        p: Matrix,
        eigenvalues: Vec<f64>,
        r: usize,
        (phi1, phi2, phi3): (f64, f64, f64),
    ) -> Result<Self> {
        let m = mean.len();
        if r >= m {
            return Err(CoreError::DegenerateResidual { r });
        }
        let scale = eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
        if !(phi1.is_finite() && phi2.is_finite() && phi3.is_finite()) || phi1 <= scale * 1e-15 {
            return Err(CoreError::DegenerateResidual { r });
        }
        Ok(SubspaceModel {
            mean,
            p,
            eigenvalues,
            r,
            residual_moments: Some((phi1, phi2, phi3)),
        })
    }

    /// The exact residual power sums `(φ₁, φ₂, φ₃)` carried by a
    /// truncated-refit model, or `None` for models holding the full
    /// spectrum (where the moments are recomputed from it on demand).
    pub fn residual_moments(&self) -> Option<(f64, f64, f64)> {
        self.residual_moments
    }

    /// Number of links `m`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Dimension `r` of the normal subspace.
    pub fn normal_dim(&self) -> usize {
        self.r
    }

    /// The per-link training means subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The `m × r` normal basis `P`.
    pub fn normal_basis(&self) -> &Matrix {
        &self.p
    }

    /// The captured eigenvalue spectrum (covariance scale), decreasing:
    /// all `m` values for dense fits, the leading `k` computed values
    /// for truncated refits ([`SubspaceModel::from_truncated`]).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    fn check_dim(&self, y: &[f64]) -> Result<()> {
        if y.len() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: y.len(),
            });
        }
        Ok(())
    }

    /// Split a measurement into modeled and residual parts:
    /// `y − μ = ŷ + ỹ` with `ŷ ∈ S`, `ỹ ∈ S̃`.
    ///
    /// Rejects non-finite measurements (a NaN would otherwise poison the
    /// SPE and silently disable detection — `NaN > δ²` is `false`).
    pub fn decompose(&self, y: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_dim(y)?;
        if let Some(link) = y.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteMeasurement { link });
        }
        let z = vector::sub(y, &self.mean);
        let coeffs = self.p.matvec_t(&z).expect("dim checked");
        let modeled = self.p.matvec(&coeffs).expect("dim checked");
        let residual = vector::sub(&z, &modeled);
        Ok((modeled, residual))
    }

    /// The residual (anomalous-subspace) part `ỹ = C̃(y − μ)`.
    pub fn residual(&self, y: &[f64]) -> Result<Vec<f64>> {
        Ok(self.decompose(y)?.1)
    }

    /// Project an arbitrary *direction* (not a measurement — no mean
    /// subtraction) onto the anomalous subspace: `C̃ v`.
    ///
    /// Used to compute `θ̃ᵢ = C̃θᵢ` for identification and detectability.
    pub fn residual_direction(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.check_dim(v)?;
        let coeffs = self.p.matvec_t(v).expect("dim checked");
        let modeled = self.p.matvec(&coeffs).expect("dim checked");
        Ok(vector::sub(v, &modeled))
    }

    /// The squared prediction error `SPE = ‖ỹ‖²` of a measurement.
    pub fn spe(&self, y: &[f64]) -> Result<f64> {
        Ok(vector::norm_sq(&self.residual(y)?))
    }

    /// Validate a `t × m` measurement matrix the way the per-vector path
    /// does: matching dimension, all entries finite (first offending
    /// link reported).
    fn validate_matrix(&self, links: &Matrix) -> Result<()> {
        if links.cols() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: links.cols(),
            });
        }
        for t in 0..links.rows() {
            if let Some(link) = links.row(t).iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteMeasurement { link });
            }
        }
        Ok(())
    }

    /// Center every row of a validated `t × m` measurement matrix.
    fn center_matrix(&self, links: &Matrix) -> Result<Matrix> {
        self.validate_matrix(links)?;
        let mut data = Vec::with_capacity(links.rows() * links.cols());
        for t in 0..links.rows() {
            data.extend(links.row(t).iter().zip(&self.mean).map(|(y, mu)| y - mu));
        }
        Ok(Matrix::from_vec(links.rows(), links.cols(), data).expect("sized to shape"))
    }

    /// Batched [`SubspaceModel::decompose`]: split every row of a `t × m`
    /// measurement matrix into modeled and residual parts in two GEMMs.
    ///
    /// Row `t` of the results is bitwise identical to
    /// `self.decompose(links.row(t))` — the batch kernels preserve the
    /// per-row operation order (see `netanom_linalg::parallel`) — while
    /// running an order of magnitude faster on week-scale matrices: one
    /// pass of cache-friendly, thread-parallel matrix products instead of
    /// `t` matvec pairs with four heap allocations each.
    pub fn decompose_matrix(&self, links: &Matrix) -> Result<(Matrix, Matrix)> {
        let z = self.center_matrix(links)?;
        Ok(z.project_rows_split(&self.p).expect("dims checked"))
    }

    /// The residual (anomalous-subspace) part of every row:
    /// `Ỹ = C̃(Y − 1μᵀ)`. Batched form of [`SubspaceModel::residual`].
    pub fn residual_matrix(&self, links: &Matrix) -> Result<Matrix> {
        Ok(self.decompose_matrix(links)?.1)
    }

    /// The SPE `‖ỹ‖²` of every row. Batched form of
    /// [`SubspaceModel::spe`].
    ///
    /// Runs the fused single-pass kernel
    /// (`Matrix::centered_residual_norms_sq`): centering, projection and
    /// the norm reduction never materialize per-row vectors, which makes
    /// this several times faster than the per-vector loop even on one
    /// core, and row-parallel beyond that. The kernel keeps the exact
    /// per-vector operation order, so every SPE is bitwise identical to
    /// [`SubspaceModel::spe`] — well inside the documented `1e-12`
    /// relative contract of this batch API.
    pub fn spe_all(&self, links: &Matrix) -> Result<Vec<f64>> {
        if links.cols() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: links.cols(),
            });
        }
        let spes = links
            .centered_residual_norms_sq(&self.mean, &self.p)
            .expect("dims checked");
        // A non-finite measurement always poisons its SPE, so the happy
        // path needs no validation scan; only when some SPE is
        // non-finite do we look for the offending input (a non-finite
        // SPE can also arise legitimately, from overflow of finite
        // inputs — the per-vector path accepts that, so we do too).
        if spes.iter().any(|s| !s.is_finite()) {
            self.validate_matrix(links)?;
        }
        Ok(spes)
    }

    /// Project every *column* of `dirs` (`m × k`) onto the anomalous
    /// subspace: `C̃ · dirs`. Batched form of
    /// [`SubspaceModel::residual_direction`] (no mean subtraction);
    /// column `i` is bitwise identical to the per-vector result.
    ///
    /// Used to compute all `θ̃ᵢ = C̃θᵢ` at once when building an
    /// identifier or a multi-flow hypothesis. An identification kernel,
    /// so — like the batched SPE and decompose paths — its products are
    /// pinned to the portable kernel backend: per-vector equivalence is
    /// plain mul-then-add arithmetic and must not depend on which
    /// backend the process dispatches for model fitting.
    pub fn residual_directions(&self, dirs: &Matrix) -> Result<Matrix> {
        if dirs.rows() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: dirs.rows(),
            });
        }
        // coeffs = Pᵀ·dirs accumulates over the link axis in the same
        // order as the per-vector matvec_t; modeled = P·coeffs likewise.
        let coeffs = kernel::matmul_tn_with(kernel::KernelBackend::Portable, &self.p, dirs)
            .expect("dims checked");
        let modeled = kernel::matmul_with(kernel::KernelBackend::Portable, &self.p, &coeffs)
            .expect("dims checked");
        dirs.sub(&modeled)
            .map_err(|_| CoreError::DimensionMismatch {
                expected: self.dim(),
                got: dirs.rows(),
            })
    }

    /// The Q-statistic threshold `δ²_α` at the given confidence level.
    ///
    /// Models built by a truncated refit carry their residual moments
    /// exactly ([`SubspaceModel::residual_moments`]) and evaluate the
    /// threshold from them; dense models sum the stored residual
    /// spectrum. Both routes compute the same Jackson–Mudholkar formula.
    pub fn q_threshold(&self, confidence: f64) -> Result<QStatistic> {
        match self.residual_moments {
            Some((phi1, phi2, phi3)) => {
                let scale = self.eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
                crate::qstat::q_threshold_from_moments(phi1, phi2, phi3, scale, confidence)
            }
            None => q_threshold(&self.eigenvalues, self.r, confidence),
        }
    }
}

/// Result of the detection step at one timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Timestep index within the diagnosed series.
    pub time: usize,
    /// The squared prediction error `‖ỹ‖²`.
    pub spe: f64,
    /// The threshold `δ²_α` it was compared against.
    pub threshold: f64,
    /// `spe > threshold`.
    pub anomalous: bool,
}

/// The detection step: SPE vs. the Q-statistic threshold.
#[derive(Debug, Clone)]
pub struct Detector {
    model: SubspaceModel,
    q: QStatistic,
}

impl Detector {
    /// Build a detector from a fitted model at a confidence level
    /// (the paper evaluates 0.995 and 0.999).
    pub fn new(model: SubspaceModel, confidence: f64) -> Result<Self> {
        let q = model.q_threshold(confidence)?;
        Ok(Detector { model, q })
    }

    /// The underlying model.
    pub fn model(&self) -> &SubspaceModel {
        &self.model
    }

    /// The active threshold.
    pub fn threshold(&self) -> &QStatistic {
        &self.q
    }

    /// Test a single measurement vector (timestep recorded as 0).
    pub fn detect_vector(&self, y: &[f64]) -> Result<Detection> {
        let spe = self.model.spe(y)?;
        Ok(Detection {
            time: 0,
            spe,
            threshold: self.q.delta_sq,
            anomalous: spe > self.q.delta_sq,
        })
    }

    /// Test every row of a `t × m` measurement matrix with one fused
    /// batch pass ([`SubspaceModel::spe_all`]) instead of a per-vector
    /// loop — several times faster on one core, row-parallel beyond.
    ///
    /// SPEs agree with [`Detector::detect_vector`] to within `1e-12`
    /// relative; a detection decision can therefore differ from the
    /// per-vector path only if an SPE sits within that sliver of the
    /// threshold, which the parity suite shows does not happen on any
    /// canned dataset.
    pub fn detect_matrix(&self, links: &Matrix) -> Result<Vec<Detection>> {
        let spes = self.model.spe_all(links)?;
        Ok(spes
            .into_iter()
            .enumerate()
            .map(|(time, spe)| Detection {
                time,
                spe,
                threshold: self.q.delta_sq,
                anomalous: spe > self.q.delta_sq,
            })
            .collect())
    }

    /// Alias of [`Detector::detect_matrix`], kept for call sites that
    /// read better with series vocabulary.
    pub fn detect_series(&self, links: &Matrix) -> Result<Vec<Detection>> {
        self.detect_matrix(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 300 bins, 6 links: strong sinusoid on links 0–3, noise everywhere.
    fn training_data() -> Matrix {
        Matrix::from_fn(300, 6, |i, j| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = if j < 4 {
                1e4 * ((j + 1) as f64) * phase.sin()
            } else {
                0.0
            };
            let noise = (((i * 6 + j).wrapping_mul(2654435761)) % 2048) as f64 - 1024.0;
            1e5 + smooth + noise
        })
    }

    fn model() -> SubspaceModel {
        SubspaceModel::fit(
            &training_data(),
            SeparationPolicy::FixedCount(2),
            PcaMethod::Svd,
        )
        .unwrap()
    }

    #[test]
    fn decompose_reconstructs_centered_vector() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 1e5 + 100.0 * j as f64).collect();
        let (modeled, residual) = m.decompose(&y).unwrap();
        let z = vector::sub(&y, m.mean());
        let back = vector::add(&modeled, &residual);
        assert!(vector::approx_eq(&back, &z, 1e-9));
    }

    #[test]
    fn modeled_and_residual_are_orthogonal() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 9e4 + 500.0 * (j as f64).powi(2)).collect();
        let (modeled, residual) = m.decompose(&y).unwrap();
        assert!(vector::dot(&modeled, &residual).abs() < 1e-6 * vector::norm(&modeled).max(1.0));
    }

    #[test]
    fn residual_projector_is_idempotent() {
        let m = model();
        let v: Vec<f64> = (0..6).map(|j| (j as f64 + 1.0).sin()).collect();
        let once = m.residual_direction(&v).unwrap();
        let twice = m.residual_direction(&once).unwrap();
        assert!(vector::approx_eq(&once, &twice, 1e-10));
    }

    #[test]
    fn residual_kills_normal_basis_vectors() {
        let m = model();
        for k in 0..m.normal_dim() {
            let v = m.normal_basis().col(k);
            let r = m.residual_direction(&v).unwrap();
            assert!(vector::norm(&r) < 1e-9, "basis vector {k} leaks");
        }
    }

    #[test]
    fn spe_is_residual_norm_sq() {
        let m = model();
        let y: Vec<f64> = (0..6).map(|j| 1.1e5 - 30.0 * j as f64).collect();
        let r = m.residual(&y).unwrap();
        assert!((m.spe(&y).unwrap() - vector::norm_sq(&r)).abs() < 1e-9);
    }

    #[test]
    fn training_rows_rarely_exceed_999_threshold() {
        let y = training_data();
        let det = Detector::new(model(), 0.999).unwrap();
        let detections = det.detect_series(&y).unwrap();
        let alarms = detections.iter().filter(|d| d.anomalous).count();
        // Nominal rate 0.1% of 300 ≈ 0.3; the noise here is uniform
        // (lighter-tailed than Gaussian), so a handful at most.
        assert!(alarms <= 3, "{alarms} alarms on clean training data");
    }

    #[test]
    fn obvious_spike_is_detected() {
        let det = Detector::new(model(), 0.999).unwrap();
        // Take a typical row and slam links 4 and 5 (residual-aligned).
        let y = training_data();
        let mut v = y.row(10).to_vec();
        v[4] += 1e5;
        v[5] += 1e5;
        let d = det.detect_vector(&v).unwrap();
        assert!(d.anomalous, "spe {} vs threshold {}", d.spe, d.threshold);
    }

    #[test]
    fn perturbation_inside_normal_subspace_is_invisible() {
        let m = model();
        let y = training_data();
        let base = y.row(20).to_vec();
        let spe0 = m.spe(&base).unwrap();
        // Move along the first normal axis — SPE must not change.
        let v1 = m.normal_basis().col(0);
        let moved = vector::add(&base, &vector::scaled(&v1, 1e6));
        let spe1 = m.spe(&moved).unwrap();
        assert!(
            (spe0 - spe1).abs() < 1e-6 * spe0.max(1.0),
            "SPE moved from {spe0} to {spe1}"
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let m = model();
        assert!(matches!(
            m.spe(&[1.0, 2.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        let det = Detector::new(m, 0.999).unwrap();
        assert!(det.detect_series(&Matrix::zeros(5, 3)).is_err());
    }

    #[test]
    fn degenerate_separation_rejected() {
        let y = training_data();
        // r = m leaves no residual.
        assert!(matches!(
            SubspaceModel::fit(&y, SeparationPolicy::FixedCount(6), PcaMethod::Svd),
            Err(CoreError::DegenerateResidual { .. })
        ));
        // Constant data has no variance anywhere.
        let flat = Matrix::from_fn(50, 4, |_, _| 7.0);
        assert!(matches!(
            SubspaceModel::fit(&flat, SeparationPolicy::FixedCount(1), PcaMethod::Svd),
            Err(CoreError::DegenerateResidual { .. })
        ));
    }

    #[test]
    fn detect_series_indexes_time() {
        let det = Detector::new(model(), 0.995).unwrap();
        let y = training_data();
        let ds = det.detect_series(&y).unwrap();
        assert_eq!(ds.len(), 300);
        for (t, d) in ds.iter().enumerate() {
            assert_eq!(d.time, t);
        }
    }

    #[test]
    fn batch_decompose_matches_per_vector_exactly() {
        let m = model();
        let y = training_data();
        let (modeled, residual) = m.decompose_matrix(&y).unwrap();
        assert_eq!(modeled.shape(), y.shape());
        for t in 0..y.rows() {
            let (mv, rv) = m.decompose(y.row(t)).unwrap();
            assert_eq!(modeled.row(t), &mv[..], "modeled row {t}");
            assert_eq!(residual.row(t), &rv[..], "residual row {t}");
        }
    }

    #[test]
    fn spe_all_matches_per_vector_within_contract() {
        let m = model();
        let y = training_data();
        let spes = m.spe_all(&y).unwrap();
        for t in 0..y.rows() {
            let exact = m.spe(y.row(t)).unwrap();
            assert!(
                (spes[t] - exact).abs() <= 1e-12 * exact.max(1.0),
                "spe at {t}: batch {} vs exact {exact}",
                spes[t]
            );
        }
        // And the exact route (residual matrix row norms) is bitwise.
        let exact_batch = m.residual_matrix(&y).unwrap().row_norms_sq();
        for t in 0..y.rows() {
            assert_eq!(exact_batch[t], m.spe(y.row(t)).unwrap(), "exact spe at {t}");
        }
    }

    #[test]
    fn residual_directions_match_per_vector_exactly() {
        let m = model();
        let dirs = Matrix::from_fn(6, 5, |i, j| ((i * 5 + j) as f64 * 0.37).sin());
        let batch = m.residual_directions(&dirs).unwrap();
        for c in 0..dirs.cols() {
            let single = m.residual_direction(&dirs.col(c)).unwrap();
            assert_eq!(batch.col(c), single, "column {c}");
        }
        assert!(m.residual_directions(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn detect_matrix_matches_detect_vector() {
        let det = Detector::new(model(), 0.999).unwrap();
        let y = training_data();
        let batch = det.detect_matrix(&y).unwrap();
        assert_eq!(batch.len(), y.rows());
        for (t, d) in batch.iter().enumerate() {
            let single = det.detect_vector(y.row(t)).unwrap();
            assert_eq!(d.time, t);
            assert!(
                (d.spe - single.spe).abs() <= 1e-12 * single.spe.max(1.0),
                "spe at {t}"
            );
            assert_eq!(d.anomalous, single.anomalous, "detection at {t}");
            assert_eq!(d.threshold, single.threshold);
        }
    }

    #[test]
    fn batch_rejects_non_finite_rows_like_per_vector() {
        let m = model();
        let mut y = training_data();
        y[(42, 3)] = f64::NAN;
        assert!(matches!(
            m.spe_all(&y),
            Err(CoreError::NonFiniteMeasurement { link: 3 })
        ));
        assert!(matches!(
            m.decompose_matrix(&Matrix::zeros(5, 3)),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn threshold_ordering_matches_confidence() {
        let m = model();
        let lo = m.q_threshold(0.995).unwrap().delta_sq;
        let hi = m.q_threshold(0.999).unwrap().delta_sq;
        assert!(hi > lo);
    }
}
