//! Multi-timescale subspace analysis (paper Section 7.3).
//!
//! "It is possible to use the subspace method across multiple time scales
//! by applying PCA to the wavelet transform of measured data. In
//! principle, such a method can allow the detection of anomalies at all
//! timescales."
//!
//! This module implements that extension with a Haar block pyramid: level
//! `l` of the pyramid averages the link measurements over blocks of `2^l`
//! bins and runs the full diagnosis pipeline on the averaged matrix.
//! Averaging commutes with routing (`mean(Ax) = A·mean(x)`), so
//! identification and quantification work unchanged at every level.
//!
//! The payoff is sensitivity to *sustained* low-amplitude anomalies: a
//! shift of `a` bytes per bin lasting `2^l` bins contributes its full
//! amplitude to one level-`l` block while the white measurement noise
//! shrinks by `√2^l` — an SNR gain of `2^{l/2}` over single-bin
//! detection, at the price of coarser localization (`2^l` bins).

use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

use crate::diagnose::{Diagnoser, DiagnoserConfig, DiagnosisReport};
use crate::{CoreError, Result};

/// A detection at one pyramid level, mapped back to bin coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiscaleReport {
    /// Pyramid level (0 = raw bins, `l` = blocks of `2^l` bins).
    pub level: usize,
    /// Block index at that level.
    pub block: usize,
    /// Half-open range of raw bins the block covers.
    pub bin_range: (usize, usize),
    /// The per-level diagnosis (times are block indices; the estimated
    /// bytes are *per averaged bin* — multiply by the block length for a
    /// total-volume reading of a sustained anomaly).
    pub report: DiagnosisReport,
}

/// Diagnosers fitted at every pyramid level.
#[derive(Debug, Clone)]
pub struct MultiscaleDiagnoser {
    levels: Vec<Diagnoser>,
}

/// Average a `t × m` matrix over blocks of `2^level` rows, dropping any
/// partial tail block.
fn block_average(links: &Matrix, level: usize) -> Matrix {
    let span = 1usize << level;
    let blocks = links.rows() / span;
    Matrix::from_fn(blocks, links.cols(), |b, j| {
        let mut acc = 0.0;
        for k in 0..span {
            acc += links[(b * span + k, j)];
        }
        acc / span as f64
    })
}

impl MultiscaleDiagnoser {
    /// Fit one diagnoser per level `0..=max_level` on the training
    /// matrix.
    ///
    /// Each level needs enough blocks to fit a model (`blocks ≥ m`);
    /// levels that run out of data are rejected with
    /// [`CoreError::TooFewSamples`] — a week of 10-minute bins supports
    /// `max_level = 4` (63 blocks of ~2.7 h) on the paper's networks.
    pub fn fit(
        links: &Matrix,
        rm: &RoutingMatrix,
        config: DiagnoserConfig,
        max_level: usize,
    ) -> Result<Self> {
        let mut levels = Vec::with_capacity(max_level + 1);
        for level in 0..=max_level {
            let averaged = block_average(links, level);
            levels.push(Diagnoser::fit(&averaged, rm, config)?);
        }
        Ok(MultiscaleDiagnoser { levels })
    }

    /// Number of fitted levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The per-level diagnoser (level 0 = raw bins).
    ///
    /// # Panics
    /// Panics if `level ≥ num_levels()`.
    pub fn level(&self, level: usize) -> &Diagnoser {
        &self.levels[level]
    }

    /// Diagnose a measurement series at every level, returning only the
    /// blocks whose detection fired, finest levels first.
    pub fn diagnose_series(&self, links: &Matrix) -> Result<Vec<MultiscaleReport>> {
        let mut out = Vec::new();
        for (level, diagnoser) in self.levels.iter().enumerate() {
            let averaged = block_average(links, level);
            for report in diagnoser.diagnose_series(&averaged)? {
                if !report.detected {
                    continue;
                }
                let span = 1usize << level;
                out.push(MultiscaleReport {
                    level,
                    block: report.time,
                    bin_range: (report.time * span, (report.time + 1) * span),
                    report,
                });
            }
        }
        Ok(out)
    }

    /// Detections at a given level only.
    pub fn diagnose_level(&self, links: &Matrix, level: usize) -> Result<Vec<DiagnosisReport>> {
        if level >= self.levels.len() {
            return Err(CoreError::NoCandidates);
        }
        let averaged = block_average(links, level);
        self.levels[level].diagnose_series(&averaged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separation::SeparationPolicy;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize, bins: usize) -> Matrix {
        Matrix::from_fn(bins, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l).wrapping_mul(2654435761)) % 16384) as f64 - 8192.0;
            2e6 + smooth + noise
        })
    }

    fn config() -> DiagnoserConfig {
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            ..DiagnoserConfig::default()
        }
    }

    #[test]
    fn block_average_halves_rows_and_preserves_means() {
        let y = training(4, 64);
        let a1 = block_average(&y, 1);
        assert_eq!(a1.shape(), (32, 4));
        assert!((a1[(0, 2)] - 0.5 * (y[(0, 2)] + y[(1, 2)])).abs() < 1e-9);
        // Level 0 is the identity.
        assert!(block_average(&y, 0).approx_eq(&y, 0.0));
        // Partial tail dropped.
        let odd = training(3, 65);
        assert_eq!(block_average(&odd, 1).rows(), 32);
    }

    #[test]
    fn fits_all_levels_on_enough_data() {
        let net = builtin::line(3);
        let y = training(net.routing_matrix.num_links(), 1008);
        let ms = MultiscaleDiagnoser::fit(&y, &net.routing_matrix, config(), 4).unwrap();
        assert_eq!(ms.num_levels(), 5);
    }

    #[test]
    fn too_deep_pyramid_rejected() {
        let net = builtin::line(3);
        let y = training(net.routing_matrix.num_links(), 64);
        // Level 4 would leave 4 blocks for a 7-link model.
        assert!(matches!(
            MultiscaleDiagnoser::fit(&y, &net.routing_matrix, config(), 4),
            Err(CoreError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn single_bin_spike_caught_at_level_zero() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let mut y = training(rm.num_links(), 512);
        let mut row = y.row(200).to_vec();
        vector::axpy(5e6, &rm.column(4), &mut row);
        y.set_row(200, &row);

        let ms = MultiscaleDiagnoser::fit(&training(rm.num_links(), 512), rm, config(), 3).unwrap();
        let hits = ms.diagnose_series(&y).unwrap();
        let l0_hit = hits
            .iter()
            .find(|h| h.level == 0 && h.bin_range.0 == 200)
            .expect("level-0 detection at the spike bin");
        assert_eq!(l0_hit.report.identification.unwrap().flow, 4);
    }

    #[test]
    fn sustained_low_anomaly_needs_the_coarse_level() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let clean = training(rm.num_links(), 512);
        let ms = MultiscaleDiagnoser::fit(&clean, rm, config(), 3).unwrap();

        // Calibrate the shift: clearly below the level-0 threshold, but
        // 8 sustained bins give the level-3 block the full amplitude
        // while its noise floor is ~8x smaller (σ/√8 each for variance
        // ÷8).
        let delta0 = ms.level(0).detector().threshold().delta_sq;
        let delta3 = ms.level(3).detector().threshold().delta_sq;
        assert!(delta3 < delta0 / 4.0, "coarse threshold should shrink");
        // Anomaly SPE at level 0 ≈ a²·‖C̃A‖²; pick a so that it is ~25%
        // of δ0 but ≥ 4×δ3.
        let a = (0.25 * delta0 / 2.0).sqrt();

        let mut y = clean.clone();
        for t in 240..248 {
            let mut row = y.row(t).to_vec();
            vector::axpy(a, &rm.column(4), &mut row);
            y.set_row(t, &row);
        }

        let hits = ms.diagnose_series(&y).unwrap();
        let fine_hit = hits.iter().any(|h| h.level == 0);
        let coarse_hit = hits
            .iter()
            .any(|h| h.level == 3 && h.bin_range == (240, 248));
        assert!(!fine_hit, "shift should be invisible at single bins");
        assert!(
            coarse_hit,
            "sustained shift must surface at level 3: {hits:?}"
        );
    }

    #[test]
    fn coarse_identification_names_the_right_flow() {
        let net = builtin::line(3);
        let rm = &net.routing_matrix;
        let clean = training(rm.num_links(), 512);
        let ms = MultiscaleDiagnoser::fit(&clean, rm, config(), 3).unwrap();
        let mut y = clean.clone();
        for t in 320..328 {
            let mut row = y.row(t).to_vec();
            vector::axpy(2e6, &rm.column(7), &mut row);
            y.set_row(t, &row);
        }
        let hits = ms.diagnose_series(&y).unwrap();
        let hit = hits
            .iter()
            .find(|h| h.level == 3 && h.bin_range == (320, 328))
            .expect("sustained anomaly detected at level 3");
        assert_eq!(hit.report.identification.unwrap().flow, 7);
        // Per-bin estimate ≈ the sustained rate.
        let est = hit.report.estimated_bytes.unwrap();
        assert!((est / 2e6 - 1.0).abs() < 0.3, "estimate {est}");
    }

    #[test]
    fn diagnose_level_bounds_checked() {
        let net = builtin::line(3);
        let y = training(net.routing_matrix.num_links(), 256);
        let ms = MultiscaleDiagnoser::fit(&y, &net.routing_matrix, config(), 2).unwrap();
        assert!(ms.diagnose_level(&y, 2).is_ok());
        assert!(ms.diagnose_level(&y, 3).is_err());
    }
}
