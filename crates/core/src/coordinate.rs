//! Transport-agnostic coordination: the merge/finalize logic every
//! sharded driver shares, whether the shards live on threads
//! ([`ShardedEngine`](crate::ShardedEngine)) or on TCP workers
//! (`netanom-net`'s tracker).
//!
//! [`ShardableBackend`] already splits a block
//! into per-shard phase A (raw slice → partial) and phase B (merged
//! partial → scores + residual slices). What remains coordinator-side is
//! *pure placement*: sum the per-shard score partials in shard order,
//! assemble the fired bins' residual rows from the shard slices, and
//! hand each bin to the backend's `finalize`. [`Coordinator`] extracts
//! exactly that loop so the in-process engine and the TCP tracker run
//! the same code — bitwise identity between them is by construction,
//! not by test alone.

use crate::diagnose::DiagnosisReport;
use crate::method::{DetectionBackend, ShardScores, ShardableBackend};
use crate::Result;

/// A driver that owns a [`ShardableBackend`] and a link partition, and
/// finalizes per-shard phase-B outputs into diagnosis reports.
///
/// The provided [`finalize_block`](Coordinator::finalize_block) is the
/// single implementation of the coordinator's scoring loop; implementors
/// only say where the backend and the partition live. Reports come back
/// with `time == 0` — the driver stamps arrival indices.
pub trait Coordinator {
    /// The detection backend whose shards this coordinator drives.
    type Backend: ShardableBackend;

    /// The backend (read-only: finalize never mutates model state).
    fn backend(&self) -> &Self::Backend;

    /// The link partition, one strictly-ascending column set per shard,
    /// in shard order — the same order phase-B outputs are passed in.
    fn shard_links(&self) -> &[Vec<usize>];

    /// Sum score partials in shard order, detect, and finalize the
    /// fired bins on the assembled residual.
    ///
    /// `outs[s]` is shard `s`'s phase-B output for the same `bins`-row
    /// block; summation and residual placement both walk shards in
    /// partition order, so results are independent of where (or in what
    /// thread/socket order) the shards computed.
    fn finalize_block(&self, bins: usize, outs: &[ShardScores]) -> Result<Vec<DiagnosisReport>> {
        let backend = self.backend();
        let links = self.shard_links();
        let threshold = backend.threshold();
        let wants_residual = backend.wants_residual();
        let m = backend.dim();
        let mut reports = Vec::with_capacity(bins);
        for t in 0..bins {
            let score: f64 = outs.iter().map(|o| o.scores[t]).sum();
            let assembled: Vec<f64>;
            let residual = if wants_residual && score > threshold {
                let mut buf = vec![0.0; m];
                for (links, out) in links.iter().zip(outs) {
                    let slice = out
                        .residual
                        .as_ref()
                        .expect("wants_residual backends return residual slices");
                    let row = slice.row(t);
                    for (k, &l) in links.iter().enumerate() {
                        buf[l] = row[k];
                    }
                }
                assembled = buf;
                Some(&assembled[..])
            } else {
                None
            };
            reports.push(backend.finalize(score, residual)?);
        }
        Ok(reports)
    }
}
