//! The full three-step diagnosis pipeline.

use netanom_linalg::Matrix;
use netanom_topology::RoutingMatrix;

use crate::identify::{Identification, Identifier};
use crate::pca::PcaMethod;
use crate::separation::SeparationPolicy;
use crate::subspace::{Detector, SubspaceModel};
use crate::Result;

/// Configuration for [`Diagnoser::fit`].
#[derive(Debug, Clone, Copy)]
pub struct DiagnoserConfig {
    /// Detection confidence level `1 − α` (paper: 0.999 for the headline
    /// results, 0.995 shown in Figure 5).
    pub confidence: f64,
    /// Normal/anomalous axis separation policy.
    pub separation: SeparationPolicy,
    /// PCA computation route.
    pub pca_method: PcaMethod,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            confidence: 0.999,
            separation: SeparationPolicy::default(),
            pca_method: PcaMethod::default(),
        }
    }
}

/// The outcome of diagnosing one timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnosisReport {
    /// Timestep index within the diagnosed series.
    pub time: usize,
    /// Squared prediction error at this timestep.
    pub spe: f64,
    /// Detection threshold `δ²_α` in force.
    pub threshold: f64,
    /// Whether the detection step fired.
    pub detected: bool,
    /// Identification (and implicitly quantification input), present only
    /// when `detected` — the paper does "not attempt identification on
    /// anomalies that were not detected".
    pub identification: Option<Identification>,
    /// Estimated anomalous bytes in the identified flow (`Āᵢᵀ y′`),
    /// present only when `detected`. Negative for traffic drops.
    pub estimated_bytes: Option<f64>,
}

/// The three-step diagnoser: detection → identification → quantification.
#[derive(Debug, Clone)]
pub struct Diagnoser {
    detector: Detector,
    identifier: Identifier,
    /// `Āᵢᵀθᵢ` per flow: the factor converting `f̂` to bytes.
    quant_factor: Vec<f64>,
}

impl Diagnoser {
    /// Fit the subspace model on a `t × m` training matrix and prepare all
    /// three steps against the given routing matrix.
    pub fn fit(links: &Matrix, rm: &RoutingMatrix, config: DiagnoserConfig) -> Result<Self> {
        let model = SubspaceModel::fit(links, config.separation, config.pca_method)?;
        Self::from_model(model, rm, config.confidence)
    }

    /// Assemble a diagnoser from an already-fitted model.
    pub fn from_model(model: SubspaceModel, rm: &RoutingMatrix, confidence: f64) -> Result<Self> {
        let identifier = Identifier::new(&model, rm)?;
        let detector = Detector::new(model, confidence)?;
        let quant_factor = (0..rm.num_flows())
            .map(|i| netanom_linalg::vector::dot(&rm.abar(i), &rm.theta(i)))
            .collect();
        Ok(Diagnoser {
            detector,
            identifier,
            quant_factor,
        })
    }

    /// Swap in a freshly refitted model, rebuilding the detector and
    /// identifier against it while reusing the quantification factors
    /// `Āᵢᵀθᵢ`, which depend only on the routing matrix.
    ///
    /// This is the streaming refit entry point: a periodic model refresh
    /// pays for the identifier's batched `θ̃ᵢ = C̃θᵢ` projection and one
    /// threshold evaluation, nothing else. `rm` must be the routing
    /// matrix the diagnoser was built with (checked by flow count).
    pub fn refit_model(
        &mut self,
        model: SubspaceModel,
        rm: &RoutingMatrix,
        confidence: f64,
    ) -> Result<()> {
        if rm.num_flows() != self.quant_factor.len() {
            return Err(crate::CoreError::DimensionMismatch {
                expected: self.quant_factor.len(),
                got: rm.num_flows(),
            });
        }
        let identifier = Identifier::new(&model, rm)?;
        let detector = Detector::new(model, confidence)?;
        self.identifier = identifier;
        self.detector = detector;
        Ok(())
    }

    /// The fitted subspace model.
    pub fn model(&self) -> &SubspaceModel {
        self.detector.model()
    }

    /// The detection component.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The identification component.
    pub fn identifier(&self) -> &Identifier {
        &self.identifier
    }

    /// Diagnose a single measurement vector.
    pub fn diagnose_vector(&self, y: &[f64]) -> Result<DiagnosisReport> {
        let detection = self.detector.detect_vector(y)?;
        if !detection.anomalous {
            return Ok(DiagnosisReport {
                time: 0,
                spe: detection.spe,
                threshold: detection.threshold,
                detected: false,
                identification: None,
                estimated_bytes: None,
            });
        }
        let residual = self.detector.model().residual(y)?;
        let id = self.identifier.identify(&residual)?;
        let bytes = quantify_with_factor(&id, self.quant_factor[id.flow]);
        Ok(DiagnosisReport {
            time: 0,
            spe: detection.spe,
            threshold: detection.threshold,
            detected: true,
            identification: Some(id),
            estimated_bytes: Some(bytes),
        })
    }

    /// Diagnose every row of a `t × m` measurement matrix.
    ///
    /// Batched: all SPEs come out of the fused single-pass detection
    /// kernel ([`SubspaceModel::spe_all`]); identification and
    /// quantification then run only on the rows whose detection fired,
    /// each against the exact per-vector residual. Relative to running
    /// [`Diagnoser::diagnose_vector`] per row, SPEs agree within `1e-12`
    /// and identifications are bitwise identical — while the series as a
    /// whole runs several times faster (see `crates/bench`).
    pub fn diagnose_series(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        let model = self.detector.model();
        let spes = model.spe_all(links)?;
        let threshold = self.detector.threshold().delta_sq;
        let mut out = Vec::with_capacity(links.rows());
        for (time, spe) in spes.into_iter().enumerate() {
            if spe <= threshold {
                out.push(DiagnosisReport {
                    time,
                    spe,
                    threshold,
                    detected: false,
                    identification: None,
                    estimated_bytes: None,
                });
                continue;
            }
            let residual = model.residual(links.row(time))?;
            let id = self.identifier.identify(&residual)?;
            let bytes = quantify_with_factor(&id, self.quant_factor[id.flow]);
            out.push(DiagnosisReport {
                time,
                spe,
                threshold,
                detected: true,
                identification: Some(id),
                estimated_bytes: Some(bytes),
            });
        }
        Ok(out)
    }

    /// Only the reports whose detection step fired.
    pub fn diagnose_anomalies(&self, links: &Matrix) -> Result<Vec<DiagnosisReport>> {
        Ok(self
            .diagnose_series(links)?
            .into_iter()
            .filter(|r| r.detected)
            .collect())
    }
}

/// Quantification (paper Section 5.3): convert an identification into an
/// estimate of the anomalous bytes in the flow.
///
/// The anomalous per-link traffic is `y′ = y − yᵢ* = θᵢ f̂ᵢ`, and the byte
/// estimate is `Āᵢᵀ y′ = (Āᵢᵀθᵢ) f̂ᵢ`. For a 0/1 routing column over `k`
/// links, `Āᵢᵀθᵢ = 1/√k`, so the estimate reduces to `f̂ᵢ/‖Aᵢ‖` — which is
/// exactly the injected byte count when the residual fit is clean.
pub fn quantify(id: &Identification, rm: &RoutingMatrix) -> f64 {
    let factor = netanom_linalg::vector::dot(&rm.abar(id.flow), &rm.theta(id.flow));
    quantify_with_factor(id, factor)
}

fn quantify_with_factor(id: &Identification, factor: f64) -> f64 {
    factor * id.f_hat
}

#[cfg(test)]
mod tests {
    use super::*;
    use netanom_linalg::vector;
    use netanom_topology::builtin;

    fn training(m: usize) -> Matrix {
        Matrix::from_fn(500, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 2e5 * phase.sin() * ((l % 4) as f64 + 1.0);
            let noise = (((i * m + l).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
            2e6 + smooth + noise
        })
    }

    fn setup() -> (Diagnoser, netanom_topology::Network, Matrix) {
        let net = builtin::ring(5);
        let links = training(net.routing_matrix.num_links());
        let diag = Diagnoser::fit(
            &links,
            &net.routing_matrix,
            DiagnoserConfig {
                separation: SeparationPolicy::FixedCount(2),
                ..DiagnoserConfig::default()
            },
        )
        .unwrap();
        (diag, net, links)
    }

    #[test]
    fn quiet_bin_yields_no_identification() {
        let (diag, _, links) = setup();
        let rep = diag.diagnose_vector(links.row(5)).unwrap();
        assert!(!rep.detected);
        assert!(rep.identification.is_none());
        assert!(rep.estimated_bytes.is_none());
    }

    #[test]
    fn injected_anomaly_fully_diagnosed() {
        let (diag, net, links) = setup();
        let rm = &net.routing_matrix;
        let flow = 7;
        let injected = 5e6;
        let mut y = links.row(123).to_vec();
        vector::axpy(injected, &rm.column(flow), &mut y);

        let rep = diag.diagnose_vector(&y).unwrap();
        assert!(rep.detected, "spe {} vs {}", rep.spe, rep.threshold);
        let id = rep.identification.unwrap();
        assert_eq!(id.flow, flow);
        let est = rep.estimated_bytes.unwrap();
        assert!(
            (est / injected - 1.0).abs() < 0.25,
            "estimated {est} vs injected {injected}"
        );
    }

    #[test]
    fn quantification_equals_f_hat_over_norm_a() {
        let (diag, net, links) = setup();
        let rm = &net.routing_matrix;
        let flow = 11;
        let mut y = links.row(200).to_vec();
        vector::axpy(6e6, &rm.column(flow), &mut y);
        let rep = diag.diagnose_vector(&y).unwrap();
        let id = rep.identification.unwrap();
        let k = rm.path_len(id.flow) as f64;
        let expected = id.f_hat / k.sqrt();
        assert!((rep.estimated_bytes.unwrap() - expected).abs() < 1e-6 * expected.abs().max(1.0));
        // And the free function agrees with the precomputed factor.
        assert!(
            (quantify(&id, rm) - rep.estimated_bytes.unwrap()).abs()
                < 1e-9 * expected.abs().max(1.0)
        );
    }

    #[test]
    fn negative_anomaly_quantified_negative() {
        let (diag, net, links) = setup();
        let rm = &net.routing_matrix;
        let mut y = links.row(300).to_vec();
        vector::axpy(-5e6, &rm.column(3), &mut y);
        let rep = diag.diagnose_vector(&y).unwrap();
        assert!(rep.detected);
        assert!(rep.estimated_bytes.unwrap() < 0.0);
    }

    #[test]
    fn series_indexing_and_filtering() {
        let (diag, net, mut links) = setup();
        let rm = &net.routing_matrix;
        // Implant two anomalies into the series itself.
        for &(t, f) in &[(100usize, 4usize), (250, 9)] {
            let mut row = links.row(t).to_vec();
            vector::axpy(6e6, &rm.column(f), &mut row);
            links.set_row(t, &row);
        }
        let all = diag.diagnose_series(&links).unwrap();
        assert_eq!(all.len(), 500);
        let anomalies = diag.diagnose_anomalies(&links).unwrap();
        let times: Vec<usize> = anomalies.iter().map(|r| r.time).collect();
        assert!(times.contains(&100), "times: {times:?}");
        assert!(times.contains(&250), "times: {times:?}");
        // Spurious alarms should be rare on this clean synthetic data.
        assert!(anomalies.len() <= 4, "{} alarms", anomalies.len());
    }

    #[test]
    fn default_config_matches_paper() {
        let c = DiagnoserConfig::default();
        assert_eq!(c.confidence, 0.999);
        assert_eq!(c.separation, SeparationPolicy::ThreeSigma { sigma: 3.0 });
    }
}
