//! Principal component analysis of the link measurement matrix.

use netanom_linalg::decomposition::{Svd, SymmetricEigen};
use netanom_linalg::{vector, Matrix};

use crate::{CoreError, Result};

/// How to compute the principal components.
///
/// Both routes produce the same subspace; they are cross-validated against
/// each other in tests. The covariance route is what the paper describes
/// ("solving the symmetric eigenvalue problem for the covariance matrix,
/// YᵀY"); the SVD route has better numerical behaviour for tiny trailing
/// eigenvalues and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcaMethod {
    /// One-sided Jacobi SVD of the centered data matrix.
    #[default]
    Svd,
    /// Jacobi eigendecomposition of the sample covariance `YᵀY/(t−1)`.
    Covariance,
}

/// The PCA of a `t × m` link measurement matrix.
///
/// * `components` — the principal axes `vᵢ` as columns (`m × m`),
///   ordered by decreasing captured variance;
/// * `eigenvalues` — `λᵢ = ‖Yvᵢ‖²/(t−1)`, the **sample variance** captured
///   by axis `i`. The paper writes `‖Yvᵢ‖²`; the `1/(t−1)` normalization
///   puts the values on the same scale as the per-timestep SPE so the
///   Jackson–Mudholkar threshold is calibrated correctly (see DESIGN.md);
/// * `mean` — the per-link means removed before the decomposition.
#[derive(Debug, Clone)]
pub struct Pca {
    components: Matrix,
    eigenvalues: Vec<f64>,
    mean: Vec<f64>,
    num_samples: usize,
    /// Centered data matrix (kept for temporal projections `uᵢ`).
    centered: Matrix,
}

impl Pca {
    /// Fit a PCA to the raw (uncentered) measurement matrix.
    ///
    /// Requires at least two timesteps and `t ≥ m` (one week of 10-minute
    /// bins against ≤ 49 links leaves a huge margin).
    pub fn fit(links: &Matrix, method: PcaMethod) -> Result<Self> {
        let (t, m) = links.shape();
        if t < 2 {
            return Err(CoreError::TooFewSamples { got: t, need: 2 });
        }
        if t < m {
            return Err(CoreError::TooFewSamples { got: t, need: m });
        }
        let (centered, mean) = links.mean_centered_columns();
        let denom = (t - 1) as f64;

        let (components, eigenvalues) = match method {
            PcaMethod::Svd => {
                let svd = Svd::new(&centered)?;
                let eig: Vec<f64> = svd.sigma.iter().map(|s| s * s / denom).collect();
                (svd.v, eig)
            }
            PcaMethod::Covariance => {
                let cov = centered.gram().scaled(1.0 / denom);
                let eig = SymmetricEigen::new(&cov)?;
                // Clamp tiny negative values from roundoff.
                let vals = eig.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
                (eig.eigenvectors, vals)
            }
        };

        Ok(Pca {
            components,
            eigenvalues,
            mean,
            num_samples: t,
            centered,
        })
    }

    /// Number of links `m`.
    pub fn dim(&self) -> usize {
        self.components.rows()
    }

    /// Number of timesteps the model was fit on.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The principal axes as columns of an `m × m` orthogonal matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Principal axis `i` (unit vector of length `m`).
    ///
    /// # Panics
    /// Panics if `i ≥ m`.
    pub fn component(&self, i: usize) -> Vec<f64> {
        self.components.col(i)
    }

    /// Captured sample variances `λᵢ`, decreasing.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Per-link means removed before the decomposition.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Fraction of total variance captured by each axis — the data behind
    /// the paper's Figure 3 scree plot.
    pub fn variance_fractions(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|&l| l / total).collect()
    }

    /// Smallest number of leading axes capturing at least `fraction` of
    /// the total variance.
    pub fn effective_dimension(&self, fraction: f64) -> usize {
        let fracs = self.variance_fractions();
        let mut acc = 0.0;
        for (i, f) in fracs.iter().enumerate() {
            acc += f;
            if acc >= fraction {
                return i + 1;
            }
        }
        fracs.len()
    }

    /// The normalized temporal projection `uᵢ = Yvᵢ / ‖Yvᵢ‖` (length `t`).
    ///
    /// `u₁, u₂` show the clean diurnal trends of the paper's Figure 4(a);
    /// higher-order projections carry spikes (Figure 4(b)). For an axis
    /// with zero captured variance the projection is the zero vector.
    ///
    /// # Panics
    /// Panics if `i ≥ m`.
    pub fn temporal_projection(&self, i: usize) -> Vec<f64> {
        let v = self.components.col(i);
        let mut u = self
            .centered
            .matvec(&v)
            .expect("component length matches column count");
        vector::normalize(&mut u);
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random data matrix with two strong directions.
    fn structured_data(t: usize, m: usize) -> Matrix {
        Matrix::from_fn(t, m, |i, j| {
            let daily = (i as f64 * std::f64::consts::TAU / 144.0).sin();
            let trend = (j as f64 + 1.0) * daily * 100.0;
            let noise = ((i * m + j).wrapping_mul(2654435761) % 1000) as f64 / 100.0;
            1000.0 + trend + noise
        })
    }

    #[test]
    fn methods_agree_on_eigenvalues() {
        let y = structured_data(200, 8);
        let svd = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let cov = Pca::fit(&y, PcaMethod::Covariance).unwrap();
        for k in 0..8 {
            let a = svd.eigenvalues()[k];
            let b = cov.eigenvalues()[k];
            assert!(
                (a - b).abs() <= 1e-6 * svd.eigenvalues()[0].max(1.0),
                "eigenvalue {k}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn methods_agree_on_leading_subspace() {
        let y = structured_data(150, 6);
        let svd = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let cov = Pca::fit(&y, PcaMethod::Covariance).unwrap();
        // Component signs may flip; compare |dot| ≈ 1.
        for k in 0..2 {
            let d = vector::dot(&svd.component(k), &cov.component(k)).abs();
            assert!(d > 1.0 - 1e-6, "component {k} differs: |dot| = {d}");
        }
    }

    #[test]
    fn eigenvalues_match_projected_variance() {
        let y = structured_data(300, 5);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let (centered, _) = y.mean_centered_columns();
        for k in 0..5 {
            let proj = centered.matvec(&pca.component(k)).unwrap();
            let var = vector::norm_sq(&proj) / (y.rows() as f64 - 1.0);
            assert!(
                (var - pca.eigenvalues()[k]).abs() <= 1e-8 * pca.eigenvalues()[0].max(1.0),
                "eigenvalue {k}"
            );
        }
    }

    #[test]
    fn variance_fractions_sum_to_one() {
        let y = structured_data(100, 7);
        let pca = Pca::fit(&y, PcaMethod::Covariance).unwrap();
        let sum: f64 = pca.variance_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_structure_concentrates_variance() {
        // One dominant direction -> first axis captures nearly everything.
        let y = structured_data(400, 10);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        assert!(pca.variance_fractions()[0] > 0.9);
        assert_eq!(pca.effective_dimension(0.9), 1);
        assert!(pca.effective_dimension(0.99999) <= 10);
    }

    #[test]
    fn temporal_projection_is_unit_norm_and_tracks_signal() {
        let y = structured_data(288, 6);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        let u1 = pca.temporal_projection(0);
        assert_eq!(u1.len(), 288);
        assert!((vector::norm(&u1) - 1.0).abs() < 1e-9);
        // The first projection should correlate almost perfectly with the
        // daily sine that generated the data.
        let daily: Vec<f64> = (0..288)
            .map(|i| (i as f64 * std::f64::consts::TAU / 144.0).sin())
            .collect();
        let corr = netanom_linalg::stats::pearson(&u1, &daily).unwrap().abs();
        assert!(corr > 0.99, "correlation {corr}");
    }

    #[test]
    fn zero_variance_axis_projects_to_zero() {
        // Rank-1 data: only one nonzero eigenvalue.
        let y = Matrix::from_fn(50, 3, |i, _| i as f64);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        assert!(pca.eigenvalues()[1] < 1e-9 * pca.eigenvalues()[0]);
        let u3 = pca.temporal_projection(2);
        assert!(vector::norm(&u3) < 1e-9);
    }

    #[test]
    fn rejects_too_few_samples() {
        let y = Matrix::zeros(1, 5);
        assert!(matches!(
            Pca::fit(&y, PcaMethod::Svd),
            Err(CoreError::TooFewSamples { .. })
        ));
        let wide = Matrix::zeros(4, 10);
        assert!(matches!(
            Pca::fit(&wide, PcaMethod::Svd),
            Err(CoreError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn constant_traffic_has_zero_spectrum() {
        let y = Matrix::from_fn(60, 4, |_, j| 100.0 * (j + 1) as f64);
        let pca = Pca::fit(&y, PcaMethod::Svd).unwrap();
        assert!(pca.eigenvalues().iter().all(|&l| l < 1e-18));
        assert_eq!(pca.variance_fractions(), vec![0.0; 4]);
    }

    #[test]
    fn mean_is_removed() {
        let y = structured_data(120, 4);
        let pca = Pca::fit(&y, PcaMethod::Covariance).unwrap();
        let means = y.column_means();
        assert!(vector::approx_eq(pca.mean(), &means, 1e-9));
    }
}
