//! The Jackson–Mudholkar Q-statistic threshold.
//!
//! With residual eigenvalues `λ_{r+1} … λ_m` (variances of the data along
//! the anomalous axes), define `φᵢ = Σⱼ λⱼᶦ` and
//! `h₀ = 1 − 2φ₁φ₃ / (3φ₂²)`. Then under the null (multivariate Gaussian
//! residual), `SPE ≤ δ²_α` holds with probability `1 − α`, where
//!
//! ```text
//! δ²_α = φ₁ · [ c_α·√(2φ₂h₀²)/φ₁ + 1 + φ₂h₀(h₀−1)/φ₁² ]^(1/h₀)
//! ```
//!
//! and `c_α` is the `1 − α` standard-normal percentile. The result holds
//! regardless of how many components are kept in the normal subspace, and
//! Jensen & Solomon showed it is robust to non-Gaussian data — both facts
//! the paper leans on.

use netanom_linalg::stats;

use crate::{CoreError, Result};

/// A computed Q-statistic threshold.
#[derive(Debug, Clone, Copy)]
pub struct QStatistic {
    /// The SPE threshold `δ²_α`.
    pub delta_sq: f64,
    /// The confidence level `1 − α` it was computed for.
    pub confidence: f64,
    /// `φ₁ = Σ λⱼ` over residual axes (the expected SPE under the null).
    pub phi1: f64,
    /// `φ₂ = Σ λⱼ²`.
    pub phi2: f64,
    /// `φ₃ = Σ λⱼ³`.
    pub phi3: f64,
    /// The `h₀` exponent parameter.
    pub h0: f64,
}

/// Compute the Q-statistic threshold for a spectrum split at `r`.
///
/// * `eigenvalues` — all `m` captured variances, decreasing, on the
///   covariance scale (`‖Yvⱼ‖²/(t−1)`);
/// * `r` — normal-subspace dimension; residual axes are `r..m`;
/// * `confidence` — e.g. `0.999` for the paper's 99.9% level.
///
/// Returns [`CoreError::DegenerateResidual`] when the residual spectrum is
/// empty or carries (numerically) zero variance — in that situation the
/// residual is identically zero under the model and no finite threshold
/// separates normal from anomalous.
pub fn q_threshold(eigenvalues: &[f64], r: usize, confidence: f64) -> Result<QStatistic> {
    if r >= eigenvalues.len() {
        return Err(CoreError::DegenerateResidual { r });
    }
    let residual = &eigenvalues[r..];
    let phi1: f64 = residual.iter().sum();
    let phi2: f64 = residual.iter().map(|l| l * l).sum();
    let phi3: f64 = residual.iter().map(|l| l * l * l).sum();
    let scale = eigenvalues.first().copied().unwrap_or(0.0).max(1.0);
    q_threshold_from_moments(phi1, phi2, phi3, scale, confidence).map_err(|e| match e {
        // Re-anchor the degenerate report on the split the caller chose.
        CoreError::DegenerateResidual { .. } => CoreError::DegenerateResidual { r },
        other => other,
    })
}

/// Compute the Q-statistic threshold directly from the residual power
/// sums `φ₁ = Σλⱼ`, `φ₂ = Σλⱼ²`, `φ₃ = Σλⱼ³` (over the residual axes
/// only).
///
/// This is the entry point for truncated refits: the engines compute
/// the moments *exactly* from matrix traces (`tr Σ`, `‖Σ‖²_F`, `tr Σ³`
/// minus the leading eigenvalues' contributions — see
/// [`power_traces`](netanom_linalg::decomposition::power_traces))
/// without ever materializing the residual spectrum, so the threshold
/// agrees with a full eigendecomposition's to roundoff. `scale` is the
/// magnitude the degeneracy test is relative to (the largest
/// eigenvalue, or `1.0` when unknown).
pub fn q_threshold_from_moments(
    phi1: f64,
    phi2: f64,
    phi3: f64,
    scale: f64,
    confidence: f64,
) -> Result<QStatistic> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(CoreError::InvalidConfidence { value: confidence });
    }
    if !(phi1.is_finite() && phi2.is_finite() && phi3.is_finite()) || phi1 <= scale.max(1.0) * 1e-15
    {
        return Err(CoreError::DegenerateResidual { r: usize::MAX });
    }

    let c_alpha = stats::inverse_normal_cdf(confidence)?;
    let h0 = 1.0 - 2.0 * phi1 * phi3 / (3.0 * phi2 * phi2);

    // With a single dominant residual eigenvalue h0 can approach 1/3 from
    // above; it is always in (0, 1] for real spectra. Guard against
    // pathological roundoff anyway.
    let h0 = if h0.is_finite() { h0.max(1e-4) } else { 1.0 };

    let base = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    // The bracket is positive for every real spectrum at the confidence
    // levels used in practice; clamp to keep powf well-defined under
    // extreme synthetic inputs.
    let base = base.max(f64::MIN_POSITIVE);
    let delta_sq = phi1 * base.powf(1.0 / h0);

    Ok(QStatistic {
        delta_sq,
        confidence,
        phi1,
        phi2,
        phi3,
        h0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A typical backbone-like spectrum: steep head, flat noisy tail.
    fn spectrum() -> Vec<f64> {
        let mut v: Vec<f64> = vec![1e16, 3e15, 8e14, 2e14];
        v.extend(std::iter::repeat_n(4.0e12, 45));
        v
    }

    #[test]
    fn threshold_grows_with_confidence() {
        let eig = spectrum();
        let q995 = q_threshold(&eig, 4, 0.995).unwrap();
        let q999 = q_threshold(&eig, 4, 0.999).unwrap();
        assert!(q999.delta_sq > q995.delta_sq);
        assert_eq!(q999.confidence, 0.999);
    }

    #[test]
    fn threshold_exceeds_expected_spe() {
        // δ² must sit above the mean residual energy φ₁.
        let eig = spectrum();
        let q = q_threshold(&eig, 4, 0.999).unwrap();
        assert!(q.delta_sq > q.phi1);
        // …but not absurdly so for a flat tail (χ²-like concentration).
        assert!(q.delta_sq < 3.0 * q.phi1);
    }

    #[test]
    fn equal_eigenvalues_match_chi_square() {
        // With k equal residual eigenvalues λ, SPE/λ ~ χ²_k. For k = 50,
        // λ = 1: the 99.9% point of χ²_50 is ≈ 86.7.
        let eig = vec![1.0; 50];
        let q = q_threshold(&eig, 0, 0.999).unwrap();
        assert!(
            (q.delta_sq - 86.7).abs() < 2.0,
            "δ² = {} vs χ²_50(0.999) ≈ 86.7",
            q.delta_sq
        );
    }

    #[test]
    fn chi_square_single_dof() {
        // k = 1: SPE ~ λ·χ²_1; 99% point of χ²_1 ≈ 6.635. The JM
        // approximation is a Wilson–Hilferty-style transform, accurate to
        // a few percent even at k = 1.
        let eig = vec![2.0];
        let q = q_threshold(&eig, 0, 0.99).unwrap();
        assert!(
            (q.delta_sq / 2.0 - 6.635).abs() < 0.5,
            "δ²/λ = {} vs 6.635",
            q.delta_sq / 2.0
        );
    }

    #[test]
    fn scale_equivariance() {
        // δ²(s·λ) = s·δ²(λ): the threshold lives on the same scale as the
        // eigenvalues.
        let eig = spectrum();
        let q1 = q_threshold(&eig, 4, 0.999).unwrap();
        let scaled: Vec<f64> = eig.iter().map(|l| l * 1e3).collect();
        let q2 = q_threshold(&scaled, 4, 0.999).unwrap();
        assert!(
            (q2.delta_sq / q1.delta_sq / 1e3 - 1.0).abs() < 1e-9,
            "not scale-equivariant"
        );
    }

    #[test]
    fn r_equal_m_is_degenerate() {
        let eig = vec![1.0, 2.0];
        assert!(matches!(
            q_threshold(&eig, 2, 0.999),
            Err(CoreError::DegenerateResidual { r: 2 })
        ));
    }

    #[test]
    fn zero_residual_variance_is_degenerate() {
        let eig = vec![5.0, 0.0, 0.0];
        assert!(matches!(
            q_threshold(&eig, 1, 0.999),
            Err(CoreError::DegenerateResidual { .. })
        ));
    }

    #[test]
    fn invalid_confidence_rejected() {
        let eig = spectrum();
        for c in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                q_threshold(&eig, 4, c),
                Err(CoreError::InvalidConfidence { .. })
            ));
        }
    }

    #[test]
    fn false_alarm_rate_matches_confidence_on_gaussian_data() {
        // Empirical check of the JM limit: simulate SPE = Σ λⱼ zⱼ² with
        // hash-based "Gaussian-ish" z via CLT (sum of 12 uniforms − 6).
        let lambdas = [3.0, 2.0, 1.0, 0.5, 0.25];
        let q = q_threshold(&lambdas, 0, 0.995).unwrap();
        let mut exceed = 0usize;
        let trials = 20_000usize;
        let mut state = 0x12345678u64;
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..trials {
            let mut spe = 0.0;
            for &l in &lambdas {
                let z: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0;
                spe += l * z * z;
            }
            if spe > q.delta_sq {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / trials as f64;
        // Expected 0.005; allow generous Monte-Carlo + CLT-tail slack.
        assert!(
            rate < 0.012,
            "false alarm rate {rate} far above nominal 0.005"
        );
        assert!(rate > 0.0005, "threshold absurdly conservative ({rate})");
    }
}
