//! The identification step: which OD flow best explains the residual?
//!
//! For a hypothesized single-flow anomaly `Fᵢ` with unit direction
//! `θᵢ = Aᵢ/‖Aᵢ‖`, the best estimate of the anomaly magnitude is the least
//! squares fit in the residual subspace,
//! `f̂ᵢ = (θ̃ᵢᵀθ̃ᵢ)⁻¹ θ̃ᵢᵀ ỹ` with `θ̃ᵢ = C̃θᵢ`, and the paper (Eq. 1)
//! picks the hypothesis minimizing the unexplained residual
//! `‖C̃(y − θᵢ f̂ᵢ)‖`.
//!
//! Expanding the norm shows
//! `‖ỹ − θ̃ᵢ f̂ᵢ‖² = ‖ỹ‖² − (θ̃ᵢᵀỹ)²/‖θ̃ᵢ‖²`,
//! so the minimizer is simply the flow maximizing the *explained* energy
//! `(θ̃ᵢᵀỹ)²/‖θ̃ᵢ‖²`. [`Identifier`] precomputes all `θ̃ᵢ` once
//! (`O(m²n)` at build time) and then identifies in `O(mn)` per anomaly;
//! the literal Equation-1 evaluation is kept as
//! [`Identifier::identify_naive`] and tested equal.

use netanom_linalg::{vector, Matrix};
use netanom_topology::RoutingMatrix;

use crate::subspace::SubspaceModel;
use crate::{CoreError, Result};

/// Result of identifying one anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Identification {
    /// Index of the selected OD flow (routing-matrix column).
    pub flow: usize,
    /// Estimated anomaly magnitude `f̂` along `θ_flow` (may be negative
    /// for traffic drops).
    pub f_hat: f64,
    /// Residual energy `‖ỹ‖²` before removing the hypothesized anomaly.
    pub residual_energy: f64,
    /// Residual energy remaining after removing it
    /// (`‖C̃(y − θ f̂)‖²`).
    pub remaining_energy: f64,
}

impl Identification {
    /// Fraction of residual energy explained by the chosen hypothesis.
    pub fn explained_fraction(&self) -> f64 {
        if self.residual_energy <= 0.0 {
            0.0
        } else {
            1.0 - self.remaining_energy / self.residual_energy
        }
    }
}

/// Precomputed single-flow identification over a candidate set of OD
/// flows.
#[derive(Debug, Clone)]
pub struct Identifier {
    /// `θ̃ᵢ` as columns (`m × n`).
    theta_tilde: Matrix,
    /// `‖θ̃ᵢ‖²` per flow.
    theta_tilde_norm_sq: Vec<f64>,
    /// `θᵢ` as columns (`m × n`), for reconstructing `y*`.
    theta: Matrix,
}

impl Identifier {
    /// Build the identifier for all OD flows of a routing matrix under a
    /// fitted model.
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the routing matrix and
    /// model disagree on the number of links, and
    /// [`CoreError::NoCandidates`] for an empty flow set.
    pub fn new(model: &SubspaceModel, rm: &RoutingMatrix) -> Result<Self> {
        if rm.num_links() != model.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: model.dim(),
                got: rm.num_links(),
            });
        }
        let n = rm.num_flows();
        if n == 0 {
            return Err(CoreError::NoCandidates);
        }
        // All θ̃ᵢ = C̃θᵢ in one batched projection instead of n matvec
        // pairs (identical columns; see SubspaceModel::residual_directions).
        let theta_tilde = model.residual_directions(rm.theta_matrix())?;
        let norms: Vec<f64> = (0..n)
            .map(|i| vector::norm_sq(&theta_tilde.col(i)))
            .collect();
        Ok(Identifier {
            theta_tilde,
            theta_tilde_norm_sq: norms,
            theta: rm.theta_matrix().clone(),
        })
    }

    /// Number of candidate flows.
    pub fn num_candidates(&self) -> usize {
        self.theta_tilde_norm_sq.len()
    }

    /// `‖θ̃ᵢ‖²` for flow `i` — how visible flow `i`'s anomalies are in the
    /// residual subspace (the quantity in the Section 5.4 detectability
    /// bound).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn residual_visibility(&self, i: usize) -> f64 {
        self.theta_tilde_norm_sq[i]
    }

    /// Identify the best single-flow hypothesis for a residual vector
    /// `ỹ` (as produced by [`SubspaceModel::residual`]).
    ///
    /// Flows whose direction is (numerically) invisible in the residual
    /// subspace are skipped — they cannot explain any residual energy.
    pub fn identify(&self, residual: &[f64]) -> Result<Identification> {
        if residual.len() != self.theta_tilde.rows() {
            return Err(CoreError::DimensionMismatch {
                expected: self.theta_tilde.rows(),
                got: residual.len(),
            });
        }
        let energy = vector::norm_sq(residual);
        // inner[i] = θ̃ᵢᵀ ỹ for all flows at once.
        let inner = self
            .theta_tilde
            .matvec_t(residual)
            .expect("dim checked above");
        let mut best: Option<(usize, f64)> = None;
        for i in 0..inner.len() {
            let nsq = self.theta_tilde_norm_sq[i];
            if nsq <= 1e-12 {
                continue;
            }
            let explained = inner[i] * inner[i] / nsq;
            match best {
                Some((_, b)) if b >= explained => {}
                _ => best = Some((i, explained)),
            }
        }
        let (flow, explained) = best.ok_or(CoreError::NoCandidates)?;
        let f_hat = inner[flow] / self.theta_tilde_norm_sq[flow];
        Ok(Identification {
            flow,
            f_hat,
            residual_energy: energy,
            remaining_energy: (energy - explained).max(0.0),
        })
    }

    /// Literal evaluation of paper Equation (1): for every flow, form
    /// `yᵢ* = y − θᵢ f̂ᵢ` and measure `‖C̃ yᵢ*‖`, choosing the minimum.
    ///
    /// Quadratically slower than [`Identifier::identify`]; exists to pin
    /// the algebraic reduction in tests and for didactic value.
    pub fn identify_naive(&self, model: &SubspaceModel, y: &[f64]) -> Result<Identification> {
        let residual = model.residual(y)?;
        let energy = vector::norm_sq(&residual);
        let mut best: Option<(usize, f64, f64)> = None; // (flow, remaining, f_hat)
        for i in 0..self.num_candidates() {
            let nsq = self.theta_tilde_norm_sq[i];
            if nsq <= 1e-12 {
                continue;
            }
            let tt = self.theta_tilde.col(i);
            let f_hat = vector::dot(&tt, &residual) / nsq;
            // y* = y − θᵢ f̂ᵢ ; C̃y* = ỹ − θ̃ᵢ f̂ᵢ (mean cancels in C̃).
            let removed = vector::sub(&residual, &vector::scaled(&tt, f_hat));
            let remaining = vector::norm_sq(&removed);
            match best {
                Some((_, b, _)) if b <= remaining => {}
                _ => best = Some((i, remaining, f_hat)),
            }
        }
        let (flow, remaining, f_hat) = best.ok_or(CoreError::NoCandidates)?;
        Ok(Identification {
            flow,
            f_hat,
            residual_energy: energy,
            remaining_energy: remaining,
        })
    }

    /// The anomaly direction `θᵢ` of candidate `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn theta(&self, i: usize) -> Vec<f64> {
        self.theta.col(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::PcaMethod;
    use crate::separation::SeparationPolicy;
    use netanom_topology::builtin;

    /// Build a model + identifier on the line(4) network with smooth
    /// diurnal traffic.
    fn setup() -> (SubspaceModel, Identifier, netanom_topology::Network, Matrix) {
        let net = builtin::line(4);
        let rm = &net.routing_matrix;
        let m = rm.num_links();
        let links = Matrix::from_fn(400, m, |i, l| {
            let phase = i as f64 * std::f64::consts::TAU / 144.0;
            let smooth = 1e5 * phase.sin() * ((l % 3) as f64 + 1.0);
            let noise = (((i * m + l).wrapping_mul(0x9E3779B9)) % 4096) as f64 - 2048.0;
            1e6 + smooth + noise
        });
        let model =
            SubspaceModel::fit(&links, SeparationPolicy::FixedCount(2), PcaMethod::Svd).unwrap();
        let ident = Identifier::new(&model, rm).unwrap();
        (model, ident, net.clone(), links)
    }

    #[test]
    fn clean_injection_is_identified() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        // Inject 1e6 bytes into a multi-hop flow at a clean timestep.
        let flow = rm
            .flow_id((netanom_topology::PopId(0), netanom_topology::PopId(3)))
            .0;
        let mut y = links.row(100).to_vec();
        vector::axpy(1e6, &rm.column(flow), &mut y);
        let id = ident.identify(&model.residual(&y).unwrap()).unwrap();
        assert_eq!(id.flow, flow, "picked flow {} instead", id.flow);
        // f̂ scales with ‖A‖: injecting b bytes gives f̂ ≈ b·‖A‖.
        let expected_f = 1e6 * (rm.path_len(flow) as f64).sqrt();
        assert!(
            (id.f_hat / expected_f - 1.0).abs() < 0.2,
            "f_hat {} vs expected {expected_f}",
            id.f_hat
        );
        assert!(id.explained_fraction() > 0.8);
    }

    #[test]
    fn negative_anomaly_gets_negative_f_hat() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        let flow = rm
            .flow_id((netanom_topology::PopId(3), netanom_topology::PopId(0)))
            .0;
        let mut y = links.row(50).to_vec();
        vector::axpy(-8e5, &rm.column(flow), &mut y);
        let id = ident.identify(&model.residual(&y).unwrap()).unwrap();
        assert_eq!(id.flow, flow);
        assert!(id.f_hat < 0.0);
    }

    #[test]
    fn fast_and_naive_agree() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        for (t, flow, size) in [(30usize, 2usize, 7e5), (60, 9, 1.2e6), (90, 14, 9e5)] {
            let mut y = links.row(t).to_vec();
            vector::axpy(size, &rm.column(flow), &mut y);
            let fast = ident.identify(&model.residual(&y).unwrap()).unwrap();
            let naive = ident.identify_naive(&model, &y).unwrap();
            assert_eq!(fast.flow, naive.flow, "flow mismatch at t={t}");
            assert!((fast.f_hat - naive.f_hat).abs() < 1e-6 * fast.f_hat.abs().max(1.0));
            assert!(
                (fast.remaining_energy - naive.remaining_energy).abs()
                    < 1e-6 * fast.residual_energy.max(1.0)
            );
        }
    }

    #[test]
    fn identification_reduces_residual_energy() {
        let (model, ident, net, links) = setup();
        let rm = &net.routing_matrix;
        let mut y = links.row(150).to_vec();
        vector::axpy(2e6, &rm.column(5), &mut y);
        let id = ident.identify(&model.residual(&y).unwrap()).unwrap();
        assert!(id.remaining_energy < id.residual_energy);
    }

    #[test]
    fn dimension_mismatch_and_empty_candidates() {
        let (model, ident, _, _) = setup();
        assert!(matches!(
            ident.identify(&[1.0, 2.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        // Mismatched routing matrix.
        let other = builtin::ring(5);
        assert!(matches!(
            Identifier::new(&model, &other.routing_matrix),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn residual_visibility_positive_for_all_flows() {
        let (_, ident, _, _) = setup();
        for i in 0..ident.num_candidates() {
            assert!(
                ident.residual_visibility(i) > 0.0,
                "flow {i} invisible in residual subspace"
            );
        }
    }

    #[test]
    fn zero_residual_identifies_something_harmlessly() {
        // A vector exactly in the normal subspace: residual ~ 0;
        // identification still returns a candidate with f̂ ≈ 0.
        let (model, ident, _, links) = setup();
        let y = model.mean().to_vec();
        let id = ident.identify(&model.residual(&y).unwrap()).unwrap();
        assert!(id.f_hat.abs() < 1e-6 * links.max_abs());
        assert!(id.residual_energy < 1e-12 * links.max_abs().powi(2));
    }
}
