//! Manual calibration diagnostic (ignored by default).
//!
//! Run with:
//! `cargo test -p netanom-core --test calibration_report -- --ignored --nocapture`
//!
//! Prints, per dataset: the 3σ-selected r, the residual noise floor φ₁,
//! the detection threshold δ², the SPE an injection of each landmark size
//! would add, and detection counts against exact truth.

use netanom_core::{qstat, Diagnoser, DiagnoserConfig, Pca, SeparationPolicy};
use netanom_linalg::vector;
use netanom_traffic::datasets;

#[test]
#[ignore = "manual calibration tool"]
fn calibration_report() {
    for ds in [
        datasets::sprint1(),
        datasets::sprint2(),
        datasets::abilene(),
    ] {
        let pca = Pca::fit(ds.links.matrix(), Default::default()).unwrap();
        let r = SeparationPolicy::default().normal_dim(&pca);
        let q = qstat::q_threshold(pca.eigenvalues(), r, 0.999).unwrap();
        let diagnoser = Diagnoser::fit(
            ds.links.matrix(),
            &ds.network.routing_matrix,
            DiagnoserConfig::default(),
        )
        .unwrap();
        let model = diagnoser.model();

        // Typical ||C~ A_f||^2 across flows.
        let rm = &ds.network.routing_matrix;
        let mut vis: Vec<f64> = (0..rm.num_flows())
            .map(|f| {
                let a = rm.column(f);
                let res = model.residual_direction(&a).unwrap();
                vector::norm_sq(&res)
            })
            .collect();
        vis.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med_vis = vis[vis.len() / 2];

        let reports = diagnoser.diagnose_series(ds.links.matrix()).unwrap();
        let truth: std::collections::HashMap<usize, &netanom_traffic::AnomalyEvent> =
            ds.truth.iter().map(|e| (e.time, e)).collect();
        let mut det_imp = 0;
        let mut fa = 0;
        let imp = ds.important_truth().len();
        for rep in reports.iter().filter(|r| r.detected) {
            match truth.get(&rep.time) {
                Some(e) if e.size() >= ds.cutoff_bytes => det_imp += 1,
                Some(_) => {}
                None => fa += 1,
            }
        }

        println!("=== {} ===", ds.name);
        println!(
            "  r = {r}, phi1 = {:.3e}, delta^2(99.9%) = {:.3e}",
            q.phi1, q.delta_sq
        );
        println!("  median ||C~A_f||^2 = {med_vis:.3}");
        for (label, b) in [
            ("cutoff", ds.cutoff_bytes),
            ("large", ds.large_injection),
            ("small", ds.small_injection),
        ] {
            let dspe = b * b * med_vis;
            println!(
                "  {label} ({b:.1e}): typical added SPE = {dspe:.3e} ({:.2}x delta^2)",
                dspe / q.delta_sq
            );
        }
        println!("  detection: {det_imp}/{imp} important, {fa} false alarms");
    }
}
