//! Refit-strategy parity: on the canned Abilene week, the *detections*
//! (alarm decisions and identified flows) must be identical across
//! every `--refit` choice — `FullSvd`, `Incremental`, and
//! `Truncated` — and the truncated route's threshold must agree with
//! the full-Jacobi route's to solver tolerance (its residual moments
//! are computed exactly from covariance traces, so the Jackson–
//! Mudholkar threshold is the same number both ways).
//!
//! This is the acceptance contract of the truncated eigensolver:
//! truncation changes the refit *cost*, never what is detected.

use netanom_core::method::{DetectionBackend, SubspaceBackend};
use netanom_core::shard::ShardedEngine;
use netanom_core::stream::{RefitStrategy, StreamConfig, StreamingEngine};
use netanom_core::{DiagnoserConfig, DiagnosisReport};
use netanom_linalg::Matrix;
use netanom_topology::LinkPartition;
use netanom_traffic::datasets;

const TRAIN_BINS: usize = 864; // 6 days; stream the remaining day
const REFIT_EVERY: usize = 72;
const CHUNK: usize = 36;

fn abilene_split() -> (Matrix, Matrix, netanom_topology::Network) {
    let ds = datasets::abilene();
    let links = ds.links.matrix();
    let training = links.row_block(0, TRAIN_BINS).unwrap();
    let tail = links
        .row_block(TRAIN_BINS, links.rows() - TRAIN_BINS)
        .unwrap();
    (training, tail, ds.network)
}

fn stream_reports(strategy: RefitStrategy) -> (Vec<DiagnosisReport>, StreamingEngine) {
    let (training, tail, network) = abilene_split();
    let mut engine = StreamingEngine::new(
        &training,
        &network.routing_matrix,
        DiagnoserConfig::default(),
        StreamConfig::new(TRAIN_BINS)
            .refit_every(REFIT_EVERY)
            .strategy(strategy),
    )
    .unwrap();
    let mut reports = Vec::with_capacity(tail.rows());
    let mut next = 0;
    while next < tail.rows() {
        let take = CHUNK.min(tail.rows() - next);
        let block = tail.row_block(next, take).unwrap();
        reports.extend(engine.process_batch(&block).unwrap());
        next += take;
    }
    assert!(engine.refits() >= 1, "the stream must cross refits");
    (reports, engine)
}

/// The decision trace of a report stream: (detected, identified flow).
fn decisions(reports: &[DiagnosisReport]) -> Vec<(bool, Option<usize>)> {
    reports
        .iter()
        .map(|r| (r.detected, r.identification.as_ref().map(|id| id.flow)))
        .collect()
}

#[test]
fn abilene_detections_bitwise_across_refit_strategies() {
    let (full, _) = stream_reports(RefitStrategy::FullSvd);
    let (incremental, inc_engine) = stream_reports(RefitStrategy::Incremental);
    let (truncated, trunc_engine) = stream_reports(RefitStrategy::truncated());

    // The canned week embeds anomalies; the stream must alarm at all.
    assert!(
        full.iter().any(|r| r.detected),
        "no detections on the contaminated Abilene tail"
    );
    // Decisions bitwise-identical across every --refit choice.
    assert_eq!(
        decisions(&full),
        decisions(&incremental),
        "full-SVD vs incremental detections diverge"
    );
    assert_eq!(
        decisions(&incremental),
        decisions(&truncated),
        "incremental vs truncated detections diverge"
    );

    // SPEs of the statistics-based strategies agree to solver tolerance.
    for (t, (a, b)) in incremental.iter().zip(&truncated).enumerate() {
        let rel = (a.spe - b.spe).abs() / a.spe.max(1.0);
        assert!(rel < 1e-6, "SPE divergence {rel:.2e} at arrival {t}");
    }
    // The exact-moment threshold matches the full-spectrum threshold.
    let thr_inc = inc_engine.diagnoser().detector().threshold().delta_sq;
    let thr_trunc = trunc_engine.diagnoser().detector().threshold().delta_sq;
    let rel = (thr_inc - thr_trunc).abs() / thr_inc;
    assert!(rel < 1e-9, "threshold divergence {rel:.2e}");
    // Both froze the same normal dimension under the 3σ policy.
    assert_eq!(
        inc_engine.diagnoser().model().normal_dim(),
        trunc_engine.diagnoser().model().normal_dim()
    );
}

#[test]
fn truncated_threshold_moments_match_full_spectrum() {
    // Directly compare the two refit products on identical statistics.
    let (training, _, _) = abilene_split();
    let stats = netanom_core::incremental::IncrementalCovariance::from_matrix(&training);
    let policy = netanom_core::SeparationPolicy::FixedCount(4);
    let dense = stats.to_model(policy).unwrap();
    let truncated = stats.to_model_truncated(policy, 8, 1e-12).unwrap();

    // Top-k eigenvalues to 1e-9 relative (the acceptance gate).
    let scale = dense.eigenvalues()[0];
    for (i, (a, b)) in dense
        .eigenvalues()
        .iter()
        .zip(truncated.eigenvalues())
        .enumerate()
    {
        assert!((a - b).abs() <= 1e-9 * scale, "eigenvalue {i}: {a} vs {b}");
    }
    // Sign-fixed basis parity.
    for c in 0..dense.normal_basis().cols() {
        let a = dense.normal_basis().col(c);
        let b = truncated.normal_basis().col(c);
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let sign = if dot >= 0.0 { 1.0 } else { -1.0 };
        for (x, y) in a.iter().zip(&b) {
            assert!((x - sign * y).abs() < 1e-8, "basis column {c} differs");
        }
    }
    // The moments route reproduces the spectrum-summed threshold.
    let qa = dense.q_threshold(0.999).unwrap();
    let qb = truncated.q_threshold(0.999).unwrap();
    assert!((qa.delta_sq - qb.delta_sq).abs() <= 1e-9 * qa.delta_sq);
    assert!((qa.phi1 - qb.phi1).abs() <= 1e-9 * qa.phi1);
    assert!((qa.phi2 - qb.phi2).abs() <= 1e-9 * qa.phi2);
    assert!((qa.phi3 - qb.phi3).abs() <= 1e-9 * qa.phi3);
}

#[test]
fn sharded_truncated_refits_match_streaming() {
    let (training, tail, network) = abilene_split();
    let rm = &network.routing_matrix;
    let cfg = StreamConfig::new(TRAIN_BINS)
        .refit_every(REFIT_EVERY)
        .strategy(RefitStrategy::truncated());
    let mut streaming =
        StreamingEngine::new(&training, rm, DiagnoserConfig::default(), cfg).unwrap();
    let partition = LinkPartition::round_robin(rm.num_links(), 4).unwrap();
    let mut sharded =
        ShardedEngine::new(&training, rm, DiagnoserConfig::default(), cfg, &partition).unwrap();

    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut next = 0;
    while next < tail.rows() {
        let take = CHUNK.min(tail.rows() - next);
        let block = tail.row_block(next, take).unwrap();
        a.extend(streaming.process_batch(&block).unwrap());
        b.extend(sharded.process_batch(&block).unwrap());
        next += take;
    }
    assert!(streaming.refits() >= 1);
    assert_eq!(streaming.refits(), sharded.refits());
    assert_eq!(decisions(&a), decisions(&b), "sharding changed decisions");
    for (t, (x, y)) in a.iter().zip(&b).enumerate() {
        let rel = (x.spe - y.spe).abs() / x.spe.max(1.0);
        assert!(rel < 1e-9, "SPE divergence {rel:.2e} at arrival {t}");
    }
    // Merged statistics are bitwise the single-process statistics, so
    // the post-refit thresholds must be *identical*.
    assert_eq!(
        streaming.diagnoser().detector().threshold().delta_sq,
        sharded.diagnoser().detector().threshold().delta_sq,
    );
}

#[test]
fn truncated_state_roundtrips_with_identical_threshold() {
    let (_, _, network) = abilene_split();
    let rm = &network.routing_matrix;
    let (_, engine) = stream_reports(RefitStrategy::truncated());
    let backend = engine.backend();
    let model = engine.diagnoser().model();
    assert!(
        model.residual_moments().is_some(),
        "truncated refits must carry exact residual moments"
    );

    let state = backend.export_state();
    let bytes = state.to_bytes();
    let restored = netanom_core::method::MethodState::from_bytes(&bytes).unwrap();
    assert_eq!(restored, state);

    // Import into a fresh full-fit backend: scoring and threshold must
    // become bitwise the exporter's.
    let (training, tail, _) = abilene_split();
    let mut other = SubspaceBackend::fit(
        &training,
        rm,
        DiagnoserConfig::default(),
        RefitStrategy::FullSvd,
    )
    .unwrap();
    other.import_state(&restored).unwrap();
    assert_eq!(other.threshold(), backend.threshold());
    for t in 0..10 {
        let a = backend.score_vector(tail.row(t)).unwrap();
        let b = other.score_vector(tail.row(t)).unwrap();
        assert_eq!(a, b, "bin {t}");
    }
}
