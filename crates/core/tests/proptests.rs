//! Property-based tests of the subspace method's algebraic invariants.

use netanom_core::{
    qstat, Diagnoser, DiagnoserConfig, Identifier, Pca, PcaMethod, SeparationPolicy, SubspaceModel,
};
use netanom_linalg::{vector, Matrix};
use netanom_topology::builtin;
use proptest::prelude::*;

/// Deterministic structured measurement matrix parameterized by a seed.
fn measurements(t: usize, m: usize, seed: u64) -> Matrix {
    Matrix::from_fn(t, m, |i, j| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 1e5 * (phase + j as f64).sin() * ((j % 3) as f64 + 1.0);
        let h = (i * m + j + seed as usize).wrapping_mul(2654435761) % 16384;
        1e6 + smooth + (h as f64 - 8192.0)
    })
}

fn fitted_model(seed: u64) -> (SubspaceModel, netanom_topology::Network, Matrix) {
    let net = builtin::line(4);
    let links = measurements(300, net.routing_matrix.num_links(), seed);
    let model =
        SubspaceModel::fit(&links, SeparationPolicy::FixedCount(3), PcaMethod::Svd).unwrap();
    (model, net, links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pythagoras: ‖y − μ‖² = ‖ŷ‖² + ‖ỹ‖² for every measurement.
    #[test]
    fn decomposition_is_orthogonal(seed in 0u64..200, row in 0usize..300) {
        let (model, _, links) = fitted_model(seed);
        let y = links.row(row);
        let (modeled, residual) = model.decompose(y).unwrap();
        let centered = vector::sub(y, model.mean());
        let lhs = vector::norm_sq(&centered);
        let rhs = vector::norm_sq(&modeled) + vector::norm_sq(&residual);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0));
    }

    /// SPE is invariant under any perturbation inside the normal subspace.
    #[test]
    fn spe_blind_to_normal_directions(
        seed in 0u64..200,
        row in 0usize..300,
        coeffs in proptest::collection::vec(-1e6..1e6f64, 3),
    ) {
        let (model, _, links) = fitted_model(seed);
        let mut y = links.row(row).to_vec();
        let before = model.spe(&y).unwrap();
        for (k, &c) in coeffs.iter().enumerate() {
            vector::axpy(c, &model.normal_basis().col(k), &mut y);
        }
        let after = model.spe(&y).unwrap();
        prop_assert!((before - after).abs() <= 1e-6 * before.max(1.0));
    }

    /// SPE grows exactly quadratically along any residual direction.
    #[test]
    fn spe_quadratic_in_residual_direction(seed in 0u64..100, scale in 1.0..50.0f64) {
        let (model, net, _links) = fitted_model(seed);
        let theta = net.routing_matrix.theta(5);
        let theta_res = model.residual_direction(&theta).unwrap();
        let base = model.mean().to_vec();
        let mut y = base.clone();
        vector::axpy(scale * 1e5, &theta_res, &mut y);
        let spe = model.spe(&y).unwrap();
        let expected = (scale * 1e5).powi(2) * vector::norm_sq(&theta_res);
        prop_assert!((spe - expected).abs() <= 1e-6 * expected.max(1.0));
    }

    /// Clean injections above the detectability floor are detected AND
    /// identified with the right flow, and quantified near the injected
    /// size.
    #[test]
    fn injections_above_floor_are_diagnosed(
        seed in 0u64..50,
        flow in 0usize..16,
        row in 0usize..300,
    ) {
        let net = builtin::line(4);
        let links = measurements(300, net.routing_matrix.num_links(), seed);
        let diagnoser = Diagnoser::fit(
            &links,
            &net.routing_matrix,
            DiagnoserConfig {
                separation: SeparationPolicy::FixedCount(3),
                ..DiagnoserConfig::default()
            },
        ).unwrap();
        let floors = netanom_core::detectability::flow_detectability(
            diagnoser.model(), &net.routing_matrix, 0.999,
        ).unwrap();
        // 2x the sufficient bound leaves room for the bin's own residual.
        let size = 2.0 * floors[flow].min_detectable_bytes;
        let mut y = links.row(row).to_vec();
        vector::axpy(size, &net.routing_matrix.column(flow), &mut y);
        let rep = diagnoser.diagnose_vector(&y).unwrap();
        prop_assert!(rep.detected, "flow {flow} at {size:.3e} not detected");
        let id = rep.identification.unwrap();
        // Identification may legitimately pick a route-equivalent flow
        // (nested/identical residual footprints); accept exact match or
        // an estimate consistent with the injection.
        if id.flow == flow {
            let est = rep.estimated_bytes.unwrap();
            prop_assert!(
                (est / size - 1.0).abs() < 0.5,
                "flow {flow}: estimate {est:.3e} vs injected {size:.3e}"
            );
        }
    }

    /// The fast identification equals the paper's literal Equation (1).
    #[test]
    fn fast_identify_equals_naive(
        seed in 0u64..100,
        flow in 0usize..16,
        size in 1e5..1e7f64,
    ) {
        let (model, net, links) = fitted_model(seed);
        let ident = Identifier::new(&model, &net.routing_matrix).unwrap();
        let mut y = links.row(37).to_vec();
        vector::axpy(size, &net.routing_matrix.column(flow), &mut y);
        let fast = ident.identify(&model.residual(&y).unwrap()).unwrap();
        let naive = ident.identify_naive(&model, &y).unwrap();
        prop_assert_eq!(fast.flow, naive.flow);
        prop_assert!((fast.f_hat - naive.f_hat).abs() <= 1e-6 * naive.f_hat.abs().max(1.0));
    }

    /// The Q threshold is monotone in confidence and scale-equivariant.
    #[test]
    fn q_threshold_monotone_and_equivariant(
        lead in 1.0..1e4f64,
        tail in 0.01..1.0f64,
        s in 0.5..2e3f64,
    ) {
        let mut eig = vec![lead * 100.0, lead];
        eig.extend(std::iter::repeat_n(tail, 20));
        let lo = qstat::q_threshold(&eig, 2, 0.99).unwrap().delta_sq;
        let hi = qstat::q_threshold(&eig, 2, 0.999).unwrap().delta_sq;
        prop_assert!(hi > lo);
        let scaled: Vec<f64> = eig.iter().map(|l| l * s).collect();
        let lo_s = qstat::q_threshold(&scaled, 2, 0.99).unwrap().delta_sq;
        prop_assert!((lo_s / (lo * s) - 1.0).abs() < 1e-9);
    }

    /// PCA eigenvalue sum equals total variance (trace), regardless of
    /// method.
    #[test]
    fn pca_preserves_total_variance(seed in 0u64..200) {
        let y = measurements(200, 6, seed);
        let total: f64 = y.column_variances().iter().sum();
        for method in [PcaMethod::Svd, PcaMethod::Covariance] {
            let pca = Pca::fit(&y, method).unwrap();
            let sum: f64 = pca.eigenvalues().iter().sum();
            prop_assert!(
                (sum - total).abs() <= 1e-8 * total.max(1.0),
                "{method:?}: {sum} vs trace {total}"
            );
        }
    }

    /// Quantification is exactly linear: estimate(2b) − estimate(b) = b
    /// for injections into the identified flow.
    #[test]
    fn quantification_linearity(seed in 0u64..50, flow in 0usize..16) {
        let net = builtin::line(4);
        let links = measurements(300, net.routing_matrix.num_links(), seed);
        let diagnoser = Diagnoser::fit(
            &links,
            &net.routing_matrix,
            DiagnoserConfig {
                separation: SeparationPolicy::FixedCount(3),
                ..DiagnoserConfig::default()
            },
        ).unwrap();
        let b = 5e6;
        let mut y1 = links.row(99).to_vec();
        vector::axpy(b, &net.routing_matrix.column(flow), &mut y1);
        let mut y2 = links.row(99).to_vec();
        vector::axpy(2.0 * b, &net.routing_matrix.column(flow), &mut y2);
        let r1 = diagnoser.diagnose_vector(&y1).unwrap();
        let r2 = diagnoser.diagnose_vector(&y2).unwrap();
        if let (Some(id1), Some(id2)) = (r1.identification, r2.identification) {
            if id1.flow == flow && id2.flow == flow {
                let slope = r2.estimated_bytes.unwrap() - r1.estimated_bytes.unwrap();
                prop_assert!(
                    (slope / b - 1.0).abs() < 1e-6,
                    "slope {slope:.3e} vs injected step {b:.3e}"
                );
            }
        }
    }
}
