//! Manual calibration probe: per-axis variance fraction and max |z|.
//! Run with `cargo test -p netanom-core --test axes_probe -- --ignored --nocapture`.
use netanom_core::Pca;
use netanom_linalg::stats;
use netanom_traffic::datasets;

#[test]
#[ignore = "manual calibration tool"]
fn axes_probe() {
    for ds in [
        datasets::sprint1(),
        datasets::sprint2(),
        datasets::abilene(),
    ] {
        let pca = Pca::fit(ds.links.matrix(), Default::default()).unwrap();
        let fracs = pca.variance_fractions();
        println!("=== {} ===", ds.name);
        for (i, frac) in fracs.iter().enumerate().take(10) {
            let u = pca.temporal_projection(i);
            let mean = stats::mean(&u);
            let sd = stats::std_dev(&u);
            let maxz = u
                .iter()
                .map(|&x| ((x - mean) / sd).abs())
                .fold(0.0f64, f64::max);
            // where is the max?
            let argmax = u
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    ((a.1 - mean).abs())
                        .partial_cmp(&(b.1 - mean).abs())
                        .unwrap()
                })
                .unwrap()
                .0;
            println!("  axis {i}: frac={frac:.4} max|z|={maxz:.2} at t={argmax}");
        }
    }
}
