//! Parity of the sharded engine against the single-process
//! [`StreamingEngine`]: sharding must be a pure scale transform.
//!
//! For K ∈ {1, 2, 4, 8} (round-robin) and the per-PoP partition, both
//! refit strategies, streamed across several refit boundaries with
//! staged anomalies:
//!
//! * detections are **bitwise equal** (same booleans at every bin);
//! * identifications are **bitwise equal** (same flow index at every
//!   detected bin);
//! * merged SPEs agree within `1e-9` relative;
//! * post-refit thresholds are bitwise equal — the merged statistics
//!   (incremental) and the reassembled window (full-SVD) reproduce the
//!   single-process model exactly;
//! * the merged covariance matches the two-pass covariance of the
//!   retained window within `1e-9` relative.

use netanom_core::method::SubspaceBackend;
use netanom_core::shard::ShardedEngine;
use netanom_core::stream::{RefitStrategy, StreamConfig, StreamingEngine};
use netanom_core::{DiagnoserConfig, PcaMethod, SeparationPolicy};
use netanom_linalg::{vector, Matrix};
use netanom_topology::{builtin, LinkPartition, Network};

fn training(m: usize, bins: usize, seed: usize) -> Matrix {
    Matrix::from_fn(bins, m, |i, l| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 2e5 * phase.sin() * ((l % 5) as f64 + 1.0);
        let noise = (((i * m + l + seed).wrapping_mul(2654435761)) % 8192) as f64 - 4096.0;
        2e6 + smooth + noise
    })
}

fn config() -> DiagnoserConfig {
    DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(3),
        pca_method: PcaMethod::Svd,
        confidence: 0.999,
    }
}

/// A streamed tail with anomalies staged on a few flows so the parity
/// check exercises the identification path.
fn staged_stream(net: &Network, bins: usize, seed: usize) -> Matrix {
    let rm = &net.routing_matrix;
    let mut stream = training(rm.num_links(), bins, seed);
    let mut k = 0usize;
    let mut t = 20;
    while t < bins {
        let flow = (k * 11 + 5) % rm.num_flows();
        let mut row = stream.row(t).to_vec();
        vector::axpy(2.5e7, &rm.column(flow), &mut row);
        stream.set_row(t, &row);
        k += 1;
        t += 25;
    }
    stream
}

/// Drive both engines over the same stream (streaming per row, sharded
/// in chunks) and assert decision-level bitwise parity.
fn assert_parity(net: &Network, partition: &LinkPartition, strategy: RefitStrategy, label: &str) {
    let rm = &net.routing_matrix;
    let train = training(rm.num_links(), 300, 0);
    let stream_cfg = StreamConfig::new(300).refit_every(48).strategy(strategy);
    let mut single = StreamingEngine::new(&train, rm, config(), stream_cfg).unwrap();
    let mut sharded = ShardedEngine::new(&train, rm, config(), stream_cfg, partition).unwrap();

    let stream = staged_stream(net, 150, 300);
    let mut detected_bins = 0usize;
    let mut next = 0;
    while next < stream.rows() {
        let take = 36.min(stream.rows() - next);
        let block = stream.row_block(next, take).unwrap();
        let sharded_reports = sharded.process_batch(&block).unwrap();
        for (i, sh) in sharded_reports.iter().enumerate() {
            let t = next + i;
            let si = single.process(stream.row(t)).unwrap();
            assert_eq!(sh.time, si.time, "{label}: time at bin {t}");
            assert_eq!(
                sh.detected, si.detected,
                "{label}: detection diverged at bin {t} (sharded spe {} vs single {})",
                sh.spe, si.spe
            );
            assert_eq!(
                sh.threshold, si.threshold,
                "{label}: threshold diverged at bin {t} — refitted models differ"
            );
            let rel = (sh.spe - si.spe).abs() / si.spe.max(1.0);
            assert!(rel <= 1e-9, "{label}: SPE rel {rel:.2e} at bin {t}");
            match (sh.identification, si.identification) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    detected_bins += 1;
                    assert_eq!(a.flow, b.flow, "{label}: identification at bin {t}");
                    let fr = (a.f_hat - b.f_hat).abs() / b.f_hat.abs().max(1.0);
                    assert!(fr <= 1e-9, "{label}: f_hat rel {fr:.2e} at bin {t}");
                    let eb = (sh.estimated_bytes.unwrap() - si.estimated_bytes.unwrap()).abs()
                        / si.estimated_bytes.unwrap().abs().max(1.0);
                    assert!(eb <= 1e-9, "{label}: bytes rel {eb:.2e} at bin {t}");
                }
                other => panic!("{label}: identification presence diverged at {t}: {other:?}"),
            }
        }
        next += take;
    }
    assert_eq!(single.refits(), sharded.refits(), "{label}: refit counts");
    assert!(single.refits() >= 3, "{label}: stream must cross refits");
    assert!(detected_bins >= 3, "{label}: staged anomalies must fire");
}

#[test]
fn round_robin_parity_k1_k2_k4_k8_incremental() {
    let net = builtin::sprint_europe();
    let m = net.routing_matrix.num_links();
    for k in [1usize, 2, 4, 8] {
        let partition = LinkPartition::round_robin(m, k).unwrap();
        assert_parity(
            &net,
            &partition,
            RefitStrategy::Incremental,
            &format!("incremental k={k}"),
        );
    }
}

#[test]
fn round_robin_parity_k4_full_svd() {
    let net = builtin::sprint_europe();
    let m = net.routing_matrix.num_links();
    let partition = LinkPartition::round_robin(m, 4).unwrap();
    assert_parity(&net, &partition, RefitStrategy::FullSvd, "full-svd k=4");
}

#[test]
fn per_pop_parity_incremental() {
    let net = builtin::abilene();
    let partition = LinkPartition::per_pop(&net.topology);
    assert_eq!(partition.num_shards(), 11);
    assert_parity(
        &net,
        &partition,
        RefitStrategy::Incremental,
        "per-pop abilene",
    );
}

/// Forcing the scoped-thread fan-out (via `RAYON_NUM_THREADS`) must
/// produce bitwise the same reports as the serial path: partials are
/// merged in shard order, so the thread count can only change
/// wall-clock, never values.
#[test]
fn parallel_fanout_is_bitwise_serial() {
    let net = builtin::sprint_europe();
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let train = training(m, 300, 0);
    let partition = LinkPartition::round_robin(m, 4).unwrap();
    let stream_cfg = StreamConfig::new(300)
        .refit_every(40)
        .strategy(RefitStrategy::Incremental);
    let stream = staged_stream(&net, 100, 300);

    let run = |threads: Option<&str>| {
        match threads {
            Some(n) => std::env::set_var("RAYON_NUM_THREADS", n),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let mut engine = ShardedEngine::new(&train, rm, config(), stream_cfg, &partition).unwrap();
        let reports = engine.process_batch(&stream).unwrap();
        std::env::remove_var("RAYON_NUM_THREADS");
        reports
    };
    let serial = run(Some("1"));
    let parallel = run(Some("4"));
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.spe, b.spe, "SPE must be bitwise thread-count independent");
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.threshold, b.threshold);
        assert_eq!(
            a.identification.map(|i| i.flow),
            b.identification.map(|i| i.flow)
        );
    }
    assert!(serial.iter().any(|r| r.detected), "staged anomalies fire");
}

/// The backend-generic construction path (`SubspaceBackend::fit` +
/// `ShardedEngine::with_backend`) must be bitwise identical to the
/// `ShardedEngine::new` sugar across refit boundaries — and therefore,
/// transitively, to the single-process engine the other tests pin
/// against.
#[test]
fn generic_backend_sharded_engine_is_bitwise_to_sugar() {
    let net = builtin::sprint_europe();
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let train = training(m, 300, 0);
    let partition = LinkPartition::round_robin(m, 4).unwrap();
    let stream = staged_stream(&net, 120, 300);

    for strategy in [RefitStrategy::FullSvd, RefitStrategy::Incremental] {
        let stream_cfg = StreamConfig::new(300).refit_every(48).strategy(strategy);
        let mut sugar = ShardedEngine::new(&train, rm, config(), stream_cfg, &partition).unwrap();
        let backend = SubspaceBackend::fit(&train, rm, config(), strategy).unwrap();
        let mut generic =
            ShardedEngine::with_backend(backend, &train, stream_cfg, &partition).unwrap();

        let a = sugar.process_batch(&stream).unwrap();
        let b = generic.process_batch(&stream).unwrap();
        assert_eq!(a, b, "{strategy:?}");
        assert_eq!(sugar.refits(), generic.refits());
        assert!(
            sugar.refits() >= 2,
            "{strategy:?}: stream must cross refits"
        );
        assert!(a.iter().any(|r| r.detected), "staged anomalies fire");
    }
}

/// The merged covariance must match both the single-process accumulator
/// (bitwise) and the direct two-pass covariance of the retained window
/// (1e-9 relative).
#[test]
fn merged_covariance_matches_single_process_and_two_pass() {
    let net = builtin::line(4);
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let window = 120;
    let total = 300; // slides the window far past a full wrap
    let series = training(m, total, 7);
    let train = series.row_block(0, window).unwrap();
    let partition = LinkPartition::round_robin(m, 3).unwrap();
    let stream_cfg = StreamConfig::new(window).strategy(RefitStrategy::Incremental);
    let mut single = StreamingEngine::new(&train, rm, config(), stream_cfg).unwrap();
    let mut sharded = ShardedEngine::new(&train, rm, config(), stream_cfg, &partition).unwrap();
    let tail = series.row_block(window, total - window).unwrap();
    sharded.process_batch(&tail).unwrap();
    for t in 0..tail.rows() {
        single.process(tail.row(t)).unwrap();
    }

    let merged = sharded.merged_statistics().unwrap();
    let merged_cov = merged.covariance().unwrap();

    // Two-pass covariance over exactly the retained window rows.
    let retained = series.row_block(total - window, window).unwrap();
    let (centered, _) = retained.mean_centered_columns();
    let two_pass = centered.gram().scaled(1.0 / (window as f64 - 1.0));
    assert!(
        merged_cov.approx_eq(&two_pass, 1e-9 * two_pass.max_abs().max(1.0)),
        "merged covariance diverges from two-pass beyond 1e-9"
    );

    // And bitwise against the single-process incremental model: both
    // engines refit from their statistics and must produce identical
    // thresholds.
    single.refit().unwrap();
    sharded.refit().unwrap();
    assert_eq!(
        single.diagnoser().detector().threshold().delta_sq,
        sharded.diagnoser().detector().threshold().delta_sq,
        "refit from merged statistics must be bitwise identical"
    );
}
