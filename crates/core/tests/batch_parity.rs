//! Batch-vs-per-vector parity on a real canned dataset.
//!
//! The batch API's contract: `Detector::detect_matrix` and the batched
//! `Diagnoser::diagnose_series` agree with the per-vector path
//! (`detect_vector` / `diagnose_vector` row by row) to within `1e-12`
//! relative on every SPE — the fused detection kernel's blocked
//! reductions reassociate sums, costing ~1e-14 — while detection
//! decisions and identifications are identical (identification runs on
//! the exact per-vector residual). These tests pin that contract on
//! `datasets::mini`.

use netanom_core::{Detector, Diagnoser, DiagnoserConfig};
use netanom_traffic::datasets;

/// Relative tolerance the public API contract guarantees.
const TOL: f64 = 1e-12;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn detect_matrix_is_identical_to_per_vector_detection() {
    let ds = datasets::mini(7);
    let links = ds.links.matrix();
    let diagnoser = Diagnoser::fit(
        links,
        &ds.network.routing_matrix,
        DiagnoserConfig::default(),
    )
    .unwrap();
    let detector: &Detector = diagnoser.detector();

    let batch = detector.detect_matrix(links).unwrap();
    assert_eq!(batch.len(), links.rows());
    let mut any_detected = false;
    for (t, b) in batch.iter().enumerate() {
        let single = detector.detect_vector(links.row(t)).unwrap();
        assert_eq!(b.time, t);
        assert_eq!(
            b.anomalous, single.anomalous,
            "detection decision diverged at bin {t}"
        );
        assert!(
            close(b.spe, single.spe),
            "SPE diverged at bin {t}: {} vs {}",
            b.spe,
            single.spe
        );
        any_detected |= b.anomalous;
    }
    assert!(
        any_detected,
        "mini dataset should contain detectable anomalies"
    );
}

#[test]
fn batched_diagnose_series_is_identical_to_per_vector_reports() {
    let ds = datasets::mini(7);
    let links = ds.links.matrix();
    let diagnoser = Diagnoser::fit(
        links,
        &ds.network.routing_matrix,
        DiagnoserConfig::default(),
    )
    .unwrap();

    let batch = diagnoser.diagnose_series(links).unwrap();
    assert_eq!(batch.len(), links.rows());
    for (t, b) in batch.iter().enumerate() {
        let mut single = diagnoser.diagnose_vector(links.row(t)).unwrap();
        single.time = t;
        assert_eq!(b.detected, single.detected, "detection diverged at bin {t}");
        assert!(close(b.spe, single.spe), "SPE diverged at bin {t}");
        assert_eq!(b.threshold, single.threshold);
        match (b.identification, single.identification) {
            (None, None) => {}
            (Some(bi), Some(si)) => {
                assert_eq!(bi.flow, si.flow, "identified flow diverged at bin {t}");
                assert!(close(bi.f_hat, si.f_hat), "f_hat diverged at bin {t}");
                assert!(close(bi.residual_energy, si.residual_energy));
                assert!(close(bi.remaining_energy, si.remaining_energy));
                assert!(close(
                    b.estimated_bytes.unwrap(),
                    single.estimated_bytes.unwrap()
                ));
            }
            _ => panic!("identification presence diverged at bin {t}"),
        }
    }
}
