//! Robustness: degenerate and adversarial inputs through the pipeline.

use netanom_core::{
    CoreError, Diagnoser, DiagnoserConfig, PcaMethod, SeparationPolicy, SubspaceModel,
};
use netanom_linalg::{vector, Matrix};
use netanom_topology::builtin;

fn measurements(t: usize, m: usize) -> Matrix {
    Matrix::from_fn(t, m, |i, j| {
        let phase = i as f64 * std::f64::consts::TAU / 144.0;
        let smooth = 1e5 * (phase + j as f64).sin();
        let h = (i * m + j).wrapping_mul(2654435761) % 8192;
        1e6 + smooth + (h as f64 - 4096.0)
    })
}

#[test]
fn nan_measurement_is_rejected_not_swallowed() {
    let net = builtin::line(3);
    let links = measurements(200, net.routing_matrix.num_links());
    let diagnoser = Diagnoser::fit(
        &links,
        &net.routing_matrix,
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            ..DiagnoserConfig::default()
        },
    )
    .unwrap();

    let mut y = links.row(5).to_vec();
    y[3] = f64::NAN;
    match diagnoser.diagnose_vector(&y) {
        Err(CoreError::NonFiniteMeasurement { link: 3 }) => {}
        other => panic!("expected NonFiniteMeasurement, got {other:?}"),
    }
    let mut y2 = links.row(5).to_vec();
    y2[0] = f64::INFINITY;
    assert!(matches!(
        diagnoser.diagnose_vector(&y2),
        Err(CoreError::NonFiniteMeasurement { link: 0 })
    ));
}

#[test]
fn constant_link_column_is_harmless() {
    // A dead link (constant zero) must not break fitting or detection on
    // the other links.
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let links = Matrix::from_fn(300, m, |i, j| {
        if j == 2 {
            0.0
        } else {
            measurements(300, m)[(i, j)]
        }
    });
    let diagnoser = Diagnoser::fit(
        &links,
        &net.routing_matrix,
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(2),
            ..DiagnoserConfig::default()
        },
    )
    .expect("dead link must not prevent fitting");
    let mut y = links.row(50).to_vec();
    vector::axpy(1e7, &net.routing_matrix.column(5), &mut y);
    let rep = diagnoser.diagnose_vector(&y).unwrap();
    assert!(rep.detected);
}

#[test]
fn link_permutation_equivariance() {
    // Renumbering links consistently in Y and A must not change any
    // diagnosis outcome — the method has no preferred link order.
    let net = builtin::line(4);
    let rm = &net.routing_matrix;
    let m = rm.num_links();
    let links = measurements(400, m);

    // Permutation: reverse the links.
    let perm: Vec<usize> = (0..m).rev().collect();
    let links_p = links.select_columns(&perm);
    let paths_p: Vec<Vec<usize>> = (0..rm.num_flows())
        .map(|f| {
            rm.flow(f)
                .path
                .iter()
                .map(|l| perm.iter().position(|&p| p == l.0).unwrap())
                .collect()
        })
        .collect();
    let rm_p = netanom_topology::RoutingMatrix::from_paths(m, &paths_p);

    let cfg = DiagnoserConfig {
        separation: SeparationPolicy::FixedCount(3),
        ..DiagnoserConfig::default()
    };
    let d1 = Diagnoser::fit(&links, rm, cfg).unwrap();
    let d2 = Diagnoser::fit(&links_p, &rm_p, cfg).unwrap();

    for (flow, t, size) in [(5usize, 100usize, 8e6), (11, 222, 5e6)] {
        let mut y1 = links.row(t).to_vec();
        vector::axpy(size, &rm.column(flow), &mut y1);
        let mut y2 = links_p.row(t).to_vec();
        vector::axpy(size, &rm_p.column(flow), &mut y2);
        let r1 = d1.diagnose_vector(&y1).unwrap();
        let r2 = d2.diagnose_vector(&y2).unwrap();
        assert_eq!(r1.detected, r2.detected);
        assert!((r1.spe - r2.spe).abs() < 1e-6 * r1.spe.max(1.0));
        if r1.detected {
            assert_eq!(
                r1.identification.unwrap().flow,
                r2.identification.unwrap().flow
            );
        }
    }
}

#[test]
fn fitting_on_nan_training_data_fails_loudly() {
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let mut links = measurements(100, m);
    links[(50, 1)] = f64::NAN;
    // Either PCA fails to converge or downstream checks reject — what
    // must NOT happen is a silently-NaN model.
    match Diagnoser::fit(&links, &net.routing_matrix, DiagnoserConfig::default()) {
        Err(_) => {}
        Ok(d) => {
            // If a model was produced, it must still reject measurements
            // and not emit NaN SPEs on clean input.
            let spe = d.model().spe(measurements(100, m).row(0)).unwrap();
            assert!(
                spe.is_finite(),
                "model fitted on NaN data emits NaN SPE — silent corruption"
            );
        }
    }
}

#[test]
fn zero_size_training_is_rejected() {
    let net = builtin::line(3);
    assert!(Diagnoser::fit(
        &Matrix::zeros(0, net.routing_matrix.num_links()),
        &net.routing_matrix,
        DiagnoserConfig::default()
    )
    .is_err());
}

#[test]
fn extreme_magnitudes_do_not_overflow() {
    // Traffic in exabytes per bin: the pipeline must stay finite.
    let net = builtin::line(3);
    let m = net.routing_matrix.num_links();
    let links = Matrix::from_fn(200, m, |i, j| {
        1e18 + 1e17 * ((i + j) as f64 * 0.37).sin()
            + ((i * m + j).wrapping_mul(2654435761) % 1024) as f64 * 1e13
    });
    let diagnoser = Diagnoser::fit(
        &links,
        &net.routing_matrix,
        DiagnoserConfig {
            separation: SeparationPolicy::FixedCount(1),
            ..DiagnoserConfig::default()
        },
    )
    .unwrap();
    let rep = diagnoser.diagnose_vector(links.row(7)).unwrap();
    assert!(rep.spe.is_finite());
    assert!(rep.threshold.is_finite());
}

#[test]
fn model_rejects_vectors_from_other_network() {
    let net_a = builtin::line(4);
    let links = measurements(300, net_a.routing_matrix.num_links());
    let model =
        SubspaceModel::fit(&links, SeparationPolicy::FixedCount(2), PcaMethod::Svd).unwrap();
    let net_b = builtin::ring(6);
    let wrong = vec![1.0; net_b.routing_matrix.num_links()];
    assert!(matches!(
        model.spe(&wrong),
        Err(CoreError::DimensionMismatch { .. })
    ));
}
